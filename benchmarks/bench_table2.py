"""Table 2 — HW estimation results (FIR and Euler segments).

For each segment the library's closed-form bounds (fractional-delay
critical path = best case, fractional-delay sum = worst case) are
compared against the behavioral-synthesis substrate's "real" times
(time-constrained ASAP and resource-constrained single-ALU schedules in
whole cycle slots).  Shape target from the paper: HW error below
~8.2 %.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro.annotate import AArray, AInt, CostContext, MODE_HW, active
from repro.hls import synthesize_function
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS, HW_CLOCK_MHZ
from repro.workloads.euler import euler_segment
from repro.workloads.fir import fir_sample, _lowpass_taps

#: Accuracy bound asserted by this bench (paper: 8.2 %).
ERROR_BOUND_PCT = 15.0

FIR_TAPS = 16


def _fir_case():
    x = AArray([(i * 13 + 5) % 256 - 128 for i in range(FIR_TAPS)])
    h = AArray(_lowpass_taps(FIR_TAPS))
    return "FIR", fir_sample, (x, h, FIR_TAPS)


def _euler_case():
    return "Euler", euler_segment, (AInt(4096), AInt(0), AInt(4))


def _estimate_bounds(fn, args):
    """(t_max, t_min) in cycles as the library accumulates them."""
    context = CostContext(ASIC_HW_COSTS, MODE_HW)
    with active(context):
        fn(*args)
    return context.segment_totals()


def _rows_for(name, fn, args, clock):
    t_max, t_min = _estimate_bounds(fn, args)
    _graph, best, worst = synthesize_function(fn, args, ASIC_HW_COSTS, clock)
    est_wc_ns = clock.cycles_to_time(t_max).to_ns()
    est_bc_ns = clock.cycles_to_time(t_min).to_ns()
    rows = [
        (f"{name} (WC)", worst.exec_time_ns, est_wc_ns),
        (f"{name} (BC)", best.exec_time_ns, est_bc_ns),
    ]
    return rows


def test_table2(benchmark, calibrated_costs):
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    cases = [_fir_case(), _euler_case()]

    collected = []

    def run_all():
        collected.clear()
        for name, fn, args in cases:
            collected.extend(_rows_for(name, fn, args, clock))
        return collected

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    errors = []
    for label, real_ns, est_ns in collected:
        error = 100.0 * (est_ns - real_ns) / real_ns
        errors.append((label, error))
        rows.append([label, f"{real_ns:.1f}", f"{est_ns:.1f}", f"{error:+.2f}%"])

    table = format_table(
        f"Table 2 - HW estimation results (clock {clock.period})",
        ["Benchmark", "Real exec time (ns)", "Estimated exec time (ns)", "Error"],
        rows,
    )
    print("\n" + table)
    write_result("table2.txt", table + "\n")

    for label, error in errors:
        assert abs(error) < ERROR_BOUND_PCT, (
            f"{label}: HW estimation error {error:.1f}% exceeds "
            f"{ERROR_BOUND_PCT}%"
        )
