"""Figures 1 & 2 — process segmentation and the process graph.

Runs the paper's example process (Fig. 1: a cyclic process with two
channel accesses, a conditional write and a timing wait) and checks
that the dynamic segment tracker reconstructs exactly the graph of
Fig. 2: nodes N0..N4 and segments S0-1, S1-2, S1-3, S2-3, S3-4, S4-1.
Also emits the static annotated listing (the "simple parser" view) and
a GraphViz rendering of the dynamic graph.
"""

from __future__ import annotations

from harness import write_result
from repro import SimTime, Simulator, wait
from repro.segments import SegmentTracker, annotate_listing, scan_process

ITERATIONS = 6


def _build(simulator: Simulator):
    ch1 = simulator.fifo("ch1")
    ch2 = simulator.fifo("ch2")
    top = simulator.module("top")
    tracker = SegmentTracker()
    simulator.add_observer(tracker)

    def process():
        for iteration in range(ITERATIONS):
            # code of segment S0-1 / S4-1
            value = yield from ch1.read()                 # N1
            condition = value % 2 == 0
            if condition:
                # code of segment S1-2
                yield from ch2.write(value * 2)           # N2
            # code of segment S2-3 / S1-3
            yield wait(SimTime.ns(10))                    # N3
            yield from ch2.write(value)                   # N4 (paper: ch2 access)

    def environment():
        for iteration in range(ITERATIONS):
            yield from ch1.write(iteration)
            taken = iteration % 2 == 0
            if taken:
                yield from ch2.read()
            yield from ch2.read()

    top.add_process(process)
    top.add_process(environment)
    return tracker, process


def test_fig2_process_graph(benchmark):
    simulator = Simulator()
    tracker, body = _build(simulator)

    def run():
        simulator.run()
        simulator.assert_quiescent()
        return tracker

    benchmark.pedantic(run, rounds=1, iterations=1)

    graph = tracker.graph_of("top.process")
    segment_labels = sorted(s.label for s in graph.segments.values())
    node_kinds = {stats.label: node.kind for node, stats in graph.nodes.items()}

    lines = ["Figure 1/2 - process segmentation of the paper's example", ""]
    lines.append("static node sites (the 'simple parser' view):")
    for site in scan_process(body):
        lines.append(f"  {site.describe()}")
    lines.append("")
    lines.append("annotated listing:")
    lines.extend("  " + l for l in annotate_listing(body).splitlines())
    lines.append("")
    lines.append("dynamic process graph:")
    lines.extend("  " + l for l in tracker.report_lines())
    lines.append("")
    lines.append(graph.to_dot())
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig2_process_graph.txt", text + "\n")

    # Fig. 2's arc set: S0-1 entry, S1-2 (conditional write), S1-3 (skip),
    # S2-3 (after write), S3-4 (after wait), S4-1 (loop back), plus the
    # process-exit arc our finite run adds.
    for expected in ("S0-1", "S1-2", "S1-3", "S2-3", "S3-4", "S4-1"):
        assert expected in segment_labels, (expected, segment_labels)
    assert node_kinds["N0"] == "entry"
    assert node_kinds["N1"] == "channel"
    assert node_kinds["N2"] == "channel"
    assert node_kinds["N3"] == "wait"
    assert node_kinds["N4"] == "channel"

    # Dynamic and static views agree on the number of in-code node sites.
    assert len(scan_process(body)) == 4

    # Execution counts: N1 fires every iteration, N2 only on even values.
    n1 = next(s for n, s in graph.nodes.items() if s.label == "N1")
    n2 = next(s for n, s in graph.nodes.items() if s.label == "N2")
    assert n1.executions == ITERATIONS
    assert n2.executions == ITERATIONS // 2
