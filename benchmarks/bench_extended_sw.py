"""Extended SW estimation check — generalization beyond the paper's set.

The calibration microbenchmarks were chosen before these kernels
existed; this bench measures estimation error on DCT, CRC-32 and matrix
multiply to demonstrate that the fitted weights generalize to unrelated
workloads (the property that makes the paper's methodology usable in
practice).
"""

from __future__ import annotations

from harness import (
    SequentialCase,
    format_table,
    run_sequential_case,
    write_result,
)
from repro.platform import CPU_CLOCK_MHZ
from repro.workloads.extended import (
    crc32_bitwise,
    dct_2d,
    make_crc_inputs,
    make_dct_inputs,
    make_matmul_inputs,
    matmul,
)

ERROR_BOUND_PCT = 12.0

CASES = [
    SequentialCase("DCT 8x8", (dct_2d,), make_dct_inputs),
    SequentialCase("CRC-32", (crc32_bitwise,), lambda: make_crc_inputs(512)),
    SequentialCase("MatMul 12", (matmul,), lambda: make_matmul_inputs(12)),
]


def test_extended_sw(benchmark, calibrated_costs):
    results = []

    def run_all():
        results.clear()
        for case in CASES:
            results.append(run_sequential_case(case, calibrated_costs))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for r in results:
        rows.append([
            r.name,
            f"{r.estimated_cycles:.0f}",
            f"{r.estimated_cycles / CPU_CLOCK_MHZ:.2f}",
            str(r.iss_cycles),
            f"{r.error_pct:+.2f}%",
            f"{r.gain:.1f}x",
        ])
    table = format_table(
        "Extended SW benchmarks - calibration generalization",
        ["Benchmark", "Library est (cyc)", "est time (us)", "ISS (cyc)",
         "Error", "Gain vs ISS"],
        rows,
    )
    print("\n" + table)
    write_result("extended_sw.txt", table + "\n")

    for r in results:
        assert abs(r.error_pct) < ERROR_BOUND_PCT, (
            f"{r.name}: error {r.error_pct:.1f}% exceeds {ERROR_BOUND_PCT}%"
        )
