"""The performance model's own performance — both paper speed claims.

The paper positions annotated strict-timed simulation between two
reference points: >142x faster than the ISS, <73x overload over the
untimed specification.  This bench measures both ratios for every
registry workload plus the concurrent vocoder pipeline (via
``repro.bench``, the same engine behind ``repro bench --json``), writes
the machine-readable ``BENCH_overhead.json`` trajectory artifact, and
compares against the recorded pre-fast-path baselines.

Baselines below were measured on this container immediately before the
charging fast path landed (best-of-10 for the function workloads,
best-of-3 for the pipeline); the fast path + fast-forward engine must
keep at least a 2x reduction on fibonacci and the vocoder pipeline.
"""

from __future__ import annotations

import json

from harness import RESULTS_DIR, format_table, write_result
from repro.bench import render_table, run_bench

#: Overload factors (annotated / untimed host time) measured at the
#: commit before the charging fast path, same workload sizes.
PRE_FAST_PATH_OVERLOAD = {
    "fibonacci": 20.59,
    "array": 74.90,
    "fir": 42.70,
    "bubble": 29.61,
    "vocoder": 46.78,
}

#: The paper's Table 2 bound: overload stays below 73x.
PAPER_OVERLOAD_BOUND = 73.0

#: Geomean overload bound for the bytecode compile tier.  The recorded
#: interpreted baseline (fast path + fast-forward, this container) is a
#: 12.8x geomean; compiling the charging away must land the sweep in
#: single digits.
COMPILE_OVERLOAD_BOUND = 10.0

#: Both copies of the trajectory artifact: the results directory (the
#: benchmark harness convention) and the repository root (where the CI
#: overhead job and the README's trajectory link expect it).
REPO_ROOT = RESULTS_DIR.parent.parent
OVERHEAD_JSON_PATHS = (RESULTS_DIR / "BENCH_overhead.json",
                       REPO_ROOT / "BENCH_overhead.json")

#: Required reduction vs the recorded pre-fast-path baselines.
REQUIRED_REDUCTION = 2.0

#: Static fast-forward eligibility floors for the vocoder pipeline,
#: measured when the interprocedural effect summaries landed: 22
#: eligible arcs across the five stage plans, of which 2 are compute
#: arcs (the uniform ACB and LPC read->compute->write segments).  A
#: drop means an analysis regression de-eligibilized arcs.
MIN_ELIGIBLE_ARCS = 22
MIN_ELIGIBLE_COMPUTE_ARCS = 2


def test_overhead(benchmark):
    payload = {}

    def run_all():
        payload.clear()
        # Best-of-7: the overload ratio divides two host times, so a
        # single slow outlier on either side skews it; the recorded
        # baselines were measured best-of-10 the same way.
        payload.update(run_bench(repeats=7, fastforward=True))
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    write_result("bench_overhead.txt", render_table(payload) + "\n")
    # The artifact goes to both locations, byte-identical: results/ is
    # the harness convention, the repo root is what CI uploads.
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    for path in OVERHEAD_JSON_PATHS:
        path.write_text(text, encoding="utf-8")
    contents = {path.read_bytes() for path in OVERHEAD_JSON_PATHS}
    assert len(contents) == 1, "BENCH_overhead.json copies diverged"

    rows = []
    for name, baseline in sorted(PRE_FAST_PATH_OVERLOAD.items()):
        entry = payload["workloads"][name]
        reduction = baseline / entry["overload"]
        rows.append([name, f"{baseline:.1f}x", f"{entry['overload']:.1f}x",
                     f"{reduction:.2f}x"])
    print()
    print(format_table(
        "Overhead reduction vs pre-fast-path baselines",
        ["Workload", "Before", "After", "Reduction"], rows))

    # Every workload honours the paper's overload bound.
    for name, entry in payload["workloads"].items():
        assert entry["overload"] < PAPER_OVERLOAD_BOUND, (
            f"{name}: overload {entry['overload']:.1f}x breaches the "
            f"paper's {PAPER_OVERLOAD_BOUND:.0f}x bound")
        assert entry["gain"] is None or entry["gain"] > 1.0, (
            f"{name}: annotated simulation slower than the ISS")

    # The effect summaries must keep the vocoder's compute segments
    # fast-forward eligible (not just the zero-charge wrap arcs).
    counters = payload["workloads"]["vocoder"]["fastforward"]
    assert counters is not None, "vocoder ran without the engine attached"
    assert counters["eligible_arcs"] >= MIN_ELIGIBLE_ARCS, (
        f"vocoder: {counters['eligible_arcs']} eligible arc(s), floor is "
        f"{MIN_ELIGIBLE_ARCS} — static eligibility regressed")
    assert counters["eligible_compute_arcs"] >= MIN_ELIGIBLE_COMPUTE_ARCS, (
        f"vocoder: {counters['eligible_compute_arcs']} eligible compute "
        f"arc(s), floor is {MIN_ELIGIBLE_COMPUTE_ARCS} — the uniform "
        "ACB/LPC segments fell back to dynamic charging")

    # The acceptance pair must hold the 2x reduction.
    for name in ("fibonacci", "vocoder"):
        entry = payload["workloads"][name]
        reduction = PRE_FAST_PATH_OVERLOAD[name] / entry["overload"]
        assert reduction >= REQUIRED_REDUCTION, (
            f"{name}: only {reduction:.2f}x reduction vs pre-fast-path "
            f"baseline {PRE_FAST_PATH_OVERLOAD[name]:.1f}x "
            f"(now {entry['overload']:.1f}x); need >= "
            f"{REQUIRED_REDUCTION:.1f}x")


def test_compile_overhead(benchmark):
    """The bytecode compile tier lands the sweep in single digits.

    The ISS reference is skipped here — the compile gate is about the
    overload ratio only, and ``test_overhead`` already tracks the gain.
    """
    payload = {}

    def run_all():
        payload.clear()
        payload.update(run_bench(repeats=7, compile=True,
                                 include_iss=False))
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    write_result("bench_overhead_compile.txt", render_table(payload) + "\n")

    # Every registry kernel and all five vocoder stages must actually be
    # served by the tier — a silent fallback would make the gate vacuous.
    for name, entry in payload["workloads"].items():
        assert entry["compiled"], (
            f"{name}: not served by the compile tier "
            f"({entry['compile_reason'] or 'rejected'})")
    stats = payload["workloads"]["vocoder"]["compile_stats"]
    assert stats["rejected"] == 0 and stats["fallbacks"] == 0, stats
    assert stats["runs"] > 0, stats

    geomean = payload["summary"]["geomean_overload"]
    assert geomean is not None and geomean <= COMPILE_OVERLOAD_BOUND, (
        f"compile-tier geomean overload {geomean:.1f}x breaches the "
        f"{COMPILE_OVERLOAD_BOUND:.0f}x gate")
