"""Ablation A — RTOS overhead contribution on the vocoder (paper §4/§6:
"The RTOS overload is evaluated").

The strict-timed vocoder runs three times: without an RTOS model, with
the default model, and with a deliberately heavy one.  Final simulated
time and the RTOS share of processor busy time must grow monotonically.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro import Simulator
from repro.core import PerformanceLibrary
from repro.platform import (
    EnvironmentResource,
    Mapping,
    RtosModel,
    make_cpu,
)
from repro.workloads.vocoder import STAGE_NAMES, build_vocoder, make_frames

FRAME_COUNT = 3

RTOS_VARIANTS = [
    ("none", None),
    ("default", RtosModel("ucos-like", channel_access_cycles=120.0,
                          wait_cycles=80.0, context_switch_cycles=150.0)),
    ("heavy", RtosModel("heavyweight", channel_access_cycles=1200.0,
                        wait_cycles=800.0, context_switch_cycles=1500.0)),
]


def _run_variant(rtos, frames, costs):
    simulator = Simulator()
    design = build_vocoder(simulator, frames, annotate=True)
    cpu = make_cpu("cpu0", costs=costs, rtos=rtos)
    env = EnvironmentResource("tb")
    mapping = Mapping()
    for name, process in design.processes.items():
        mapping.assign(process, cpu if name in STAGE_NAMES else env)
    perf = PerformanceLibrary(mapping).attach(simulator)
    final = simulator.run()
    simulator.assert_quiescent()
    return final, cpu, perf


def test_ablation_rtos(benchmark, calibrated_costs):
    frames = make_frames(FRAME_COUNT)
    collected = []

    def run_all():
        collected.clear()
        for label, rtos in RTOS_VARIANTS:
            final, cpu, perf = _run_variant(rtos, frames, calibrated_costs)
            collected.append((label, final, cpu, perf))
        return collected

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, final, cpu, perf in collected:
        share = (cpu.rtos_time.femtoseconds / cpu.busy_time.femtoseconds
                 if cpu.busy_time.femtoseconds else 0.0)
        rows.append([label, f"{final.to_us():.1f}",
                     f"{cpu.busy_time.to_us():.1f}",
                     f"{cpu.rtos_time.to_us():.1f}",
                     f"{100 * share:.1f}%",
                     str(cpu.context_switches)])
    table = format_table(
        f"Ablation A - RTOS overhead on the vocoder ({FRAME_COUNT} frames)",
        ["rtos", "final (us)", "cpu busy (us)", "rtos time (us)",
         "rtos share", "switches"],
        rows,
    )
    print("\n" + table)
    write_result("ablation_rtos.txt", table + "\n")

    finals = [final.femtoseconds for _, final, _, _ in collected]
    rtos_times = [cpu.rtos_time.femtoseconds for _, _, cpu, _ in collected]
    assert finals[0] < finals[1] < finals[2]
    assert rtos_times[0] == 0
    assert rtos_times[1] < rtos_times[2]
