"""Table 4 — HW estimation results for the vocoder post-processing.

The paper maps the vocoder's pre/post-processing filter to hardware and
compares the library's WC/BC estimates against behavioral synthesis.
We capture one subframe of :func:`repro.workloads.vocoder.postprocess`
and synthesize it exactly as in Table 2.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro.annotate import AArray, CostContext, MODE_HW, active, AInt
from repro.hls import synthesize_function
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS, HW_CLOCK_MHZ
from repro.workloads.vocoder import SUBFRAME, postprocess

ERROR_BOUND_PCT = 15.0


def _case_args():
    x = AArray([((i * 91) % 400) - 200 for i in range(SUBFRAME)])
    y = AArray([0] * SUBFRAME)
    state = AArray([35, -20])
    return (x, y, AInt(SUBFRAME), state)


def test_table4(benchmark, calibrated_costs):
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    collected = {}

    def run_all():
        context = CostContext(ASIC_HW_COSTS, MODE_HW)
        with active(context):
            postprocess(*_case_args())
        t_max, t_min = context.segment_totals()
        _graph, best, worst = synthesize_function(
            postprocess, _case_args(), ASIC_HW_COSTS, clock)
        collected.update(
            est_wc_ns=clock.cycles_to_time(t_max).to_ns(),
            est_bc_ns=clock.cycles_to_time(t_min).to_ns(),
            real_wc_ns=worst.exec_time_ns,
            real_bc_ns=best.exec_time_ns,
        )
        return collected

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    pairs = [
        ("Post. Proc. (WC)", collected["real_wc_ns"], collected["est_wc_ns"]),
        ("Post. Proc. (BC)", collected["real_bc_ns"], collected["est_bc_ns"]),
    ]
    rows = []
    errors = []
    for label, real_ns, est_ns in pairs:
        error = 100.0 * (est_ns - real_ns) / real_ns
        errors.append((label, error))
        rows.append([label, f"{real_ns:.1f}", f"{est_ns:.1f}", f"{error:+.2f}%"])

    table = format_table(
        f"Table 4 - HW estimation results for the vocoder "
        f"(one {SUBFRAME}-sample subframe, clock {clock.period})",
        ["Benchmark", "Real exec time (ns)", "Estimated exec time (ns)", "Error"],
        rows,
    )
    print("\n" + table)
    write_result("table4.txt", table + "\n")

    for label, error in errors:
        assert abs(error) < ERROR_BOUND_PCT, (
            f"{label}: HW estimation error {error:.1f}% exceeds "
            f"{ERROR_BOUND_PCT}%"
        )
