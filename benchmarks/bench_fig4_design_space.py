"""Figure 4 — HW implementation solutions between critical path and
single ALU (plus ablation C: k-factor sensitivity).

The FIR segment's dataflow graph is scheduled under every functional-
unit allocation up to 3 units per class — fanned out through the batch
:class:`~repro.batch.Campaign` API, one ``hw-point`` configuration per
allocation — and the area/time Pareto frontier spans the figure's two
extremes.  The second half sweeps the paper's ``k`` constant from 0 to
1 and verifies the annotated time interpolates monotonically between
Tmin and Tmax.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro.annotate import AArray, CostContext, MODE_HW, active
from repro.batch import Campaign, fig4_sweep_configs
from repro.core import SegmentEstimate
from repro.hls import (
    Allocation,
    DesignPoint,
    capture_dfg,
    pareto_front,
    synthesize_best_case,
    synthesize_worst_case,
)
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS, HW_CLOCK_MHZ
from repro.workloads.fir import fir_sample, _lowpass_taps

FIR_TAPS = 12


def _segment_args():
    x = AArray([(i * 17 + 3) % 128 - 64 for i in range(FIR_TAPS)])
    h = AArray(_lowpass_taps(FIR_TAPS))
    return (x, h, FIR_TAPS)


def _campaign_design_points():
    """The Fig. 4 allocation sweep through the batch orchestrator."""
    configs = fig4_sweep_configs(max_units_per_class=3, taps=FIR_TAPS,
                                 evaluate_system=False)
    campaign = Campaign(configs, workers=0, cache=None, retries=0)
    results = campaign.run()
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    points = [
        DesignPoint(Allocation.of(r.payload["allocation"]),
                    r.payload["latency_cycles"], r.payload["area"])
        for r in results
    ]
    points.sort(key=lambda p: (p.area, p.latency_cycles))
    return points


def test_fig4_design_space(benchmark):
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    outcome = {}

    def run():
        graph = capture_dfg(fir_sample, _segment_args(), ASIC_HW_COSTS)
        points = _campaign_design_points()
        front = pareto_front(points)
        best = synthesize_best_case(graph, clock)
        worst = synthesize_worst_case(graph, clock)

        context = CostContext(ASIC_HW_COSTS, MODE_HW)
        with active(context):
            fir_sample(*_segment_args())
        t_max, t_min = context.segment_totals()
        outcome.update(graph=graph, points=points, front=front,
                       best=best, worst=worst,
                       estimate=SegmentEstimate(t_max, t_min))
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    front = outcome["front"]
    best = outcome["best"]
    worst = outcome["worst"]
    estimate = outcome["estimate"]

    rows = [[str(p.allocation), f"{p.area:.0f}",
             str(p.latency_cycles),
             f"{clock.cycles_to_time(p.latency_cycles).to_ns():.0f}"]
            for p in front]
    rows.append(["single universal ALU (paper WC)", f"{worst.area:.0f}",
                 str(worst.latency_cycles), f"{worst.exec_time_ns:.0f}"])
    rows.append(["critical path, unlimited units (paper BC)",
                 f"{best.area:.0f}", str(best.latency_cycles),
                 f"{best.exec_time_ns:.0f}"])
    table_a = format_table(
        "Figure 4 - implementation solutions (FIR segment, area vs time)",
        ["allocation", "area", "cycles", "time (ns)"], rows)

    k_rows = []
    for tenth in range(11):
        k = tenth / 10.0
        cycles = estimate.interpolate(k)
        k_rows.append([f"{k:.1f}", f"{cycles:.1f}",
                       f"{clock.cycles_to_time(cycles).to_ns():.0f}"])
    table_b = format_table(
        "Ablation C - k-factor sweep: T = Tmin + (Tmax - Tmin) * k",
        ["k", "annotated cycles", "time (ns)"], k_rows)

    report = table_a + "\n\n" + table_b
    print("\n" + report)
    write_result("fig4_design_space.txt", report + "\n")

    # The frontier is strictly improving in latency as area grows.
    latencies = [p.latency_cycles for p in front]
    areas = [p.area for p in front]
    assert latencies == sorted(latencies, reverse=True)
    assert areas == sorted(areas)

    # The two extremes bound every feasible point.
    for p in outcome["points"]:
        assert best.latency_cycles <= p.latency_cycles <= worst.latency_cycles

    # k interpolates monotonically between the estimate's bounds.
    assert abs(estimate.interpolate(0.0) - estimate.t_min_cycles) < 1e-9
    assert abs(estimate.interpolate(1.0) - estimate.t_max_cycles) < 1e-9
    samples = [estimate.interpolate(t / 10) for t in range(11)]
    assert samples == sorted(samples)
