"""Trace-sink overhead and memory: the O(1)-streaming claim, measured.

Drives one deterministic producer/consumer simulation through each sink
(no sink, MemorySink, RingSink, JsonlSink) and reports wall time plus
the peak tracemalloc footprint of the sink itself.  The table backs the
observability subsystem's design point: streaming JSONL keeps memory
flat while retaining the full record stream on disk.
"""

from __future__ import annotations

import tempfile
import time
import tracemalloc

from harness import format_table, write_result
from repro import SimTime, Simulator, wait
from repro.kernel.tracing import MemorySink, TraceRecorder
from repro.observe import JsonlSink, RingSink

MESSAGES = 2_000


def _run_traced(recorder) -> int:
    simulator = Simulator()
    if recorder is not None:
        simulator.add_observer(recorder)
    fifo = simulator.fifo("link", capacity=4)
    top = simulator.module("top")

    def producer():
        for i in range(MESSAGES):
            yield from fifo.write(i)
            if i % 64 == 0:
                yield wait(SimTime.ns(1))

    def consumer():
        total = 0
        for _ in range(MESSAGES):
            total += yield from fifo.read()

    top.add_process(producer)
    top.add_process(consumer)
    simulator.run()
    return 0 if recorder is None else recorder.sink.count


def _measure(make_recorder):
    tracemalloc.start()
    started = time.perf_counter()
    recorder = make_recorder()
    records = _run_traced(recorder)
    wall = time.perf_counter() - started
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if recorder is not None:
        recorder.close()
    return records, wall, peak


def test_observe_sink_overhead(benchmark):
    scratch = tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False)
    scratch.close()
    cases = [
        ("untraced", lambda: None),
        ("memory", lambda: TraceRecorder(sink=MemorySink())),
        ("ring(1k)", lambda: TraceRecorder(sink=RingSink(capacity=1024))),
        ("jsonl", lambda: TraceRecorder(sink=JsonlSink(scratch.name))),
    ]
    outcome = {}

    def run_all():
        for name, make_recorder in cases:
            outcome[name] = _measure(make_recorder)
        return outcome

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline = outcome["untraced"][1]
    rows = []
    for name, (records, wall, peak) in outcome.items():
        overhead = (wall / baseline - 1.0) * 100.0 if baseline else 0.0
        rows.append([name, str(records), f"{1e3 * wall:.1f}",
                     f"{overhead:+.0f}%", f"{peak / 1024:.0f}"])
    table = format_table(
        "Trace sinks - records, wall time, overhead vs untraced, peak KiB",
        ["sink", "records", "wall (ms)", "overhead", "peak KiB"], rows)
    write_result("observe_sinks.txt", table)
    print(f"\n{table}")

    # The streaming sink must not retain the stream: its peak stays
    # far below the retaining sink's on the same workload.
    assert outcome["jsonl"][2] < outcome["memory"][2] / 2
    assert outcome["memory"][0] == outcome["jsonl"][0]
