"""Session-scoped fixtures shared by all reproduction benchmarks."""

from __future__ import annotations

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.calibration import calibrate, default_microbenchmarks
from repro.platform import OPENRISC_SW_COSTS


@pytest.fixture(scope="session")
def calibration_report():
    """One calibration run shared by every bench (it is deterministic)."""
    return calibrate(default_microbenchmarks(scale=64), OPENRISC_SW_COSTS)


@pytest.fixture(scope="session")
def calibrated_costs(calibration_report):
    return calibration_report.costs
