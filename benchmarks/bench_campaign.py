"""Campaign throughput — the warm-pool and manifest-index gates.

Two claims of the campaign throughput engine, each with a hard gate:

* **Warm sweeps.**  A generational sweep (the Fig. 4 allocation space,
  re-evaluated generation after generation the way ``repro.dse`` does)
  running on one persistent :class:`~repro.batch.WorkerPool` must beat
  the fresh-pool-per-generation path by at least
  ``GATE_WARM_SWEEP_SPEEDUP`` in throughput, with byte-identical
  payloads on both paths (and vs the inline reference), and without
  spawning a single extra process after warm-up.

* **Manifest stats.**  ``repro cache stats`` against the journalled
  manifest index must beat the full directory walk by at least
  ``GATE_STATS_SPEEDUP`` at ``STATS_ENTRIES`` real entries, agreeing
  with it on every aggregate.

The machine-readable ``BENCH_campaign.json`` trajectory artifact lands
in ``results/`` and at the repository root (the copy CI uploads).
Gates are plain asserts so they hold under ``--benchmark-disable``.
"""

from __future__ import annotations

import hashlib
import json
import time

from harness import RESULTS_DIR, format_table, write_result
from repro.batch import (
    Campaign,
    ResultCache,
    WorkerPool,
    cache_stats,
    fig4_sweep_configs,
)

#: Warm-pool throughput over fresh-pool-per-generation throughput.
GATE_WARM_SWEEP_SPEEDUP = 2.0
#: Manifest ``cache stats`` over the directory-walk path.
GATE_STATS_SPEEDUP = 5.0
#: Real cache entries behind the stats gate.
STATS_ENTRIES = 10_000

#: Generations of the Fig. 4 sweep (27 allocation points each) — the
#: shape of a ``repro.dse`` run with the evaluation cache disabled.
GENERATIONS = 6
WORKERS = 2
#: Spawn is the portable worst case for pool start-up — exactly the
#: cost a persistent pool amortises — and matches the tier-1 suite.
START_METHOD = "spawn"

#: Best-of-N timing for the stats paths (both are pure reads).
STATS_REPEATS = 3

#: Both copies of the trajectory artifact: the results directory (the
#: benchmark harness convention) and the repository root (CI uploads).
REPO_ROOT = RESULTS_DIR.parent.parent
CAMPAIGN_JSON_PATHS = (RESULTS_DIR / "BENCH_campaign.json",
                      REPO_ROOT / "BENCH_campaign.json")


def _canonical(results) -> str:
    """Order-independent canonical JSON of a campaign's payloads."""
    body = sorted((r.config.name, r.payload) for r in results)
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _sweep_generations():
    configs = fig4_sweep_configs(max_units_per_class=3,
                                 evaluate_system=False)
    return [list(configs) for _ in range(GENERATIONS)]


def _run_cold(generations):
    """Fresh campaign (and thus fresh pool) per generation."""
    outputs = []
    start = time.perf_counter()
    for configs in generations:
        campaign = Campaign(configs, workers=WORKERS, cache=None,
                            retries=0, start_method=START_METHOD)
        outputs.append(_canonical(campaign.run()))
    return time.perf_counter() - start, outputs


def _run_warm(generations):
    """Every generation on one persistent pool."""
    outputs = []
    pool = WorkerPool(WORKERS, start_method=START_METHOD)
    try:
        start = time.perf_counter()
        for configs in generations:
            campaign = Campaign(configs, workers=WORKERS, cache=None,
                                retries=0, pool=pool)
            outputs.append(_canonical(campaign.run()))
        elapsed = time.perf_counter() - start
        spawned = pool.spawned
    finally:
        pool.shutdown()
    return elapsed, outputs, spawned


def _build_stats_cache(root) -> ResultCache:
    cache = ResultCache(root)
    for i in range(STATS_ENTRIES):
        key = hashlib.sha256(f"bench-stats-{i}".encode()).hexdigest()
        cache.put(key, {"value": i, "latency_cycles": 100 + i % 7},
                  describe=f"stats entry {i}")
    return cache


def _best_of(fn, repeats: int = STATS_REPEATS):
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_campaign_throughput(benchmark, tmp_path):
    payload = {}

    def run_all():
        payload.clear()

        # -- warm-pool sweep gate ---------------------------------------
        generations = _sweep_generations()
        tasks = sum(len(g) for g in generations)
        inline = _canonical(Campaign(generations[0], workers=0,
                                     cache=None).run())
        cold_s, cold_out = _run_cold(generations)
        warm_s, warm_out, spawned = _run_warm(generations)
        assert all(out == inline for out in cold_out), (
            "fresh-pool payloads diverged from the inline reference")
        assert all(out == inline for out in warm_out), (
            "warm-pool payloads diverged from the inline reference")
        assert spawned == WORKERS, (
            f"warm pool spawned {spawned} processes for {WORKERS} slots "
            "— workers were lost and replaced mid-sweep")

        # -- manifest stats gate ----------------------------------------
        cache = _build_stats_cache(tmp_path / "cache")
        scan_s, scan_stats = _best_of(
            lambda: cache_stats(cache, rescan=True))
        index_s, index_stats = _best_of(
            lambda: cache_stats(cache, rescan=False))
        for field in ("entries", "valid", "invalid", "bytes"):
            assert getattr(scan_stats, field) == getattr(index_stats, field), (
                f"stats disagree on {field}: scan "
                f"{getattr(scan_stats, field)} vs manifest "
                f"{getattr(index_stats, field)}")
        assert scan_stats.entries == STATS_ENTRIES

        payload.update({
            "generations": GENERATIONS,
            "tasks_per_generation": tasks // GENERATIONS,
            "workers": WORKERS,
            "start_method": START_METHOD,
            "cold_sweep_s": round(cold_s, 4),
            "warm_sweep_s": round(warm_s, 4),
            "cold_tasks_per_s": round(tasks / cold_s, 2),
            "warm_tasks_per_s": round(tasks / warm_s, 2),
            "warm_sweep_speedup": round(cold_s / warm_s, 3),
            "warm_pool_spawned": spawned,
            "stats_entries": STATS_ENTRIES,
            "stats_scan_s": round(scan_s, 4),
            "stats_manifest_s": round(index_s, 4),
            "stats_speedup": round(scan_s / index_s, 2),
            "gates": {
                "warm_sweep_speedup": GATE_WARM_SWEEP_SPEEDUP,
                "stats_speedup": GATE_STATS_SPEEDUP,
            },
        })
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ["warm sweep", f"{payload['cold_sweep_s']:.2f}s",
         f"{payload['warm_sweep_s']:.2f}s",
         f"{payload['warm_sweep_speedup']:.2f}x",
         f">= {GATE_WARM_SWEEP_SPEEDUP:.1f}x"],
        [f"cache stats ({STATS_ENTRIES} entries)",
         f"{payload['stats_scan_s'] * 1e3:.1f}ms",
         f"{payload['stats_manifest_s'] * 1e3:.1f}ms",
         f"{payload['stats_speedup']:.2f}x",
         f">= {GATE_STATS_SPEEDUP:.1f}x"],
    ]
    report = format_table(
        "Campaign throughput engine - before/after",
        ["path", "baseline", "engine", "speedup", "gate"], rows)
    print("\n" + report)
    write_result("campaign_throughput.txt", report + "\n")

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    for path in CAMPAIGN_JSON_PATHS:
        path.write_text(text, encoding="utf-8")
    contents = {path.read_bytes() for path in CAMPAIGN_JSON_PATHS}
    assert len(contents) == 1, "BENCH_campaign.json copies diverged"

    assert payload["warm_sweep_speedup"] >= GATE_WARM_SWEEP_SPEEDUP, (
        f"warm-pool sweep only {payload['warm_sweep_speedup']:.2f}x over "
        f"fresh pools; gate is {GATE_WARM_SWEEP_SPEEDUP:.1f}x")
    assert payload["stats_speedup"] >= GATE_STATS_SPEEDUP, (
        f"manifest stats only {payload['stats_speedup']:.2f}x over the "
        f"directory walk; gate is {GATE_STATS_SPEEDUP:.1f}x")
