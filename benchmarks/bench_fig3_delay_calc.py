"""Figure 3 — the delay-calculation walkthrough, reproduced literally.

The paper's example charges a segment with the cost table
``assign=2, add=1, lt=3, load=5, if=2.4, call=18`` and a function body
contributing 40.4 cycles, reaching the running totals
5.4 → 8.4 → 15.4 → 35.4 → 75.8.  This bench executes the same segment
through the annotation layer and checks every intermediate total.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro.annotate import (
    AArray,
    AInt,
    CostContext,
    MODE_SW,
    OperationCosts,
    Var,
    active,
    annotated_function,
    branch,
)

#: The exact cost table of the paper's Fig. 3.
FIG3_COSTS = OperationCosts({
    "assign": 2.0, "add": 1.0, "lt": 3.0, "load": 5.0,
    "branch": 2.4, "call": 18.0,
}, name="fig3")

#: The paper's running totals after each statement.
EXPECTED_TOTALS = (5.4, 8.4, 15.4, 35.4, 75.8)


@annotated_function
def _func(datai):
    """The figure's ``func``: its interior contributes 40.4 cycles.

    One conditional evaluation (2.4) plus 38 additions (38.0) — the
    figure states only the total; this composition realizes it.
    """
    s = datai
    if branch(True):
        for _ in range(19):
            s = s + 1
            s = s + 1
    return s


def _func_interior_cycles() -> float:
    """Cycles charged by _func's body, excluding call overhead."""
    context = CostContext(FIG3_COSTS, MODE_SW)
    with active(context):
        _func(AInt(1))
    return (context.total_cycles
            - FIG3_COSTS.get("call") - FIG3_COSTS.get("assign"))


def _run_segment():
    """Execute the figure's segment; return the five probe totals."""
    context = CostContext(FIG3_COSTS, MODE_SW)
    probes = []
    i = Var(-1)
    c, d = AInt(3), AInt(4)
    array = AArray([10 * k for k in range(16)])
    datai = Var(0)
    with active(context):
        # (ch1.read() would precede: channel accesses are nodes, not
        #  segment cost)
        taken = branch(i.get() < 0)                    # t_if + t_<
        probes.append(context.total_cycles)
        if taken:
            i.assign(c + d)                            # t_= + t_+
        probes.append(context.total_cycles)
        datai.assign(array[int(i.get())])              # t_= + t_[]
        probes.append(context.total_cycles)
        before_call = context.total_cycles
        datao = _func(datai.get())                     # t_= + t_fc + interior
        probes.append(before_call + FIG3_COSTS.get("call")
                      + FIG3_COSTS.get("assign"))
        probes.append(context.total_cycles)
        # (ch2.read() would follow, ending the segment)
    assert int(datao) == datai.value + 38
    return probes


def test_fig3_delay_calculation(benchmark):
    probes = benchmark.pedantic(_run_segment, rounds=1, iterations=1)
    interior = _func_interior_cycles()

    rows = [
        ["ch1.read()", "segment starts", "0.0"],
        ["if (i<0)", "t_if + t_<", f"{probes[0]:.1f}"],
        ["i = c + d", "t_= + t_+", f"{probes[1]:.1f}"],
        ["datai = array[i]", "t_= + t_[]", f"{probes[2]:.1f}"],
        ["datao = func(datai)", "t_= + t_fc", f"{probes[3]:.1f}"],
        ["(func interior)", f"+{interior:.1f}", f"{probes[4]:.1f}"],
        ["ch2.read()", "segment ends", f"{probes[4]:.1f}"],
    ]
    table = format_table(
        "Figure 3 - delay calculation walkthrough (paper cost table)",
        ["Segment code", "Charges", "time +="],
        rows,
    )
    print("\n" + table)
    write_result("fig3_delay_calc.txt", table + "\n")

    for got, expected in zip(probes, EXPECTED_TOTALS):
        assert abs(got - expected) < 1e-9, (probes, EXPECTED_TOTALS)
    assert abs(interior - 40.4) < 1e-9
