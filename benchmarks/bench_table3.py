"""Table 3 — SW estimation results for the vocoder.

The concurrent five-process vocoder runs strict-timed under the
performance library; each stage's estimated computation cycles are
compared against the same kernels executed on the reference ISS with
*identical* per-frame inputs (the sequential reference chain shares the
stage objects' state semantics).  Host-time columns as in Table 1.
"""

from __future__ import annotations

import time
from typing import Dict

from harness import format_table, write_result
from repro import Simulator
from repro.core import PerformanceLibrary
from repro.iss.machine import Machine
from repro.iss.runtime import prepare_program, run_program
from repro.platform import EnvironmentResource, Mapping, make_cpu
from repro.workloads.vocoder import (
    STAGE_NAMES,
    build_vocoder,
    make_frames,
    make_stages,
    run_reference,
)

FRAME_COUNT = 6
ERROR_BOUND_PCT = 12.0


class IssExecutor:
    """Stage executor backed by compiled kernels on the reference machine."""

    def __init__(self, memory_words: int = 1 << 16):
        self.machine = Machine(memory_words=memory_words)
        self.programs: Dict[str, tuple] = {}
        self.stage_of_kernel: Dict[str, str] = {}
        self.cycles_by_stage: Dict[str, int] = {}
        for stage in make_stages():
            program = prepare_program(list(stage.kernels),
                                      entry=stage.kernels[0])
            entry_name = stage.kernels[0].__name__
            self.programs[entry_name] = (program, entry_name)
            self.stage_of_kernel[entry_name] = stage.name
            self.cycles_by_stage[stage.name] = 0

    def __call__(self, fn, args):
        program, entry = self.programs[fn.__name__]
        result = run_program(program, entry, args, machine=self.machine)
        self.cycles_by_stage[self.stage_of_kernel[fn.__name__]] += result.cycles
        return result.return_value


def test_table3(benchmark, calibrated_costs):
    frames = make_frames(FRAME_COUNT)
    outcome = {}

    def run_all():
        # --- strict-timed simulation with the library ------------------
        start = time.perf_counter()
        simulator = Simulator()
        design = build_vocoder(simulator, frames, annotate=True)
        cpu = make_cpu("cpu0", costs=calibrated_costs)
        env = EnvironmentResource("testbench")
        mapping = Mapping()
        for name, process in design.processes.items():
            mapping.assign(process, cpu if name in STAGE_NAMES else env)
        perf = PerformanceLibrary(mapping).attach(simulator)
        simulator.run()
        simulator.assert_quiescent()
        timed_host = time.perf_counter() - start

        # --- plain untimed simulation ---------------------------------
        start = time.perf_counter()
        sim2 = Simulator()
        design2 = build_vocoder(sim2, frames, annotate=False)
        sim2.run()
        sim2.assert_quiescent()
        untimed_host = time.perf_counter() - start

        # --- ISS reference over identical inputs -----------------------
        start = time.perf_counter()
        executor = IssExecutor()
        iss_results = run_reference(frames, execute=executor)
        iss_host = time.perf_counter() - start

        # functional cross-check: all three agree
        checks_timed = [p["check"] for p in design.results]
        checks_plain = [p["check"] for p in design2.results]
        checks_iss = [p["check"] for p in iss_results]
        assert checks_timed == checks_plain == checks_iss

        outcome.update(
            perf=perf, design=design, executor=executor,
            timed_host=timed_host, untimed_host=untimed_host,
            iss_host=iss_host,
        )
        return outcome

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    perf = outcome["perf"]
    executor = outcome["executor"]
    timed_host = outcome["timed_host"]
    untimed_host = outcome["untimed_host"]
    iss_host = outcome["iss_host"]

    rows = []
    errors = []
    for stage_name in STAGE_NAMES:
        stats = perf.stats[f"vocoder.{stage_name}"]
        iss_cycles = executor.cycles_by_stage[stage_name]
        error = 100.0 * (stats.cycles - iss_cycles) / iss_cycles
        errors.append((stage_name, error))
        rows.append([
            stage_name,
            f"{stats.cycles:.0f}",
            str(iss_cycles),
            f"{error:+.2f}%",
        ])
    overload = timed_host / untimed_host
    gain = iss_host / timed_host
    footer = (f"host: library {1e3 * timed_host:.0f} ms, "
              f"untimed {1e3 * untimed_host:.0f} ms, "
              f"ISS {1e3 * iss_host:.0f} ms  ->  "
              f"overload {overload:.1f}x, gain vs ISS {gain:.1f}x")

    table = format_table(
        f"Table 3 - SW estimation results for the vocoder "
        f"({FRAME_COUNT} frames)",
        ["Process", "Library est (cyc)", "ISS (cyc)", "Error"],
        rows,
    ) + "\n" + footer
    print("\n" + table)
    write_result("table3.txt", table + "\n")

    for stage_name, error in errors:
        assert abs(error) < ERROR_BOUND_PCT, (
            f"{stage_name}: estimation error {error:.1f}% exceeds "
            f"{ERROR_BOUND_PCT}%"
        )
    # Host-time gain compresses in this substrate (both the annotated
    # simulation and the ISS are interpreted Python; the paper compared
    # native SystemC against a compiled ISS).  Guard only against the
    # library becoming grossly slower than instruction-level simulation.
    assert gain > 0.7, f"gain vs ISS collapsed to {gain:.2f}x"
