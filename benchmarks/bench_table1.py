"""Table 1 — SW estimation results for sequential benchmarks.

Regenerates the paper's first table: for each of the six sequential
benchmarks, the library's estimated cycle count vs the reference ISS,
the estimation error, and the host-time columns (library execution
time, overload w.r.t. the plain untimed simulation, gain w.r.t. the
ISS).

Shape targets from the paper's prose: SW error below ~4.5 % (we allow
10 % against our substrate — see EXPERIMENTS.md), gain over the ISS
well above 1×.
"""

from __future__ import annotations

from harness import (
    format_table,
    run_sequential_case,
    table1_cases,
    write_result,
)
from repro.platform import CPU_CLOCK_MHZ

#: Accuracy bound asserted by this bench (paper: 4.5 %).
ERROR_BOUND_PCT = 10.0


def test_table1(benchmark, calibrated_costs):
    cases = table1_cases()
    results = []

    def run_all():
        results.clear()
        for case in cases:
            results.append(run_sequential_case(case, calibrated_costs))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for r in results:
        est_us = r.estimated_cycles / CPU_CLOCK_MHZ  # cycles @ MHz -> us
        rows.append([
            r.name,
            f"{r.estimated_cycles:.0f}",
            f"{est_us:.2f}",
            str(r.iss_cycles),
            f"{r.error_pct:+.2f}%",
            f"{1e3 * r.library_host_s:.1f}",
            f"{r.overload:.1f}x",
            f"{r.gain:.1f}x",
        ])
    table = format_table(
        "Table 1 - SW estimation results for sequential benchmarks "
        f"(CPU @ {CPU_CLOCK_MHZ:.0f} MHz)",
        ["Benchmark", "Library est (cyc)", "est time (us)", "ISS (cyc)",
         "Error", "Lib host (ms)", "Overload vs untimed", "Gain vs ISS"],
        rows,
    )
    print("\n" + table)
    write_result("table1.txt", table + "\n")

    for r in results:
        assert abs(r.error_pct) < ERROR_BOUND_PCT, (
            f"{r.name}: estimation error {r.error_pct:.1f}% exceeds "
            f"{ERROR_BOUND_PCT}%"
        )
        # Both simulators are interpreted Python here, so the paper's
        # >142x gain compresses; guard against gross regressions only.
        assert r.gain > 0.6, (
            f"{r.name}: annotated simulation fell far behind the ISS "
            f"(gain {r.gain:.2f}x)"
        )
