"""Figure 5 — untimed delta-cycle vs strict-timed simulation.

Three processes generate signals s1, s2, s3 in the same delta cycle of
the untimed specification.  P1 maps to a HW resource, P2 and P3 to one
SW processor.  The bench renders both timelines and asserts the
figure's two claims:

* untimed: every event sits at t = 0, ordered only by delta cycles;
* strict-timed: P1's segments overlap the processor's activity
  (parallel resources run concurrently) while P2 and P3 are serialized
  on the shared CPU even though they were awakened in the same delta.
"""

from __future__ import annotations

from harness import format_table, write_result
from repro import Simulator, TraceRecorder
from repro.annotate import AInt
from repro.core import PerformanceLibrary
from repro.platform import Mapping, make_cpu, make_fabric

WORK_ITEMS = 3


def _build(simulator: Simulator, timed: bool, costs):
    from repro import SimTime, wait

    s1 = simulator.signal("s1", initial=0)
    s2 = simulator.signal("s2", initial=0)
    s3 = simulator.signal("s3", initial=0)
    top = simulator.module("top")

    def compute(scale: int) -> int:
        accumulator = AInt(0)
        for k in range(40 * scale):
            accumulator = accumulator + k * 3
        return int(accumulator)

    def generator_for(signal, scale):
        def body():
            # All three processes start in the same delta cycle, like
            # the figure's P1..P3; the zero wait separates successive
            # writes into their own delta cycles in the untimed run.
            for item in range(WORK_ITEMS):
                value = compute(scale)
                yield from signal.write(value + item)
                yield wait(SimTime.fs(0))
        body.__name__ = f"p_{signal.name}"
        return body

    processes = {
        "p1": top.add_process(generator_for(s1, 1), name="p1"),
        "p2": top.add_process(generator_for(s2, 2), name="p2"),
        "p3": top.add_process(generator_for(s3, 2), name="p3"),
    }
    perf = None
    resources = {}
    if timed:
        cpu = make_cpu("cpu0", costs=costs)
        hw = make_fabric("hw1", k_factor=0.5)
        mapping = Mapping()
        mapping.assign(processes["p1"], hw)
        mapping.assign(processes["p2"], cpu)
        mapping.assign(processes["p3"], cpu)
        perf = PerformanceLibrary(mapping).attach(simulator)
        resources = {"cpu": cpu, "hw": hw}
    signals = {"s1": s1, "s2": s2, "s3": s3}
    return signals, perf, resources


def _timeline(signals) -> list:
    rows = []
    for name, signal in signals.items():
        for time_fs, delta, value in signal.history[1:]:
            rows.append((time_fs, delta, name, value))
    rows.sort()
    return rows


def test_fig5_timelines(benchmark, calibrated_costs):
    outcome = {}

    def run_both():
        untimed_sim = Simulator()
        untimed_signals, _, _ = _build(untimed_sim, False, calibrated_costs)
        untimed_sim.run()
        untimed_sim.assert_quiescent()

        timed_sim = Simulator()
        timed_signals, perf, resources = _build(timed_sim, True, calibrated_costs)
        timed_sim.run()
        timed_sim.assert_quiescent()
        outcome.update(
            untimed=_timeline(untimed_signals),
            timed=_timeline(timed_signals),
            perf=perf, resources=resources,
            final=timed_sim.now,
        )
        return outcome

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    untimed = outcome["untimed"]
    timed = outcome["timed"]
    perf = outcome["perf"]
    cpu = outcome["resources"]["cpu"]
    hw = outcome["resources"]["hw"]

    def rows_of(events):
        return [[f"{fs / 1e6:.3f}", str(delta), name, str(value)]
                for fs, delta, name, value in events]

    part_a = format_table(
        "Figure 5a - untimed (delta-cycle) simulation",
        ["time (ns)", "delta", "signal", "value"], rows_of(untimed))
    part_b = format_table(
        "Figure 5b - strict-timed simulation (P1 on hw1, P2/P3 on cpu0)",
        ["time (ns)", "delta", "signal", "value"], rows_of(timed))
    report = part_a + "\n\n" + part_b + "\n\n" + perf.report(outcome["final"])
    print("\n" + report)
    write_result("fig5_timelines.txt", report + "\n")

    # 5a: all untimed events collapse onto t=0, separated only by deltas.
    assert all(fs == 0 for fs, _, _, _ in untimed)
    assert len({delta for _, delta, _, _ in untimed}) >= 1

    # 5b: physical times are spread out and s1 (HW) completes all its
    # work while the CPU is still serializing P2 and P3.
    s1_times = [fs for fs, _, name, _ in timed if name == "s1"]
    s2_times = [fs for fs, _, name, _ in timed if name == "s2"]
    s3_times = [fs for fs, _, name, _ in timed if name == "s3"]
    assert len(set(s1_times)) == WORK_ITEMS
    assert max(s1_times) < max(s2_times + s3_times)

    # Serialization: the CPU's busy time equals the sum of its two
    # processes' busy times, and no instant hosted both (their segments
    # never overlapped: total busy fits within the simulated span).
    p2_busy = perf.stats["top.p2"].busy_time
    p3_busy = perf.stats["top.p3"].busy_time
    assert cpu.busy_time.femtoseconds == (
        p2_busy.femtoseconds + p3_busy.femtoseconds
    )
    assert cpu.busy_time.femtoseconds <= outcome["final"].femtoseconds

    # Parallelism: HW work overlapped the CPU's window (the run is
    # shorter than the serialized sum of everything).
    total_busy = cpu.busy_time + hw.busy_time
    assert outcome["final"].femtoseconds < total_busy.femtoseconds
