"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper.  This
module hosts the pieces they share: the single-process design wrapper
(for the sequential Table 1 benchmarks), host-time measurement, table
rendering, and the results directory.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Callable, List, Optional, Sequence

from repro import SimTime, Simulator, wait
from repro.annotate.costs import OperationCosts
from repro.core import PerformanceLibrary
from repro.iss import ICache, run_compiled
from repro.platform import (
    EnvironmentResource,
    Mapping,
    make_cpu,
)
from repro.workloads import wrap_args

#: Where benches drop their rendered tables.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text, encoding="utf-8")
    return path


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


@dataclasses.dataclass
class SequentialCase:
    """One row of Table 1: a sequential single-source benchmark."""

    name: str
    functions: tuple          # entry first; everything the ISS must compile
    make_args: Callable[[], tuple]


@dataclasses.dataclass
class SequentialResult:
    name: str
    estimated_cycles: float
    iss_cycles: int
    library_host_s: float     # timed simulation wall time
    untimed_host_s: float     # plain (no library) simulation wall time
    iss_host_s: float         # ISS wall time

    @property
    def error_pct(self) -> float:
        return 100.0 * (self.estimated_cycles - self.iss_cycles) / self.iss_cycles

    @property
    def overload(self) -> float:
        """Library host time over plain untimed simulation host time."""
        return self.library_host_s / self.untimed_host_s

    @property
    def gain(self) -> float:
        """ISS host time over library host time (the paper's speed gain)."""
        return self.iss_host_s / self.library_host_s


def _single_process_design(fn: Callable, args: tuple,
                           costs: Optional[OperationCosts]):
    """Build a one-process design running ``fn``; return (sim, process).

    With ``costs`` set, the performance library is attached and the
    kernel runs on annotated arguments; otherwise the design is the
    plain untimed specification.
    """
    simulator = Simulator()
    top = simulator.module("top")
    run_args = wrap_args(args) if costs is not None else args

    def body():
        fn(*run_args)
        yield wait(SimTime.fs(0))

    process = top.add_process(body, name="kernel")
    perf = None
    if costs is not None:
        cpu = make_cpu("cpu0", costs=costs, rtos=None)
        mapping = Mapping()
        mapping.assign(process, cpu)
        perf = PerformanceLibrary(mapping).attach(simulator)
    return simulator, process, perf


def run_sequential_case(case: SequentialCase,
                        costs: OperationCosts,
                        icache: Optional[ICache] = None) -> SequentialResult:
    """Measure one Table 1 row: estimation accuracy + host times."""
    entry = case.functions[0]

    # Strict-timed simulation with the library attached.
    start = time.perf_counter()
    simulator, process, perf = _single_process_design(entry, case.make_args(), costs)
    simulator.run()
    library_host = time.perf_counter() - start
    estimated = perf.stats[process.full_name].cycles

    # Plain untimed simulation (the original SystemC specification).
    start = time.perf_counter()
    simulator, _, _ = _single_process_design(entry, case.make_args(), None)
    simulator.run()
    untimed_host = time.perf_counter() - start

    # Reference ISS execution.
    start = time.perf_counter()
    iss = run_compiled(list(case.functions), args=case.make_args(),
                       entry=entry, icache=icache)
    iss_host = time.perf_counter() - start

    return SequentialResult(
        name=case.name,
        estimated_cycles=estimated,
        iss_cycles=iss.cycles,
        library_host_s=library_host,
        untimed_host_s=untimed_host,
        iss_host_s=iss_host,
    )


def table1_cases() -> List[SequentialCase]:
    """The six sequential benchmarks of Table 1, paper-sized."""
    from repro.workloads.array_ops import array_ops, make_array_inputs
    from repro.workloads.compressor import compress, make_compress_inputs
    from repro.workloads.fibonacci import (
        fib_benchmark, fib_iterative, fib_recursive,
    )
    from repro.workloads.fir import fir_filter, make_fir_inputs
    from repro.workloads.sorting import (
        bubble_sort, make_sort_inputs, quick_partition, quick_sort,
        quick_sort_checked,
    )

    return [
        SequentialCase("FIR", (fir_filter,),
                       lambda: make_fir_inputs(256, 16)),
        SequentialCase("Compress", (compress,),
                       lambda: make_compress_inputs(1024)),
        SequentialCase("Quick sort",
                       (quick_sort_checked, quick_sort, quick_partition),
                       lambda: (make_sort_inputs(256)[0], 256)),
        SequentialCase("Bubble", (bubble_sort,),
                       lambda: make_sort_inputs(96, seed=3)),
        SequentialCase("Fibonacci",
                       (fib_benchmark, fib_recursive, fib_iterative),
                       lambda: (17,)),
        SequentialCase("Array", (array_ops,),
                       lambda: make_array_inputs(512)),
    ]
