"""Ablation B — instruction-cache sensitivity of the reference ISS.

The paper (§1) singles out caches as the classic source of SW
estimation error.  This ablation re-measures three Table 1 rows with a
direct-mapped I-cache enabled on the reference machine: the cache adds
miss cycles the source-level model cannot see, so the estimation error
drifts by the (workload-dependent) miss share.
"""

from __future__ import annotations

from harness import format_table, table1_cases, write_result
from repro.annotate import CostContext, MODE_SW, active
from repro.iss import ICache, run_compiled
from repro.workloads import wrap_args

CASE_NAMES = ("FIR", "Quick sort", "Fibonacci")


def _estimate(case, costs) -> float:
    context = CostContext(costs, MODE_SW)
    args = wrap_args(case.make_args())
    with active(context):
        case.functions[0](*args)
    return context.total_cycles


def test_ablation_icache(benchmark, calibrated_costs):
    cases = [c for c in table1_cases() if c.name in CASE_NAMES]
    collected = []

    def run_all():
        collected.clear()
        for case in cases:
            estimated = _estimate(case, calibrated_costs)
            plain = run_compiled(list(case.functions), args=case.make_args(),
                                 entry=case.functions[0])
            cache = ICache(lines=16, line_words=4, miss_penalty=10)
            cached = run_compiled(list(case.functions), args=case.make_args(),
                                  entry=case.functions[0], icache=cache)
            collected.append((case.name, estimated, plain, cached, cache))
        return collected

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, estimated, plain, cached, cache in collected:
        err_plain = 100.0 * (estimated - plain.cycles) / plain.cycles
        err_cached = 100.0 * (estimated - cached.cycles) / cached.cycles
        rows.append([
            name,
            str(plain.cycles),
            str(cached.cycles),
            f"{100 * cache.hit_rate:.1f}%",
            f"{err_plain:+.2f}%",
            f"{err_cached:+.2f}%",
        ])
    table = format_table(
        "Ablation B - I-cache sensitivity of the ISS reference "
        "(16 lines x 4 instr, 10-cycle miss)",
        ["Benchmark", "ISS cycles", "ISS+icache", "hit rate",
         "error (no cache)", "error (icache)"],
        rows,
    )
    print("\n" + table)
    write_result("ablation_icache.txt", table + "\n")

    for name, _estimated, plain, cached, cache in collected:
        assert cached.cycles > plain.cycles, name
        assert cached.instructions == plain.instructions, name
        assert 0.0 < cache.hit_rate < 1.0, name
