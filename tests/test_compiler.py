"""Mini-compiler tests: semantics equivalence and rejection of the
unsupported.

Every kernel compiled to OR-lite must return exactly what the same
Python function returns natively — the single-source contract.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate.functions import aint, annotated_function, arange, make_array
from repro.errors import CompileError
from repro.iss import compile_functions, run_compiled

small = st.integers(min_value=-50, max_value=50)
positive = st.integers(min_value=1, max_value=40)


# --- semantics: compiled result == python result ---------------------------

def arithmetic_mix(a, b):
    x = a + b * 3
    y = (a - b) ^ (a & b)
    z = (x << 2) | (y & 15)
    return z - (x >> 1)


def division_mix(a, b):
    q = a // b
    r = a % b
    return q * 1000 + r


def control_flow(a, b):
    result = 0
    if a > b:
        result = 1
    elif a == b:
        result = 2
    else:
        result = 3
    if a > 0 and b > 0:
        result = result + 10
    if a < 0 or b < 0:
        result = result + 100
    if not (a == 0):
        result = result + 1000
    return result


def loops(n):
    total = 0
    for i in range(n):
        total = total + i
    i = 0
    while i * i < n:
        i = i + 1
    down = 0
    for j in range(n, 0, -2):
        down = down + j
    return total * 10000 + i * 100 + down


def break_continue(n):
    total = 0
    for i in range(n):
        if i == 5:
            continue
        if i == 8:
            break
        total = total + i
    while True:
        total = total + 1
        break
    return total


def compare_values(a, b):
    return ((a < b) * 1 + (a <= b) * 2 + (a > b) * 4
            + (a >= b) * 8 + (a == b) * 16 + (a != b) * 32)


def unary_mix(a):
    return (-a) + (~a) * 3 + (not a) * 100 + (+a)


def arrays(base, n):
    buffer = make_array(n)
    for i in range(n):
        buffer[i] = base + i * i
    total = 0
    for i in range(n):
        total = total + buffer[i]
    buffer[0] = total
    return buffer[0] - buffer[n - 1]


def helper_double(x):
    return x * 2


def helper_clamp(x, low, high):
    if x < low:
        return low
    if x > high:
        return high
    return x


def calls(a, b):
    return helper_double(a) + helper_clamp(helper_double(b), 0, 50)


def recursion_gcd(a, b):
    if b == 0:
        return a
    return recursion_gcd(b, a % b)


def shadow_bound(n):
    # the loop bound must be captured once, like Python's range()
    total = 0
    for i in range(n):
        n = 0
        total = total + 1
    return total


SEMANTIC_CASES = [
    (arithmetic_mix, (), (7, 3)),
    (arithmetic_mix, (), (-7, 13)),
    (division_mix, (), (17, 5)),
    (division_mix, (), (-17, 5)),
    (division_mix, (), (17, -5)),
    (control_flow, (), (3, 2)),
    (control_flow, (), (-1, -1)),
    (control_flow, (), (0, 4)),
    (loops, (), (10,)),
    (loops, (), (1,)),
    (break_continue, (), (20,)),
    (compare_values, (), (2, 5)),
    (compare_values, (), (5, 5)),
    (unary_mix, (), (6,)),
    (unary_mix, (), (0,)),
    (arrays, (), (3, 8)),
    (calls, (helper_double, helper_clamp), (4, 30)),
    (recursion_gcd, (), (48, 36)),
    (shadow_bound, (), (7,)),
]


@pytest.mark.parametrize("fn,helpers,args", SEMANTIC_CASES,
                         ids=lambda v: getattr(v, "__name__", str(v)))
def test_compiled_matches_python(fn, helpers, args):
    expected = fn(*args)
    result = run_compiled([fn, *helpers], args=list(args), entry=fn)
    assert result.return_value == int(expected)


@given(a=small, b=small.filter(lambda v: v != 0))
@settings(max_examples=25, deadline=None)
def test_division_property(a, b):
    assert run_compiled([division_mix], args=[a, b]).return_value == \
        division_mix(a, b)


@given(a=small, b=small)
@settings(max_examples=25, deadline=None)
def test_comparison_property(a, b):
    assert run_compiled([compare_values], args=[a, b]).return_value == \
        compare_values(a, b)


@given(n=positive)
@settings(max_examples=15, deadline=None)
def test_loop_property(n):
    assert run_compiled([loops], args=[n]).return_value == loops(n)


def test_array_argument_writeback():
    def negate(a, n):
        for i in range(n):
            a[i] = 0 - a[i]
        return 0

    data = [1, -2, 3]
    run_compiled([negate], args=[data, 3])
    assert data == [-1, 2, -3]


def test_intrinsics_compile():
    def with_intrinsics(n):
        counter = aint(0)
        scratch = make_array(n)
        for i in arange(n):
            scratch[i] = i
            counter = counter + scratch[i]
        return counter

    expected = with_intrinsics(6)
    assert run_compiled([with_intrinsics], args=[6]).return_value == expected


def test_decorated_functions_compile():
    @annotated_function
    def decorated(x):
        return x + 1

    assert run_compiled([decorated], args=[41]).return_value == 42


def test_module_constants_fold():
    assert run_compiled([_uses_constant], args=[5]).return_value == 5 + _SCALE


_SCALE = 4096


def _uses_constant(x):
    return x + _SCALE


def test_call_hoisting_preserves_argument_order():
    def f(x):
        return x * 10

    def g(a):
        return f(a + 1) + f(a + 2) * f(a + 3)

    assert run_compiled([g, f], args=[1], entry=g).return_value == g(1)


# --- rejection of unsupported constructs ------------------------------------

def test_float_constant_rejected():
    def bad(x):
        return x + 1.5
    with pytest.raises(CompileError, match="integers only"):
        compile_functions([bad])


def test_unknown_function_rejected():
    def bad(x):
        return undefined_helper(x)  # noqa: F821
    with pytest.raises(CompileError, match="unknown function"):
        compile_functions([bad])


def test_unknown_variable_rejected():
    def bad(x):
        return x + mystery  # noqa: F821
    with pytest.raises(CompileError, match="unknown variable"):
        compile_functions([bad])


def test_while_with_call_in_condition_rejected():
    def helper(v):
        return v

    def bad(x):
        while helper(x) > 0:
            x = x - 1
        return x
    with pytest.raises(CompileError, match="while conditions"):
        compile_functions([bad, helper])


def test_chained_comparison_rejected():
    def bad(x):
        return 0 < x < 10
    with pytest.raises(CompileError, match="chained comparisons"):
        compile_functions([bad])


def test_for_over_list_rejected():
    def bad(a):
        total = 0
        for value in a:
            total = total + value
        return total
    with pytest.raises(CompileError, match="range"):
        compile_functions([bad])


def test_variable_step_rejected():
    def bad(n, s):
        total = 0
        for i in range(0, n, s):
            total = total + i
        return total
    with pytest.raises(CompileError, match="step"):
        compile_functions([bad])


def test_keyword_arguments_rejected():
    def helper(v):
        return v

    def bad(x):
        return helper(v=x)
    with pytest.raises(CompileError, match="keyword"):
        compile_functions([bad, helper])


def test_nested_function_rejected():
    def bad(x):
        def inner():
            return 1
        return x
    with pytest.raises(CompileError, match="nested function"):
        compile_functions([bad])


def test_slice_rejected():
    def bad(a):
        return a[1:2]
    with pytest.raises(CompileError, match="slicing"):
        compile_functions([bad])


def test_default_parameters_rejected():
    def bad(x=1):
        return x
    with pytest.raises(CompileError, match="default"):
        compile_functions([bad])


def test_too_many_parameters_rejected():
    def bad(a, b, c, d, e, f, g):
        return a
    with pytest.raises(CompileError, match="parameters"):
        compile_functions([bad])


def test_duplicate_names_rejected():
    def twin(x):
        return x
    first = twin

    def twin(x):  # noqa: F811
        return x + 1
    with pytest.raises(CompileError, match="duplicate"):
        compile_functions([first, twin])


def test_empty_function_list_rejected():
    with pytest.raises(CompileError, match="at least one"):
        compile_functions([])


def test_while_else_rejected():
    def bad(x):
        while x > 0:
            x = x - 1
        else:
            x = 5
        return x
    with pytest.raises(CompileError, match="while/else"):
        compile_functions([bad])


# --- rejection diagnostics point at the offending construct ----------------
#
# Line numbers are relative to each function's own source (``def`` is
# line 1).  These kernels deliberately spread the rejected construct
# over multiple lines: reporting the statement's line instead of the
# offending node's would produce a different (wrong) number.

def _rejection_line(functions, match):
    with pytest.raises(CompileError, match=match) as excinfo:
        compile_functions(functions)
    message = str(excinfo.value)
    assert message.startswith("line "), message
    return int(message[len("line "):].split(":", 1)[0])


def test_while_call_diagnostic_names_the_call_line():
    def helper(v):
        return v

    def bad(x):
        while (x >
               helper(x)):
            x = x - 1
        return x
    # The call sits on line 3 of ``bad``; the while keyword is line 2.
    assert _rejection_line([bad, helper], "while conditions") == 3


def test_for_iter_diagnostic_names_the_iterable_line():
    def bad(a):
        total = 0
        for value in (
                a):
            total = total + value
        return total
    # The non-range iterable is on line 4, not the ``for`` line 3.
    assert _rejection_line([bad], "range") == 4


def test_for_target_diagnostic_names_the_target():
    def bad(a):
        for (i,
             j) in range(4):
            a = a + i + j
        return a
    assert _rejection_line([bad], "simple name") == 2


def test_range_arity_diagnostic_names_the_call_line():
    def bad(n):
        total = 0
        for i in \
                range(0, n, 1, 7):
            total = total + i
        return total
    assert _rejection_line([bad], "1 to 3") == 4


def test_range_step_diagnostic_names_the_step_line():
    def bad(n):
        total = 0
        for i in range(0, n,
                       0):
            total = total + i
        return total
    # The offending constant step lives on line 4.
    assert _rejection_line([bad], "step") == 4


def test_expr_stmt_diagnostic_names_the_expression():
    def bad(x):
        (x +
         1)
        return x
    assert _rejection_line([bad], "must be calls") == 2


def test_aug_assign_diagnostic_names_the_target():
    def bad(x):
        x.value += 1
        return x
    assert _rejection_line([bad], "augmented-assignment") == 2
