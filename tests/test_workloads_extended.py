"""Extended workload tests: DCT, CRC-32, matmul."""

import binascii

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate import uniform_costs
from repro.iss import run_compiled
from repro.workloads import run_annotated
from repro.workloads.extended import (
    crc32_bitwise,
    dct_2d,
    dct_reference,
    make_crc_inputs,
    make_dct_inputs,
    make_matmul_inputs,
    matmul,
)

CASES = [
    ("dct", (dct_2d,), make_dct_inputs),
    ("crc32", (crc32_bitwise,), lambda: make_crc_inputs(96)),
    ("matmul", (matmul,), lambda: make_matmul_inputs(6)),
]


@pytest.mark.parametrize("name,functions,make_args", CASES,
                         ids=[c[0] for c in CASES])
def test_three_backend_equivalence(name, functions, make_args):
    entry = functions[0]
    plain = int(entry(*make_args()))
    annotated, _t_max, _t_min = run_annotated(entry, make_args(),
                                              uniform_costs())
    compiled = run_compiled(list(functions), args=make_args(), entry=entry)
    assert plain == annotated == compiled.return_value


class TestCrc32:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_matches_binascii(self, payload):
        data = list(payload)
        ours = crc32_bitwise(data, len(data))
        assert int(ours) == binascii.crc32(payload)

    def test_empty_message(self):
        assert int(crc32_bitwise([], 0)) == 0


class TestDct:
    def test_against_float_reference(self):
        block, cosines, tmp, out, n = make_dct_inputs()
        dct_2d(block, cosines, tmp, out, n)
        reference = dct_reference(block, n)
        for got, expected in zip(out, reference):
            # Q10 arithmetic with two >>10 stages: tolerate small error
            assert abs(got - expected) <= max(4.0, abs(expected) * 0.02)

    def test_dc_coefficient_of_flat_block(self):
        n = 8
        block = [100] * (n * n)
        from repro.workloads.extended import make_dct_cosines
        out = [0] * (n * n)
        dct_2d(block, make_dct_cosines(n), [0] * (n * n), out, n)
        # flat block: all energy in DC, AC coefficients ~0
        assert abs(out[0] - 100 * n) <= 8
        assert all(abs(v) <= 2 for v in out[1:])


class TestMatmul:
    def test_identity(self):
        n = 4
        identity = [1 if i % (n + 1) == 0 else 0 for i in range(n * n)]
        a = list(range(n * n))
        c = [0] * (n * n)
        matmul(a, identity, c, n)
        assert c == a

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_against_naive(self, n):
        a, b, c, _ = make_matmul_inputs(n)
        matmul(a, b, c, n)
        for i in range(n):
            for j in range(n):
                expected = sum(a[i * n + k] * b[k * n + j] for k in range(n))
                assert c[i * n + j] == expected


class TestBiquadFloat:
    """The AFloat path: plain/annotated equivalence + FPU synthesis."""

    def test_plain_matches_annotated(self):
        from repro.platform import OPENRISC_SW_COSTS
        from repro.workloads.biquad import biquad_filter, make_biquad_inputs

        plain = biquad_filter(*make_biquad_inputs(64))
        annotated, t_max, t_min = run_annotated(
            biquad_filter, make_biquad_inputs(64), OPENRISC_SW_COSTS)
        assert annotated == pytest.approx(plain, rel=1e-12)
        assert t_max >= t_min > 0

    def test_charges_float_operations(self):
        from repro.annotate import CostContext, MODE_SW, active
        from repro.platform import OPENRISC_SW_COSTS
        from repro.workloads import wrap_args
        from repro.workloads.biquad import biquad_filter, make_biquad_inputs

        ctx = CostContext(OPENRISC_SW_COSTS, MODE_SW)
        with active(ctx):
            biquad_filter(*wrap_args(make_biquad_inputs(16)))
        counts = ctx.snapshot_op_counts()
        assert counts.get("fmul", 0) > 0
        assert counts.get("fadd", 0) > 0

    def test_lowpass_attenuates(self):
        import math
        from repro.workloads.biquad import biquad_filter, lowpass_coefficients

        coeffs = lowpass_coefficients(500.0, 8000.0)
        n = 256
        high = [math.sin(2 * math.pi * 3500 * i / 8000) for i in range(n)]
        low = [math.sin(2 * math.pi * 100 * i / 8000) for i in range(n)]
        out_hi, out_lo = [0.0] * n, [0.0] * n
        biquad_filter(high, out_hi, n, *coeffs)
        biquad_filter(low, out_lo, n, *coeffs)
        tail = slice(n // 2, None)
        energy = lambda xs: sum(v * v for v in xs[tail])
        assert energy(out_hi) < 0.05 * energy(high)
        assert energy(out_lo) > 0.5 * energy(low)

    def test_bad_cutoff_rejected(self):
        from repro.workloads.biquad import lowpass_coefficients
        with pytest.raises(ValueError):
            lowpass_coefficients(5000.0, 8000.0)

    def test_hw_synthesis_with_fpu(self):
        from repro.annotate import AFloat
        from repro.hls import capture_dfg, synthesize_constrained, synthesize_worst_case
        from repro.kernel import Clock
        from repro.platform import ASIC_HW_COSTS
        from repro.workloads.biquad import biquad_section, lowpass_coefficients

        coeffs = lowpass_coefficients(1000.0, 8000.0)
        args = tuple(AFloat(v) for v in (0.5, 0.25, -0.1, 0.3, -0.2)) + \
            tuple(AFloat(c) for c in coeffs)
        graph = capture_dfg(biquad_section, args, ASIC_HW_COSTS)
        assert "fmul" in graph.operations_used()
        clock = Clock.from_frequency_mhz(100.0)
        worst = synthesize_worst_case(graph, clock)
        one_fpu = synthesize_constrained(graph, clock, {"fpu": 1})
        two_fpu = synthesize_constrained(graph, clock, {"fpu": 2})
        assert two_fpu.latency_cycles <= one_fpu.latency_cycles
        assert one_fpu.latency_cycles <= worst.latency_cycles
