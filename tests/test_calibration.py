"""Calibration tests: weight fitting and single-source consistency."""

import pytest

from repro.annotate import OperationCosts
from repro.calibration import (
    MicroBenchmark,
    calibrate,
    default_microbenchmarks,
    measure_iss_cycles,
    measure_operation_counts,
)
from repro.errors import CalibrationError
from repro.platform import OPENRISC_SW_COSTS


def test_default_suite_is_consistent():
    """Every microbenchmark returns the same value annotated and compiled."""
    for bench in default_microbenchmarks(scale=16):
        _counts, annotated = measure_operation_counts(bench)
        _cycles, compiled = measure_iss_cycles(bench)
        assert annotated == compiled, bench.name


def test_operation_counts_nonempty():
    for bench in default_microbenchmarks(scale=16):
        counts, _ = measure_operation_counts(bench)
        assert counts, bench.name
        assert all(v > 0 for v in counts.values())


def test_calibrate_produces_full_table(calibration_report):
    costs = calibration_report.costs
    for op in ("add", "sub", "mul", "div", "load", "store", "call",
               "lt", "le", "gt", "ge", "eq", "ne", "branch", "assign"):
        assert costs.get(op) >= 0.0


def test_calibrate_fits_training_set(calibration_report):
    # The grouped, ridge-regularized fit trades exact interpolation for
    # generalization; 35% on the worst microbenchmark is the guard rail.
    assert calibration_report.max_relative_error < 0.35
    assert len(calibration_report.predicted_cycles) == \
        len(calibration_report.measured_cycles)


def test_grouped_operations_share_weights(calibration_report):
    weights = calibration_report.weights
    assert weights["lt"] == weights["le"] == weights["gt"] == weights["ge"]
    assert weights["add"] == weights["sub"]
    assert weights["div"] == weights["mod"]


def test_summary_renders(calibration_report):
    text = calibration_report.summary()
    assert "calibrated operation weights" in text
    assert "fit quality" in text


def test_generalizes_to_unseen_workload(calibrated_costs):
    """The fitted table must predict a workload outside the training set
    within a loose factor (the Table 1 benches check tight bounds)."""
    from repro.annotate import CostContext, MODE_SW, active
    from repro.iss import run_compiled
    from repro.workloads import wrap_args
    from repro.workloads.euler import euler_oscillator

    args = (64, 4)
    ctx = CostContext(calibrated_costs, MODE_SW)
    with active(ctx):
        euler_oscillator(*wrap_args(args))
    iss = run_compiled([euler_oscillator], args=list(args))
    error = abs(ctx.total_cycles - iss.cycles) / iss.cycles
    assert error < 0.30, f"euler generalization error {100 * error:.1f}%"


def test_empty_bench_list_rejected():
    with pytest.raises(CalibrationError, match="at least one"):
        calibrate([], OPENRISC_SW_COSTS)


def test_divergent_benchmark_rejected():
    """A microbenchmark whose annotated and compiled runs disagree must
    abort calibration.  Unstable ``make_args`` is the classic cause:
    the two backends then measure different inputs."""

    def identity(n):
        return n + 0

    drifting = iter(range(100))
    bench = MicroBenchmark("unstable", (identity,),
                           lambda: (next(drifting),))
    with pytest.raises(CalibrationError, match="diverges"):
        calibrate([bench], OPENRISC_SW_COSTS)


def test_bad_argument_types_rejected():
    def kernel(x):
        return x

    bench = MicroBenchmark("bad", (kernel,), lambda: ({"dict": 1},))
    with pytest.raises(CalibrationError, match="ints or lists"):
        measure_operation_counts(bench)


def test_zero_regularization_still_fits():
    report = calibrate(default_microbenchmarks(scale=16),
                       OPENRISC_SW_COSTS, regularization=0.0)
    assert report.max_relative_error < 0.25
