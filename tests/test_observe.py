"""repro.observe — sinks, exporters, profiler, sessions, CLI.

The load-bearing assertions:

* the Perfetto and VCD exports of the stable two-process model match
  the committed golden files byte for byte (and the Perfetto payload
  passes its own validator),
* a bounded :class:`RingSink` drops oldest-first at capacity,
* two identical runs streamed through :class:`JsonlSink` produce
  byte-identical files (the determinism criterion at the artifact
  level),
* :class:`JsonlSink` holds O(1) memory while :class:`MemorySink` grows
  linearly,
* the :class:`Profiler`'s per-process cycle totals reconcile exactly
  with the performance library's :class:`ProcessTimingStats` — on SW
  (sum mode) and on HW via the ``Tmin + (Tmax - Tmin) * k`` identity.
"""

import importlib.util
import json
import pathlib
import tracemalloc

import pytest

from repro import Simulator
from repro.cli import main
from repro.core import PerformanceLibrary
from repro.kernel.tracing import MemorySink, TraceRecord, TraceRecorder
from repro.observe import (
    CLOCK_DELTA,
    CLOCK_TIME,
    JsonlSink,
    ObserveError,
    ObserveSession,
    Profiler,
    RingSink,
    collapsed_stacks,
    observe_script,
    parse_vcd,
    read_jsonl,
    record_from_json,
    record_to_json,
    render_perfetto,
    render_vcd,
    to_trace_events,
    validate_trace_events,
)
from repro.platform import EnvironmentResource, Mapping, make_cpu, make_fabric

HERE = pathlib.Path(__file__).resolve().parent
GOLDEN = HERE / "golden"
MODEL_PATH = HERE / "models" / "observe_model.py"


def _load_model():
    spec = importlib.util.spec_from_file_location("observe_model", MODEL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


MODEL = _load_model()


def _traced_model(sink=None, record_states=True):
    simulator = Simulator()
    recorder = TraceRecorder(sink=sink, record_states=record_states)
    simulator.add_observer(recorder)
    consumed = MODEL.build(simulator)
    final = simulator.run()
    return simulator, recorder, consumed, final


def _synthetic_records(n):
    for i in range(n):
        yield TraceRecord(i * 1000, i % 3, "top.worker",
                          "node-reached", "link.read")


# ---------------------------------------------------------------------------
# Golden exports
# ---------------------------------------------------------------------------

class TestGoldenExports:
    def test_model_behaviour_is_the_golden_scenario(self):
        _sim, recorder, consumed, final = _traced_model()
        assert consumed == [1, 8, 15]
        assert final.to_ns() == 30
        assert len(recorder.records) == 34

    def test_perfetto_matches_golden(self):
        _sim, recorder, _consumed, _final = _traced_model()
        golden = (GOLDEN / "observe_model.perfetto.json").read_text()
        assert render_perfetto(recorder.records) == golden

    def test_golden_perfetto_validates(self):
        payload = json.loads(
            (GOLDEN / "observe_model.perfetto.json").read_text())
        assert validate_trace_events(payload) == []

    def test_vcd_matches_golden(self):
        _sim, recorder, _consumed, _final = _traced_model()
        golden = (GOLDEN / "observe_model.vcd").read_text()
        assert render_vcd(recorder.records) == golden

    def test_golden_vcd_parses(self):
        variables, changes = parse_vcd(
            (GOLDEN / "observe_model.vcd").read_text())
        names = set(variables.values())
        assert {"top.producer_state", "top.consumer_state",
                "link_depth"} <= names
        assert changes
        stamps = [time for time, _code, _value in changes]
        assert stamps == sorted(stamps)

    def test_clock_selection(self):
        _sim, recorder, _consumed, _final = _traced_model()
        time_only = to_trace_events(recorder.records, clock=CLOCK_TIME)
        delta_only = to_trace_events(recorder.records, clock=CLOCK_DELTA)
        assert {e["pid"] for e in time_only["traceEvents"]} == {1}
        assert {e["pid"] for e in delta_only["traceEvents"]} == {2}

    def test_validator_flags_malformed_events(self):
        payload = {"traceEvents": [
            {"ph": "X", "name": "n", "pid": 1, "tid": 1},       # no ts/dur
            {"ph": "Z", "name": "n", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_trace_events(payload)
        assert len(problems) == 3  # missing ts, missing dur, unknown phase

    def test_delta_clock_renumbers_per_time_window(self):
        # Long-run regression for the delta track: delta ticks must
        # restart within every simulated-time window instead of
        # counting instants globally.  1000 time windows with a varying
        # number of delta cycles each (1..5, cycling) — under the old
        # global numbering the tick at window w depended on the total
        # activity of all earlier windows and grew without bound.
        records = []
        for w in range(1000):
            for delta in range(1 + w % 5):
                records.append(TraceRecord(w * 10_000, delta, "top.worker",
                                           "node-reached", "link.read"))
        payload = to_trace_events(records, clock=CLOCK_DELTA)
        stride = payload["otherData"]["delta_stride"]
        assert stride == 5  # the largest window has 5 delta cycles

        instants = [e["ts"] for e in payload["traceEvents"]
                    if e["ph"] == "i" and e["cat"] == "node"]
        assert instants == sorted(instants)
        # Each window's ticks restart at window_index * stride and run
        # 0..n-1 locally — never bleeding into the next window's slot.
        position = 0
        for w in range(1000):
            n = 1 + w % 5
            window = instants[position:position + n]
            assert window == [w * stride + local for local in range(n)]
            position += n

    def test_time_clock_has_no_delta_stride(self):
        payload = to_trace_events(list(_synthetic_records(5)),
                                  clock=CLOCK_TIME)
        assert payload["otherData"]["delta_stride"] == 0


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

class TestRingSink:
    def test_drops_oldest_at_capacity(self):
        sink = RingSink(capacity=8)
        for record in _synthetic_records(20):
            sink.emit(record)
        assert len(sink.records) == 8
        assert sink.count == 20
        assert sink.dropped == 12
        # The retained tail is the *last* 8 records, in order.
        assert [r.time_fs for r in sink.records] == \
            [i * 1000 for i in range(12, 20)]

    def test_under_capacity_keeps_everything(self):
        sink = RingSink(capacity=8)
        for record in _synthetic_records(5):
            sink.emit(record)
        assert len(sink.records) == 5
        assert sink.dropped == 0


class TestJsonlSink:
    def test_roundtrip(self):
        record = TraceRecord(1500, 2, "top.p", "node-finished", "ch.write", 3)
        assert record_from_json(record_to_json(record)) == record

    def test_two_identical_runs_are_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            _sim, recorder, _consumed, _final = _traced_model(
                sink=JsonlSink(path))
            recorder.close()
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first  # not trivially empty
        records = read_jsonl(paths[0])
        assert len(records) == 34

    def test_streaming_sink_retains_nothing(self, tmp_path):
        _sim, recorder, _consumed, _final = _traced_model(
            sink=JsonlSink(tmp_path / "t.jsonl"))
        with pytest.raises(AttributeError):
            recorder.records

    def test_o1_memory_versus_memory_sink(self, tmp_path):
        def peak_feeding(sink, n):
            tracemalloc.start()
            for record in _synthetic_records(n):
                sink.emit(record)
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            sink.close()
            return peak

        small = peak_feeding(JsonlSink(tmp_path / "small.jsonl"), 2_000)
        large = peak_feeding(JsonlSink(tmp_path / "large.jsonl"), 20_000)
        retained = peak_feeding(MemorySink(), 20_000)
        # Streaming: 10x the records must not mean 10x the memory —
        # the peak stays within a constant factor (buffering slack).
        assert large < 3 * small
        # The retaining sink pays for every record it holds.
        assert retained > 5 * large


# ---------------------------------------------------------------------------
# Profiler reconciliation with the performance library
# ---------------------------------------------------------------------------

def _profiled_kernel_run(resource):
    """One annotated FIR kernel mapped onto ``resource``; driver is env."""
    from repro.workloads import wrap_args
    from repro.workloads.fir import fir_filter, make_fir_inputs

    simulator = Simulator()
    profiler = Profiler()
    simulator.add_observer(profiler)
    stimulus = simulator.fifo("stimulus", capacity=1)
    top = simulator.module("top")
    wrapped = wrap_args(make_fir_inputs(32, 4))

    def kernel():
        yield from stimulus.read()
        fir_filter(*wrapped)

    def driver():
        yield from stimulus.write(1)

    kernel_proc = top.add_process(kernel, name="kernel")
    driver_proc = top.add_process(driver, name="driver")
    mapping = Mapping()
    mapping.assign(kernel_proc, resource)
    mapping.assign(driver_proc, EnvironmentResource("env"))
    perf = PerformanceLibrary(mapping).attach(simulator)
    simulator.run()
    return profiler, perf


class TestProfilerReconciliation:
    def test_sw_totals_match_timing_stats(self):
        profiler, perf = _profiled_kernel_run(make_cpu("cpu0"))
        stats = perf.stats["top.kernel"]
        total_max, _total_min = profiler.total_cycles_of("top.kernel")
        assert total_max > 0
        # SW estimation charges the sequential bound, segment by
        # segment; both sides sum the same accumulations.
        assert total_max == pytest.approx(stats.cycles)

    def test_hw_totals_match_via_k_interpolation(self):
        k = 0.3
        profiler, perf = _profiled_kernel_run(
            make_fabric("hw0", k_factor=k))
        stats = perf.stats["top.kernel"]
        total_max, total_min = profiler.total_cycles_of("top.kernel")
        assert total_max > total_min > 0
        # interpolate() is linear, so it commutes with summation.
        assert total_min + (total_max - total_min) * k == \
            pytest.approx(stats.cycles)

    def test_profile_counts_and_report(self):
        profiler, _perf = _profiled_kernel_run(make_cpu("cpu0"))
        kernel_profiles = profiler.profiles_of("top.kernel")
        assert sum(p.calls for p in kernel_profiles) >= 2
        report = profiler.report()
        assert "top.kernel" in report and "cycles=" in report

    def test_flamegraph_stacks_carry_operator_cost(self):
        profiler, _perf = _profiled_kernel_run(make_cpu("cpu0"))
        stacks = collapsed_stacks(profiler)
        assert stacks
        # Heaviest-first, "process;segment;op weight" shape, no
        # source line numbers anywhere (golden-stability contract).
        weights = [int(line.rsplit(" ", 1)[1]) for line in stacks]
        assert weights == sorted(weights, reverse=True)
        assert all(line.startswith("top.kernel;S") for line in stacks)


# ---------------------------------------------------------------------------
# Sessions and the trace CLI
# ---------------------------------------------------------------------------

class TestObserveSession:
    def test_instruments_every_simulator_in_scope(self):
        with ObserveSession() as session:
            for _ in range(2):
                simulator = Simulator()
                MODEL.build(simulator)
                simulator.run()
        assert [o.index for o in session.observations] == [0, 1]
        for observed in session.observations:
            assert len(observed.records()) == 34
        with pytest.raises(ObserveError):
            session.single()

    def test_outside_the_scope_nothing_attaches(self):
        with ObserveSession():
            pass
        simulator = Simulator()
        MODEL.build(simulator)
        simulator.run()
        assert simulator.trace is None

    def test_observe_script_runs_main(self):
        session = observe_script(MODEL_PATH)
        observed = session.single()
        assert len(observed.records()) == 34

    def test_nested_sessions_are_rejected(self):
        session = ObserveSession()
        with session:
            with pytest.raises(ObserveError):
                session.__enter__()


class TestTraceCli:
    def test_perfetto_export_of_script(self, tmp_path, capsys):
        out = tmp_path / "model.json"
        assert main(["trace", str(MODEL_PATH), "--format", "perfetto",
                     "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_trace_events(payload) == []
        assert "trace events" in capsys.readouterr().out

    def test_vcd_export_of_script(self, tmp_path, capsys):
        out = tmp_path / "model.vcd"
        assert main(["trace", str(MODEL_PATH), "--format", "vcd",
                     "-o", str(out)]) == 0
        variables, changes = parse_vcd(out.read_text())
        assert variables and changes

    def test_jsonl_export_of_script(self, tmp_path, capsys):
        out = tmp_path / "model.jsonl"
        assert main(["trace", str(MODEL_PATH), "--format", "jsonl",
                     "-o", str(out)]) == 0
        assert len(read_jsonl(out)) == 34

    def test_flame_export_of_workload(self, tmp_path, capsys):
        out = tmp_path / "fir.folded"
        assert main(["trace", "fir", "--format", "flame",
                     "-o", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines and all(" " in line for line in lines)

    def test_workload_trace_with_profile(self, tmp_path, capsys):
        out = tmp_path / "fir.json"
        assert main(["trace", "fir", "--profile", "-o", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "result = 26040" in captured
        assert "segments" in captured
        assert validate_trace_events(json.loads(out.read_text())) == []

    def test_unknown_workload_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "no-such-workload",
                  "-o", str(tmp_path / "x.json")])


# ---------------------------------------------------------------------------
# Live lint
# ---------------------------------------------------------------------------

class TestLiveLint:
    def test_lint_simulation_walks_every_process(self):
        from repro.analysis import lint_simulation
        from repro.segments import SegmentTracker

        simulator = Simulator()
        tracker = SegmentTracker()
        simulator.add_observer(tracker)
        MODEL.build(simulator)
        simulator.run()
        skipped = []
        result = lint_simulation(simulator, tracker, skipped=skipped)
        assert str(MODEL_PATH) in result.files
        assert not skipped
        # The model is methodologically clean: at most info-level
        # graph-diff notes (zero-trip-loop arcs), never errors.
        assert all(str(d.severity) == "info" for d in result.diagnostics)

    def test_cli_lint_live(self, capsys):
        rc = main(["lint", "--live", str(MODEL_PATH)])
        captured = capsys.readouterr().out
        assert "file(s) checked" in captured
        assert rc in (0, 1)
