"""ISS runtime (ABI/marshalling) tests."""

import pytest

from repro.annotate import AArray, AInt
from repro.errors import IssError
from repro.iss import Machine, prepare_program, run_compiled, run_program


def add3(a, b, c):
    return a + b + c


def scale_in_place(data, n, factor):
    for i in range(n):
        data[i] = data[i] * factor
    return data[0]


def test_int_arguments():
    assert run_compiled([add3], args=[1, 2, 3]).return_value == 6


def test_aint_arguments_unwrapped():
    assert run_compiled([add3], args=[AInt(1), AInt(2), AInt(3)]).return_value == 6


def test_list_writeback():
    data = [1, 2, 3]
    run_compiled([scale_in_place], args=[data, 3, 10])
    assert data == [10, 20, 30]


def test_aarray_writeback():
    data = AArray([1, 2, 3])
    run_compiled([scale_in_place], args=[data, 3, 5])
    assert data.to_list() == [5, 10, 15]


def test_too_many_arguments_rejected():
    with pytest.raises(IssError, match="at most 6"):
        run_compiled([add3], args=[1, 2, 3, 4, 5, 6, 7])


def test_unsupported_argument_type_rejected():
    with pytest.raises(IssError, match="unsupported argument type"):
        run_compiled([add3], args=[1.5, 2, 3])


def test_argument_data_must_fit():
    with pytest.raises(IssError, match="does not fit"):
        run_compiled([scale_in_place], args=[[0] * 5000, 1, 1],
                     memory_words=1024)


def test_machine_reuse_resets_state():
    program = prepare_program([add3])
    machine = Machine(memory_words=4096)
    first = run_program(program, "add3", [1, 2, 3], machine=machine)
    second = run_program(program, "add3", [10, 20, 30], machine=machine)
    assert first.return_value == 6
    assert second.return_value == 60


def test_prepare_program_appends_halt():
    program = prepare_program([add3])
    assert program.instructions[-1].op == "halt"
    assert "__halt" in program.labels


def test_cpi_property():
    result = run_compiled([add3], args=[1, 2, 3])
    assert result.cpi >= 1.0


def test_entry_selection():
    def first(x):
        return x + 1

    def second(x):
        return x + 2

    assert run_compiled([first, second], args=[0], entry=second).return_value == 2
    assert run_compiled([first, second], args=[0], entry=first).return_value == 1
