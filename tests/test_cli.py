"""CLI tests (direct main() invocation plus one subprocess smoke)."""

import subprocess
import sys

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out and "OR-lite" in out


def test_opcodes(capsys):
    assert main(["opcodes"]) == 0
    out = capsys.readouterr().out
    assert "add" in out and "jalr" in out


def test_disasm(capsys):
    assert main(["disasm", "fibonacci"]) == 0
    out = capsys.readouterr().out
    assert "fib_benchmark:" in out
    assert "jalr r9" in out
    assert "instructions" in out


def test_disasm_unknown_workload():
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["disasm", "doom"])


def test_calibrate(capsys):
    assert main(["calibrate", "--scale", "16"]) == 0
    out = capsys.readouterr().out
    assert "calibrated operation weights" in out


def test_estimate(capsys):
    assert main(["estimate", "euler", "--scale", "16"]) == 0
    out = capsys.readouterr().out
    assert "estimation error" in out
    assert "ISS measurement" in out


def test_graph(capsys):
    assert main(["graph"]) == 0
    out = capsys.readouterr().out
    assert "digraph" in out
    assert "N1" in out


def test_module_entry_point():
    result = subprocess.run([sys.executable, "-m", "repro", "info"],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "repro" in result.stdout


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_calibrate_saves_and_estimate_loads(tmp_path, capsys):
    weights_path = str(tmp_path / "weights.json")
    assert main(["calibrate", "--scale", "16", "-o", weights_path]) == 0
    capsys.readouterr()
    assert main(["estimate", "euler", "--weights", weights_path]) == 0
    out = capsys.readouterr().out
    assert "using cost table" in out
    assert "estimation error" in out


def test_cost_table_json_roundtrip(tmp_path):
    from repro.annotate import OperationCosts
    from repro.platform import OPENRISC_SW_COSTS
    path = str(tmp_path / "t.json")
    OPENRISC_SW_COSTS.save(path)
    loaded = OperationCosts.load(path)
    assert loaded.name == OPENRISC_SW_COSTS.name
    assert loaded.as_dict() == OPENRISC_SW_COSTS.as_dict()


def test_malformed_cost_json_rejected():
    from repro.annotate import OperationCosts
    from repro.errors import AnnotationError
    import pytest as _pytest
    with _pytest.raises(AnnotationError, match="malformed"):
        OperationCosts.from_json("not json at all")
    with _pytest.raises(AnnotationError, match="malformed"):
        OperationCosts.from_json('{"no_costs": 1}')


def test_graph_check_coverage_passes_with_full_stimulus(capsys):
    assert main(["graph", "--check-coverage"]) == 0
    captured = capsys.readouterr()
    assert "digraph" in captured.out
    assert "node coverage: 4/4" in captured.err


def test_graph_check_coverage_fails_on_missed_site(capsys):
    assert main(["graph", "--check-coverage", "--values", "1,3,5"]) == 1
    captured = capsys.readouterr()
    assert "MISSED" in captured.err
    assert "ch2.write" in captured.err


def test_graph_rejects_bad_values():
    with pytest.raises(SystemExit, match="--values"):
        main(["graph", "--values", "a,b"])


def test_lint_rule_catalog(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR101" in out and "RPR201" in out


def test_lint_requires_targets():
    with pytest.raises(SystemExit, match="at least one"):
        main(["lint"])


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", "src/repro/workloads", "examples"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_dirty_file_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad_model.py"
    bad.write_text("def proc(self):\n    yield wait()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out


def test_lint_json_report_written(tmp_path, capsys):
    import json

    bad = tmp_path / "bad_model.py"
    bad.write_text("def proc(self):\n    yield wait(5)\n")
    report = tmp_path / "report.json"
    assert main(["lint", str(bad), "--format", "json",
                 "-o", str(report)]) == 1
    payload = json.loads(report.read_text())
    assert payload["clean"] is False
    assert payload["diagnostics"][0]["code"] == "RPR102"
    assert "wrote json report" in capsys.readouterr().out


def test_lint_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad_model.py"
    bad.write_text("def proc(self):\n    yield wait()\n"
                   "    self.out.write(1)\n")
    assert main(["lint", str(bad), "--select", "RPR103"]) == 1
    out = capsys.readouterr().out
    assert "RPR103" in out and "RPR101" not in out


def test_lint_missing_target_rejected():
    with pytest.raises(SystemExit, match="does not exist"):
        main(["lint", "no/such/dir"])


# -- repro cache (stats / verify / gc) -----------------------------------


def _seed_cache(tmp_path):
    from repro.batch import Campaign, RunConfig

    configs = [RunConfig.of("topology", f"c{i}", stages=1, messages=2,
                            seed=i + 1) for i in range(2)]
    cache_root = tmp_path / "cache"
    trace_root = tmp_path / "traces"
    Campaign(configs, workers=0, cache=cache_root,
             trace_dir=trace_root).run()
    return configs, cache_root, trace_root


def test_cache_stats(tmp_path, capsys):
    _configs, cache_root, trace_root = _seed_cache(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root)]) == 0
    out = capsys.readouterr().out
    assert "2 entries (2 valid, 0 invalid)" in out
    assert "2 artifacts" in out


def test_cache_verify_detects_corruption_and_missing_artifact(
        tmp_path, capsys):
    from repro.batch import ResultCache, corrupt_entry_file

    configs, cache_root, trace_root = _seed_cache(tmp_path)
    assert main(["cache", "verify", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root)]) == 0
    assert "coherent" in capsys.readouterr().out

    corrupt_entry_file(ResultCache(cache_root), configs[0].cache_key())
    (trace_root / f"{configs[1].cache_key()}.jsonl").unlink()
    assert main(["cache", "verify", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root)]) == 1
    out = capsys.readouterr().out
    assert "invalid" in out and "missing artifact" in out


def test_cache_gc_keep_and_age(tmp_path, capsys):
    _configs, cache_root, trace_root = _seed_cache(tmp_path)
    assert main(["cache", "gc", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root), "--keep", "1",
                 "--dry-run"]) == 0
    assert "would remove 1 entries" in capsys.readouterr().out
    assert main(["cache", "gc", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root), "--older-than", "0s"]) == 0
    assert "removed 2 entries, 2 artifacts" in capsys.readouterr().out
    assert main(["cache", "verify", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root)]) == 0


def test_cache_gc_requires_a_policy(tmp_path):
    with pytest.raises(SystemExit, match="older-than"):
        main(["cache", "gc", "--cache-dir", str(tmp_path / "cache")])


def test_cache_gc_prune_only_sweeps_partials(tmp_path, capsys):
    _configs, cache_root, trace_root = _seed_cache(tmp_path)
    (trace_root / ("00" * 32 + ".jsonl.partial")).write_text("torn")
    assert main(["cache", "gc", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root), "--prune-only"]) == 0
    assert "1 partial files" in capsys.readouterr().out


def test_cache_gc_rejects_bad_age(tmp_path):
    with pytest.raises(SystemExit, match="bad age"):
        main(["cache", "gc", "--cache-dir", str(tmp_path),
              "--older-than", "soon"])


def test_cache_stats_manifest_matches_rescan(tmp_path, capsys):
    _configs, cache_root, _trace_root = _seed_cache(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(cache_root)]) == 0
    indexed = capsys.readouterr().out
    assert "2 entries (2 valid, 0 invalid)" in indexed
    assert main(["cache", "stats", "--cache-dir", str(cache_root),
                 "--rescan"]) == 0
    assert capsys.readouterr().out == indexed


def test_cache_verify_rescan_reports_drift_exit_3(tmp_path, capsys):
    _configs, cache_root, trace_root = _seed_cache(tmp_path)
    # Simulate journal lines lost to a crash: the entries are fine on
    # disk, the index has never heard of them.
    (cache_root / "manifest.jsonl").unlink()
    assert main(["cache", "verify", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root), "--rescan"]) == 3
    out = capsys.readouterr().out
    assert "coherent" in out               # integrity itself is fine
    assert "2 missing" in out and "unindexed entry" in out
    # That rescan rebuilt the index; a second pass is fully clean.
    assert main(["cache", "verify", "--cache-dir", str(cache_root),
                 "--trace-dir", str(trace_root), "--rescan"]) == 0
    assert "manifest matches the directory" in capsys.readouterr().out
