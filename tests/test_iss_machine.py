"""OR-lite machine and assembler tests."""

import pytest

from repro.errors import IssError
from repro.iss import ICache, Instr, Machine, OPCODES, assemble, mnemonic_reference


def run_asm(source, memory_words=1024, regs=None, icache=None):
    program = assemble(source)
    machine = Machine(memory_words=memory_words, icache=icache)
    if regs:
        for reg, value in regs.items():
            machine.regs[reg] = value
    result = machine.run(program)
    return machine, result


class TestAssembler:
    def test_roundtrip_listing(self):
        program = assemble("""
        start:
            li r3, 10
            addi r4, r3, -2
            beq r3, r4, start
            halt
        """)
        listing = program.listing()
        assert "start:" in listing
        assert "li r3, 10" in listing
        assert len(program) == 4

    def test_labels_resolve(self):
        program = assemble("""
            j skip
            halt
        skip:
            li r11, 1
            halt
        """)
        machine = Machine(memory_words=64)
        assert machine.run(program).return_value == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(IssError, match="duplicate label"):
            assemble("a:\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(IssError, match="undefined label"):
            assemble("j nowhere")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IssError, match="unknown opcode"):
            assemble("frobnicate r1, r2, r3")

    def test_operand_count_checked(self):
        with pytest.raises(IssError, match="expects"):
            assemble("add r1, r2")

    def test_comments_ignored(self):
        program = assemble("li r11, 5 ; load five\n# a comment line\nhalt")
        assert len(program) == 2

    def test_mem_operand_syntax(self):
        program = assemble("lw r3, -4(r2)\nhalt")
        instr = program.instructions[0]
        assert instr.imm == -4 and instr.ra == 2

    def test_bad_mem_operand_rejected(self):
        with pytest.raises(IssError, match="imm\\(rN\\)"):
            assemble("lw r3, r2")


class TestInstr:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instr("levitate")

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instr("add", rd=32)

    def test_str_forms(self):
        assert str(Instr("add", rd=1, ra=2, rb=3)) == "add r1, r2, r3"
        assert str(Instr("lw", rd=1, ra=2, imm=3)) == "lw r1, 3(r2)"
        assert str(Instr("halt")) == "halt"

    def test_mnemonic_reference_covers_all(self):
        text = mnemonic_reference()
        for name in OPCODES:
            assert name in text


class TestExecution:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 7, 5, 12), ("sub", 7, 5, 2), ("mul", 7, 5, 35),
        ("div", 17, 5, 3), ("div", -17, 5, -4),   # Python floor semantics
        ("rem", 17, 5, 2), ("rem", -17, 5, 3),
        ("and", 0b1100, 0b1010, 0b1000), ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("sll", 3, 4, 48), ("srl", 48, 4, 3), ("sra", -16, 2, -4),
        ("slt", 3, 5, 1), ("slt", 5, 3, 0),
        ("sle", 5, 5, 1), ("seq", 4, 4, 1), ("sne", 4, 4, 0),
    ])
    def test_alu_ops(self, op, a, b, expected):
        _, result = run_asm(f"{op} r11, r3, r4\nhalt",
                            regs={3: a, 4: b})
        assert result.return_value == expected

    @pytest.mark.parametrize("op,a,imm,expected", [
        ("addi", 7, -3, 4), ("andi", 0b111, 0b101, 0b101),
        ("ori", 0b100, 0b001, 0b101), ("xori", 0b110, 0b011, 0b101),
        ("slli", 3, 2, 12), ("srli", 12, 2, 3), ("srai", -8, 1, -4),
        ("slti", 2, 5, 1), ("slti", 7, 5, 0),
    ])
    def test_imm_ops(self, op, a, imm, expected):
        _, result = run_asm(f"{op} r11, r3, {imm}\nhalt", regs={3: a})
        assert result.return_value == expected

    def test_r0_is_hardwired_zero(self):
        machine, result = run_asm("li r0, 99\nadd r11, r0, r0\nhalt")
        assert result.return_value == 0

    def test_memory_roundtrip(self):
        machine, result = run_asm("""
            li r3, 100
            li r4, 42
            sw r4, 5(r3)
            lw r11, 5(r3)
            halt
        """)
        assert result.return_value == 42
        assert machine.read_word(105) == 42

    def test_branches(self):
        _, result = run_asm("""
            li r3, 5
            li r4, 5
            beq r3, r4, equal
            li r11, 0
            halt
        equal:
            li r11, 1
            halt
        """)
        assert result.return_value == 1

    def test_jal_jalr(self):
        _, result = run_asm("""
            jal sub
            halt
        sub:
            li r11, 33
            jalr r9
        """)
        assert result.return_value == 33

    def test_taken_branch_costs_more(self):
        _, taken = run_asm("li r3, 1\nli r4, 1\nbeq r3, r4, end\nend:\nhalt")
        _, not_taken = run_asm("li r3, 1\nli r4, 2\nbeq r3, r4, end\nend:\nhalt")
        assert taken.cycles == not_taken.cycles + 1

    def test_cycle_model(self):
        _, result = run_asm("li r3, 2\nli r4, 3\nmul r11, r3, r4\nhalt")
        spec = OPCODES["mul"]
        assert result.cycles == 1 + 1 + spec.cycles
        assert result.instructions == 4


class TestErrors:
    def test_division_by_zero(self):
        with pytest.raises(IssError, match="division by zero"):
            run_asm("li r3, 1\nli r4, 0\ndiv r11, r3, r4\nhalt")

    def test_memory_out_of_range(self):
        with pytest.raises(IssError, match="out of range"):
            run_asm("li r3, 9999\nlw r11, 0(r3)\nhalt", memory_words=128)

    def test_store_out_of_range(self):
        with pytest.raises(IssError, match="out of range"):
            run_asm("li r3, -5\nsw r3, 0(r3)\nhalt")

    def test_pc_out_of_range(self):
        with pytest.raises(IssError, match="PC"):
            run_asm("li r3, 1")  # falls off the end, no halt

    def test_cycle_budget(self):
        program = assemble("loop:\nj loop")
        machine = Machine(memory_words=64)
        with pytest.raises(IssError, match="cycle budget"):
            machine.run(program, max_cycles=100)

    def test_bad_memory_size(self):
        with pytest.raises(IssError):
            Machine(memory_words=0)


class TestICache:
    def test_sequential_code_hits_within_lines(self):
        cache = ICache(lines=4, line_words=4, miss_penalty=10)
        # 8 sequential fetches: 2 lines -> 2 misses, 6 hits
        penalties = [cache.access(pc) for pc in range(8)]
        assert penalties == [10, 0, 0, 0, 10, 0, 0, 0]
        assert cache.misses == 2
        assert cache.hits == 6
        assert cache.hit_rate == pytest.approx(0.75)

    def test_conflict_eviction(self):
        cache = ICache(lines=2, line_words=1, miss_penalty=5)
        cache.access(0)      # line 0
        cache.access(2)      # maps to line 0 too -> evicts
        assert cache.access(0) == 5  # miss again

    def test_machine_integrates_cache(self):
        loop = """
            li r3, 0
            li r4, 50
        top:
            addi r3, r3, 1
            blt r3, r4, top
            halt
        """
        _, cold = run_asm(loop)
        cache = ICache(lines=8, line_words=4, miss_penalty=10)
        _, warm = run_asm(loop, icache=cache)
        assert warm.cycles > cold.cycles
        assert warm.instructions == cold.instructions
        assert warm.icache_misses >= 1

    def test_reset(self):
        cache = ICache()
        cache.access(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(IssError):
            ICache(lines=0)


class TestProfiling:
    def test_pc_cycles_attribution(self):
        program = assemble("li r3, 7\nmul r11, r3, r3\nhalt")
        machine = Machine(memory_words=64)
        machine.run(program, profile=True)
        assert machine.pc_cycles[0] == 1
        assert machine.pc_cycles[1] == OPCODES["mul"].cycles


class TestDCache:
    def test_data_access_penalties(self):
        from repro.iss import DCache
        cache = DCache(lines=4, line_words=4, miss_penalty=8)
        source = """
            li r3, 100
            li r4, 1
            sw r4, 0(r3)
            lw r5, 0(r3)
            lw r6, 1(r3)
            lw r7, 200(r3)
            halt
        """
        program = assemble(source)
        machine = Machine(memory_words=1024, dcache=cache)
        cold = machine.run(program)
        # sw misses, lw 0/1 hit (same line), lw 300 misses
        assert cache.misses == 2
        assert cache.hits == 2

        plain = Machine(memory_words=1024).run(assemble(source))
        assert cold.cycles == plain.cycles + 2 * 8

    def test_dcache_resets_with_machine(self):
        from repro.iss import DCache
        cache = DCache()
        cache.access(0)
        machine = Machine(memory_words=64, dcache=cache)
        machine.reset()
        assert cache.hits == 0 and cache.misses == 0

    def test_stride_thrashing(self):
        """Accesses striding by the cache size never hit."""
        from repro.iss import DCache
        cache = DCache(lines=4, line_words=1, miss_penalty=5)
        for i in range(16):
            cache.access((i % 2) * 4)  # two addresses mapping to line 0
        assert cache.hits == 0
        assert cache.misses == 16

    def test_compiled_workload_with_dcache(self):
        from repro.iss import DCache, run_compiled
        from repro.workloads.array_ops import array_ops, make_array_inputs
        plain = run_compiled([array_ops], args=make_array_inputs(64))
        machine_cache = DCache(lines=8, line_words=4, miss_penalty=12)
        import repro.iss.runtime as runtime
        from repro.iss.runtime import prepare_program, run_program
        program = prepare_program([array_ops])
        machine = Machine(memory_words=1 << 16, dcache=machine_cache)
        cached = run_program(program, "array_ops", make_array_inputs(64),
                             machine=machine)
        assert cached.return_value == plain.return_value
        assert cached.cycles > plain.cycles
        assert machine_cache.misses > 0


class TestLoadUseStall:
    def test_stall_counted_on_dependent_use(self):
        source = """
            li r3, 100
            li r4, 7
            sw r4, 0(r3)
            lw r5, 0(r3)
            add r11, r5, r5
            halt
        """
        plain = Machine(memory_words=512)
        base = plain.run(assemble(source))
        hazard = Machine(memory_words=512, load_use_stall=True)
        stalled = hazard.run(assemble(source))
        assert stalled.cycles == base.cycles + 1
        assert hazard.load_use_stalls == 1

    def test_independent_next_instruction_no_stall(self):
        source = """
            li r3, 100
            lw r5, 0(r3)
            li r6, 1
            add r11, r5, r6
            halt
        """
        hazard = Machine(memory_words=512, load_use_stall=True)
        hazard.run(assemble(source))
        assert hazard.load_use_stalls == 0

    def test_workload_functionality_unchanged(self):
        from repro.iss.runtime import prepare_program, run_program
        from repro.workloads.sorting import bubble_sort, make_sort_inputs
        program = prepare_program([bubble_sort])
        plain = run_program(program, "bubble_sort", make_sort_inputs(32),
                            machine=Machine(memory_words=1 << 14))
        hazard_machine = Machine(memory_words=1 << 14, load_use_stall=True)
        stalled = run_program(program, "bubble_sort", make_sort_inputs(32),
                              machine=hazard_machine)
        assert stalled.return_value == plain.return_value
        assert stalled.cycles > plain.cycles
        assert hazard_machine.load_use_stalls > 0
