"""Kernel edge cases: multi-party channels, late observers, events."""

import pytest

from repro import SimTime, Simulator, wait
from repro.kernel.commands import WaitEvent
from repro.segments import SegmentTracker


class TestMultiPartyFifo:
    def test_two_producers_one_consumer(self):
        sim = Simulator()
        fifo = sim.fifo("f", capacity=1)
        top = sim.module("top")
        received = []

        def producer(tag, count):
            def body():
                for i in range(count):
                    yield from fifo.write((tag, i))
            body.__name__ = f"producer_{tag}"
            return body

        def consumer():
            for _ in range(6):
                received.append((yield from fifo.read()))

        top.add_process(producer("a", 3))
        top.add_process(producer("b", 3))
        top.add_process(consumer)
        sim.run()
        sim.assert_quiescent()
        assert len(received) == 6
        # per-producer order is preserved even when interleaved
        for tag in ("a", "b"):
            values = [i for t, i in received if t == tag]
            assert values == [0, 1, 2]

    def test_two_consumers_drain_everything(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        top = sim.module("top")
        received = {"x": [], "y": []}

        def producer():
            for i in range(8):
                yield from fifo.write(i)

        def consumer(tag, count):
            def body():
                for _ in range(count):
                    received[tag].append((yield from fifo.read()))
            body.__name__ = f"consumer_{tag}"
            return body

        top.add_process(producer)
        top.add_process(consumer("x", 4))
        top.add_process(consumer("y", 4))
        sim.run()
        sim.assert_quiescent()
        assert sorted(received["x"] + received["y"]) == list(range(8))


class TestMultiPartyRendezvous:
    def test_two_writers_served_in_order(self):
        sim = Simulator()
        channel = sim.rendezvous("rv")
        top = sim.module("top")
        got = []

        def writer(value):
            def body():
                yield from channel.write(value)
            body.__name__ = f"writer_{value}"
            return body

        def reader():
            for _ in range(2):
                got.append((yield from channel.read()))
                yield wait(SimTime.ns(1))

        top.add_process(writer("first"))
        top.add_process(writer("second"))
        top.add_process(reader)
        sim.run()
        sim.assert_quiescent()
        assert got == ["first", "second"]


class TestSignalFanOut:
    def test_multiple_watchers_all_wake(self):
        sim = Simulator()
        signal = sim.signal("s", initial=0)
        top = sim.module("top")
        woken = []

        def watcher(tag):
            def body():
                value = yield from signal.await_change()
                woken.append((tag, value))
            body.__name__ = f"watch_{tag}"
            return body

        def driver():
            yield wait(SimTime.ns(5))
            yield from signal.write(42)

        for tag in ("a", "b", "c"):
            top.add_process(watcher(tag))
        top.add_process(driver)
        sim.run()
        sim.assert_quiescent()
        assert sorted(woken) == [("a", 42), ("b", 42), ("c", 42)]


class TestEvents:
    def test_remove_waiter(self):
        sim = Simulator()
        event = sim.scheduler.make_event("e")

        class FakeProcess:
            pass

        waiter = FakeProcess()
        event.add_waiter(waiter)
        assert event.has_waiters
        event.remove_waiter(waiter)
        assert not event.has_waiters
        event.remove_waiter(waiter)  # idempotent

    def test_immediate_notify_runs_same_evaluate_phase(self):
        sim = Simulator()
        event = sim.scheduler.make_event("e")
        top = sim.module("top")
        order = []

        def waiter():
            order.append("wait")
            yield WaitEvent(event)
            order.append(("woken", sim.scheduler.delta))

        def notifier():
            order.append("notify")
            event.notify_immediate()
            yield wait(SimTime.fs(0))

        top.add_process(waiter)
        top.add_process(notifier)
        sim.run()
        # immediate notification wakes within delta 0
        assert ("woken", 0) in order


class TestLateObserver:
    def test_tracker_attached_after_start_still_tracks(self):
        sim = Simulator()
        top = sim.module("top")

        def body():
            yield wait(SimTime.ns(1))
            yield wait(SimTime.ns(1))

        top.add_process(body)
        sim.run(until=SimTime.ps(500))  # first wait pending
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        sim.run()
        graph = tracker.graph_of("top.body")
        assert graph.segments, "late tracker must still build a graph"


class TestRepr:
    def test_reprs_do_not_crash(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        signal = sim.signal("s")
        module = sim.module("m")
        port = module.add_port("p")

        def body():
            yield wait(SimTime.ns(1))

        process = module.add_process(body)
        for obj in (fifo, signal, module, port, process,
                    sim.scheduler.make_event("e"), SimTime.ns(3)):
            assert repr(obj)
        port.bind(fifo)
        assert "f" in repr(port)
