"""DSE fault-tolerance suite: search outcomes survive infrastructure.

The evolutionary engine inherits the batch layer's crash handling, and
these tests prove the inheritance is real: a worker hard-killed in the
middle of a generation, and a cache that throws on reads and writes,
must both leave the *search outcome* — trajectory, front, decision —
byte-identical to an undisturbed run.  Extends the acceptance pattern
of ``test_batch_faults.py`` (kill → converge to the uninterrupted
result) one layer up the stack.  Pool tests run under ``spawn``
(pinned session-wide in ``conftest.py``).
"""

from __future__ import annotations

import json

from repro.batch import FaultingCache
from repro.dse import (
    DseSettings,
    Evolution,
    Gene,
    SearchSpace,
    canonical_payload,
    parse_objectives,
    render_json,
)

SETTINGS = DseSettings(seed=3, population=4, generations=3)


def _space(behavior, **extra):
    """A 12-point probe space; ``value`` is both gene and objective."""
    return SearchSpace("probe-faults", "probe",
                       [Gene.int_range("value", 0, 11)],
                       base_params=dict({"behavior": behavior}, **extra))


def _comparable(result):
    """The infrastructure-independent slice of a search outcome.

    The full canonical payload embeds the space spec, whose base
    parameters (behavior, marker path) legitimately differ between the
    faulted and reference runs — the searched *genomes*, their
    objective values and the ranked front must not.
    """
    payload = canonical_payload(result)
    return render_json({"trajectory": payload["trajectory"],
                        "front": [{k: p[k] for k in
                                   ("rank", "genome", "objectives", "score")}
                                  for p in payload["front"]],
                        "evaluations": payload["evaluations"]})


def _reference():
    """The undisturbed search every faulted run must converge to."""
    return Evolution(_space("ok"), parse_objectives("value=value"),
                     SETTINGS).run()


def test_worker_killed_mid_generation_converges(tmp_path):
    # Every probe hard-exits its worker (os._exit, no exception, no
    # result message) until the shared marker exists; the first attempt
    # writes it on the way down.  The pool must replace the dead
    # worker(s), retry, and the search must not notice: same
    # trajectory, same front, same decision as the undisturbed run.
    marker = tmp_path / "died.marker"
    space = _space("die", marker=str(marker))
    result = Evolution(space, parse_objectives("value=value"), SETTINGS,
                       workers=2, start_method="spawn", retries=2).run()

    assert marker.exists()
    totals = result.totals()
    assert totals["worker_replacements"] >= 1
    assert totals["retries"] >= 1
    assert _comparable(result) == _comparable(_reference())


def test_faulting_cache_does_not_change_the_outcome(tmp_path):
    # A cache whose first reads fail and whose writes fail for two of
    # the configs: the campaign layer absorbs every CacheFault and the
    # search result is unchanged — storage flakiness can cost repeat
    # simulations, never correctness.
    space = _space("ok")
    doomed = {space.decode((3,)).cache_key(), space.decode((7,)).cache_key()}
    cache = FaultingCache(tmp_path / "cache", fail_first_gets=4,
                          fail_puts_for=doomed)
    result = Evolution(space, parse_objectives("value=value"), SETTINGS,
                       cache=cache).run()

    assert cache.faults_injected >= 1
    assert _comparable(result) == _comparable(_reference())


def test_warm_rerun_after_cache_faults_still_converges(tmp_path):
    # First search populates the cache through injected put failures;
    # a second search over the same (now partially populated) cache
    # must still produce the identical outcome, re-simulating exactly
    # the points whose entries never landed.
    space = _space("ok")
    # Doom a point the seeded search actually evaluates (the first
    # genome of the reference trajectory) so the missing entry is felt.
    reference = _reference()
    visited = tuple(reference.trajectory[0].population[0]["genome"])
    doomed = {space.decode(visited).cache_key()}
    flaky = FaultingCache(tmp_path / "cache", fail_puts_for=doomed)
    first = Evolution(space, parse_objectives("value=value"), SETTINGS,
                      cache=flaky).run()

    rerun = Evolution(space, parse_objectives("value=value"), SETTINGS,
                      cache=flaky).run()
    assert _comparable(first) == _comparable(rerun)
    assert _comparable(rerun) == _comparable(_reference())
    # The doomed entry was never stored, so only that point (at most
    # once per generation it appears in) re-simulated on the rerun.
    totals = rerun.totals()
    assert totals["simulated"] >= 1
    assert all(json.loads(_comparable(rerun))["front"])
