"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.calibration import calibrate, default_microbenchmarks
from repro.platform import OPENRISC_SW_COSTS


@pytest.fixture(scope="session")
def calibration_report():
    """One deterministic calibration run for the whole session."""
    return calibrate(default_microbenchmarks(scale=32), OPENRISC_SW_COSTS)


@pytest.fixture(scope="session")
def calibrated_costs(calibration_report):
    return calibration_report.costs
