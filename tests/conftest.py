"""Shared fixtures for the test suite.

The suite is written to run under ``pytest -n auto`` (pytest-xdist):

* batch-campaign worker processes are pinned to the ``spawn`` start
  method (``REPRO_BATCH_START_METHOD``) so every worker is a fresh
  interpreter — no state accidentally inherited from a fork of an
  xdist worker, and the determinism-across-processes property is what
  actually gets exercised;
* anything that writes outside pytest's managed ``tmp_path`` goes
  through :func:`worker_tmp_path`, which namespaces a private directory
  per xdist worker (``PYTEST_XDIST_WORKER``) so parallel test processes
  never share scratch state.
"""

from __future__ import annotations

import os

import pytest

from repro.calibration import calibrate, default_microbenchmarks
from repro.platform import OPENRISC_SW_COSTS


def pytest_configure(config):
    # Pin batch-campaign workers to spawn for the whole test session
    # (tests may still override per-campaign with start_method=...).
    os.environ.setdefault("REPRO_BATCH_START_METHOD", "spawn")


@pytest.fixture
def worker_tmp_path(tmp_path_factory):
    """A scratch directory namespaced per xdist worker.

    ``tmp_path`` is already unique per test; this fixture is for state
    that outlives one test (caches, marker files) while staying
    isolated between ``pytest -n auto`` worker processes.
    """
    worker = os.environ.get("PYTEST_XDIST_WORKER", "master")
    return tmp_path_factory.mktemp(f"repro-{worker}-", numbered=True)


@pytest.fixture(scope="session")
def calibration_report():
    """One deterministic calibration run for the whole session."""
    return calibrate(default_microbenchmarks(scale=32), OPENRISC_SW_COSTS)


@pytest.fixture(scope="session")
def calibrated_costs(calibration_report):
    return calibration_report.costs
