"""Manifest-backed cache index: journal, snapshot, drift, crash safety.

The manifest's contract is layered: every line is self-checksummed (so
tampering and torn tails degrade to dropped lines, never bad state),
put records merge order-independently (so concurrent writers compact
to one snapshot — property-tested below), and the entry files remain
the single source of truth (so *any* manifest damage is recoverable
drift, repaired by ``--rescan``).  The crash tests drive that last
claim the hard way, through the PR 4 fault harness and a campaign
killed mid-write.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.batch import (
    Campaign,
    CacheManifest,
    FaultingCache,
    ResultCache,
    RunConfig,
    cache_stats,
    gc_cache,
    index_entries,
    verify_cache,
)
from repro.batch.manifest import (
    COMPACT_JOURNAL_BYTES,
    apply_record,
    parse_line,
    snapshot_bytes,
)

TOPOLOGY = dict(stages=2, messages=4, capacities=[1, 2], waits_ns=[0, 3],
                seed=7)


def _topology(name="t", **overrides):
    return RunConfig.of("topology", name, **dict(TOPOLOGY, **overrides))


def _seeded(tmp_path, count=3):
    configs = [_topology(f"m{i}", seed=i + 1) for i in range(count)]
    cache_root = tmp_path / "cache"
    Campaign(configs, workers=0, cache=cache_root).run()
    return configs, ResultCache(cache_root)


# -- journal basics --------------------------------------------------------


def test_puts_are_journalled_and_load_matches_directory(tmp_path):
    configs, cache = _seeded(tmp_path)
    state = cache.manifest.load()
    assert sorted(state) == sorted(c.cache_key() for c in configs)
    for config in configs:
        record = state[config.cache_key()]
        stat = cache.path_for(config.cache_key()).stat()
        assert record["size"] == stat.st_size
        assert record["mtime_ns"] == stat.st_mtime_ns
        assert record["valid"] is True


def test_manifest_stats_match_rescan_stats(tmp_path):
    _configs, cache = _seeded(tmp_path)
    walked = cache_stats(cache, rescan=True)
    indexed = cache_stats(cache, rescan=False)
    for field in ("entries", "valid", "invalid", "bytes"):
        assert getattr(walked, field) == getattr(indexed, field)


def test_remove_and_clear_are_journalled(tmp_path):
    configs, cache = _seeded(tmp_path)
    cache.remove(configs[0].cache_key())
    assert sorted(cache.manifest.load()) == \
        sorted(c.cache_key() for c in configs[1:])
    cache.clear()
    assert cache.manifest.load() == {}
    assert cache_stats(cache, rescan=False).entries == 0


def test_torn_tail_line_is_dropped(tmp_path):
    _configs, cache = _seeded(tmp_path)
    before = cache.manifest.load()
    with open(cache.manifest.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "put", "key": "ab')     # crash mid-append
    assert cache.manifest.load() == before


def test_tampered_line_fails_its_checksum(tmp_path):
    _configs, cache = _seeded(tmp_path)
    lines = cache.manifest.journal_path.read_text().splitlines()
    record = json.loads(lines[0])
    assert parse_line(lines[0]) is not None
    record["size"] = 999999                          # bit-flip, stale sum
    assert parse_line(json.dumps(record)) is None
    assert parse_line("") is None
    assert parse_line("[1, 2]") is None


def test_compaction_folds_journal_into_snapshot(tmp_path):
    _configs, cache = _seeded(tmp_path)
    manifest = cache.manifest
    before = manifest.load()
    assert not manifest.snapshot_path.exists()
    manifest.compact()
    assert manifest.snapshot_path.exists()
    assert manifest.journal_path.stat().st_size == 0
    assert manifest.load() == before


def test_append_auto_compacts_past_the_threshold(tmp_path, monkeypatch):
    import repro.batch.manifest as manifest_mod

    monkeypatch.setattr(manifest_mod, "COMPACT_JOURNAL_BYTES", 512)
    cache = ResultCache(tmp_path / "cache")
    for i in range(20):
        cache.put(f"{i:02d}" + "a" * 62, {"value": i})
    assert cache.manifest.snapshot_path.exists()
    assert cache.manifest.journal_path.stat().st_size <= 512
    assert len(cache.manifest.load()) == 20
    assert COMPACT_JOURNAL_BYTES > 512               # global untouched


def test_corrupt_snapshot_is_ignored_not_trusted(tmp_path):
    _configs, cache = _seeded(tmp_path)
    manifest = cache.manifest
    manifest.compact()
    good = manifest.load()
    raw = manifest.snapshot_path.read_bytes()
    manifest.snapshot_path.write_bytes(raw.replace(b'"size"', b'"Size"', 1))
    assert manifest._read_snapshot() is None         # sum no longer matches
    # With the snapshot rejected and the journal compacted away, the
    # index is simply empty — drift, which a rescan repairs.
    assert manifest.load() == {}
    report = verify_cache(cache, rescan=True)
    assert report.ok and not report.drift.ok
    assert manifest.load() == good


# -- order-independent merge (hypothesis) ----------------------------------


_keys = st.sampled_from(["aa" * 32, "bb" * 32, "cc" * 32])
_puts = st.builds(
    lambda key, created, mtime, checksum: {
        "op": "put", "key": key, "size": 100, "mtime_ns": mtime,
        "created_at": created, "describe": "", "checksum": checksum,
        "valid": True, "problem": "", "artifacts": [],
    },
    _keys,
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.integers(min_value=0, max_value=10),
    st.sampled_from(["c1", "c2", "c3"]),
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(records=st.lists(_puts, min_size=1, max_size=8),
       order=st.randoms())
def test_put_replay_order_never_changes_the_snapshot(records, order):
    """Any interleaving of put records compacts to identical bytes."""
    in_order: dict = {}
    for record in records:
        apply_record(in_order, dict(record))
    shuffled = list(records)
    order.shuffle(shuffled)
    reordered: dict = {}
    for record in shuffled:
        apply_record(reordered, dict(record))
    assert snapshot_bytes(reordered) == snapshot_bytes(in_order)


# -- O(changed) reads and self-healing -------------------------------------


def test_index_entries_self_heals_phantom_records(tmp_path):
    configs, cache = _seeded(tmp_path)
    victim = configs[0].cache_key()
    cache.path_for(victim).unlink()                  # bypass remove()
    infos = index_entries(cache)
    assert victim not in {info.key for info in infos}
    assert victim not in cache.manifest.load()       # journalled the drop


def test_index_entries_rereads_only_changed_entries(tmp_path):
    configs, cache = _seeded(tmp_path)
    victim = configs[0].cache_key()
    # Change the file behind the manifest's back (foreign writer).
    path = cache.path_for(victim)
    path.write_text("{ truncated", encoding="utf-8")
    infos = {info.key: info for info in index_entries(cache)}
    assert not infos[victim].valid                   # stat gate caught it
    assert all(infos[c.cache_key()].valid for c in configs[1:])
    # The re-read facts were journalled: stats now see the bad entry.
    stats = cache_stats(cache, rescan=False)
    assert stats.invalid == 1 and stats.entries == len(configs)


def test_migration_from_pre_manifest_cache(tmp_path):
    _configs, cache = _seeded(tmp_path)
    cache.manifest.journal_path.unlink()
    assert not cache.manifest.exists()
    stats = cache_stats(cache, rescan=False)         # triggers migration
    assert stats.entries == 3 and stats.valid == 3
    assert cache.manifest.exists()
    assert verify_cache(cache, rescan=False).ok


def test_gc_rebuilds_the_manifest(tmp_path):
    configs, cache = _seeded(tmp_path)
    report = gc_cache(cache, keep=1)
    assert report.removed_entries == 2
    state = cache.manifest.load()
    assert len(state) == 1
    assert cache_stats(cache, rescan=False).entries == 1
    assert verify_cache(cache, rescan=True).drift.ok


# -- drift and crash convergence -------------------------------------------


def test_faulting_cache_torn_put_lands_as_unindexed_drift(tmp_path):
    """PR 4's foreign-writer fault bypasses the journal — by design the
    torn entry sits on disk unindexed until a rescan reconciles."""
    config = _topology()
    faulty = FaultingCache(tmp_path, corrupt_puts_for={config.cache_key()})
    Campaign([config], workers=0, cache=faulty).run()
    assert faulty.faults_injected == 1

    fresh = ResultCache(tmp_path)
    report = verify_cache(fresh, rescan=True)
    assert not report.ok                             # torn entry found
    assert report.drift is not None
    assert report.drift.missing == [config.cache_key()]
    # After reconciliation the manifest agrees with the (bad) truth...
    assert not verify_cache(fresh, rescan=False).ok
    # ...and the next campaign heals both the entry and the index.
    Campaign([config], workers=0, cache=ResultCache(tmp_path)).run()
    healed = verify_cache(ResultCache(tmp_path), rescan=True)
    assert healed.ok and healed.drift.ok


def test_in_place_corruption_lands_as_stale_drift(tmp_path):
    from repro.batch import corrupt_entry_file

    configs, cache = _seeded(tmp_path)
    victim = configs[0].cache_key()
    corrupt_entry_file(cache, victim)                # journal never told
    report = verify_cache(ResultCache(tmp_path / "cache"), rescan=True)
    assert not report.ok
    assert report.drift.stale == [victim]


def test_killed_campaign_journal_loss_converges_on_rerun(tmp_path):
    """Kill-mid-append: entries published, journal lines lost.

    The drill: run half the sweep, drop the journal wholesale (the
    worst possible append loss) and tear the last entry mid-write.
    The rerun + rescan must converge to exactly the uninterrupted
    manifest state.
    """
    configs = [_topology(f"k{i}", seed=i + 1) for i in range(4)]

    ref_cache = ResultCache(tmp_path / "ref")
    Campaign(configs, workers=0, cache=ref_cache).run()
    # Entry byte sizes vary run to run (timestamp width), so the
    # convergence target is the semantic record, not raw sizes.
    reference = {
        key: {name: record[name] for name in ("valid", "problem")}
        for key, record in ref_cache.manifest.load().items()
    }

    cache_root = tmp_path / "cache"
    Campaign(configs[:2], workers=0, cache=cache_root).run()
    survivor = ResultCache(cache_root)
    survivor.manifest.journal_path.unlink()          # the "crash"
    torn = survivor.path_for(configs[1].cache_key())
    torn.write_text("{ torn mid-write", encoding="utf-8")

    rerun = Campaign(configs, workers=0, cache=cache_root)
    results = rerun.run()
    assert all(r.ok for r in results)
    assert results[0].cached and not results[1].cached

    report = verify_cache(ResultCache(cache_root), rescan=True)
    assert report.ok
    rebuilt = ResultCache(cache_root)
    state = CacheManifest(cache_root).load()
    converged = {
        key: {name: record[name] for name in ("valid", "problem")}
        for key, record in state.items()
    }
    assert converged == reference
    # And every rebuilt record carries its own directory's stat facts.
    for key, record in state.items():
        stat = rebuilt.path_for(key).stat()
        assert record["size"] == stat.st_size
        assert record["mtime_ns"] == stat.st_mtime_ns

    final = Campaign(configs, workers=0, cache=cache_root)
    assert all(r.cached for r in final.run())
