"""Tests for repro.analysis.effects — interprocedural effect summaries.

Two layers under test.  The *static* layer builds per-function
summaries (shared-state reads/writes with provenance, channel ops, wait
sites) fixpointed over the module call graph; it powers the
interprocedural race rules RPR202/RPR203, whose fixture models really
lose updates when simulated.  The *concrete* layer classifies resolved
callables by charge verdict (zero/constant/uniform/impure) plus
transparency; it powers the segment fast-forward widening, so the
verified kernel verdict table is pinned here.
"""

import ast
import importlib.util
import json
import pathlib

from hypothesis import given, settings, strategies as st

from repro import Simulator
from repro.analysis import (
    AnalysisResult,
    RULES,
    analyze_file,
    render_json,
    render_stats,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import (
    ARG_ALIAS,
    CONSTANT,
    DIRECT,
    HELPER,
    IMPURE,
    PLAIN,
    RETURN_ALIAS,
    UNIFORM,
    ZERO,
    EffectEnv,
    effects_report,
    kernel_effect,
    module_effects,
)

MODELS = pathlib.Path(__file__).resolve().parent / "models"


def load_model(name):
    spec = importlib.util.spec_from_file_location(name, MODELS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def codes(result):
    return [d.code for d in result.sorted_diagnostics()]


def fn_named(tree, name):
    return next(node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef) and node.name == name)


# ---------------------------------------------------------------------------
# Static layer: summaries and provenance kinds
# ---------------------------------------------------------------------------

PROVENANCE_SOURCE = '''
def build():
    stats = {"n": 0}

    def bump():
        stats["n"] = stats["n"] + 1

    def passthrough(x):
        return x

    def mutate(d):
        d["n"] = 0

    def helper_writer():
        bump()

    def alias_writer():
        buf = passthrough(stats)
        buf["n"] = 2

    def arg_writer():
        mutate(stats)

    def direct_writer():
        stats["n"] = 3

    def reader():
        return stats["n"]
'''


class TestStaticSummaries:
    def setup_method(self):
        self.tree = ast.parse(PROVENANCE_SOURCE)
        self.effects = module_effects(self.tree)

    def of(self, name):
        return self.effects.of(fn_named(self.tree, name))

    def test_direct_write_is_direct(self):
        access = self.of("direct_writer").writes["stats"]
        assert access.kind == DIRECT

    def test_helper_write_propagates_as_helper(self):
        access = self.of("helper_writer").writes["stats"]
        assert access.kind == HELPER
        assert access.via == "bump"

    def test_argument_mutation_propagates_as_arg_alias(self):
        access = self.of("arg_writer").writes["stats"]
        assert access.kind == ARG_ALIAS
        assert access.via == "mutate"

    def test_returned_alias_write_propagates_as_return_alias(self):
        access = self.of("alias_writer").writes["stats"]
        assert access.kind == RETURN_ALIAS
        assert access.via == "passthrough"

    def test_pure_helper_stays_pure(self):
        assert self.of("passthrough").pure
        assert not self.of("bump").pure

    def test_reader_records_read_not_write(self):
        summary = self.of("reader")
        assert "stats" in summary.reads
        assert "stats" not in summary.writes


# ---------------------------------------------------------------------------
# RPR202/RPR203 fixtures: flagged statically, racy dynamically
# ---------------------------------------------------------------------------

class TestInterproceduralRaces:
    def test_helper_race_fires_rpr202_and_loses_updates(self):
        model = load_model("helper_race_model")
        simulator = Simulator()
        stats = model.build(simulator)
        simulator.run()
        # Two workers of ITERATIONS increments each, through helpers:
        # the read-modify-write interleaves and half the updates vanish.
        assert stats["count"] == model.ITERATIONS  # not 2 * ITERATIONS!
        result = analyze_file(MODELS / "helper_race_model.py")
        assert codes(result) == ["RPR202"]
        assert "'stats'" in result.diagnostics[0].message
        assert "publish" in result.diagnostics[0].message

    def test_alias_race_fires_rpr203_and_loses_updates(self):
        model = load_model("alias_race_model")
        simulator = Simulator()
        stats = model.build(simulator)
        simulator.run()
        assert stats["count"] < 2 * model.ITERATIONS  # updates lost
        result = analyze_file(MODELS / "alias_race_model.py")
        assert codes(result) == ["RPR203"]
        assert "'stats'" in result.diagnostics[0].message

    def test_clean_helper_control_is_silent_and_correct(self):
        model = load_model("helper_clean_model")
        simulator = Simulator()
        totals = model.build(simulator)
        simulator.run()
        assert totals == [1, 2, 3]  # channel-mediated: nothing lost
        assert analyze_file(MODELS / "helper_clean_model.py").clean


# ---------------------------------------------------------------------------
# Concrete layer: the kernel charge-verdict table
# ---------------------------------------------------------------------------

class TestKernelVerdicts:
    def test_uniform_kernels(self):
        from repro.workloads.vocoder import acb_search, lpc_interpolate
        # Charge multisets are functions of the steady frame shape only.
        assert kernel_effect(acb_search).verdict == UNIFORM
        assert kernel_effect(lpc_interpolate).verdict == UNIFORM

    def test_data_dependent_kernels_are_impure(self):
        from repro.workloads.vocoder import (
            icb_search, levinson_durbin, lsp_estimate, postprocess)
        for kernel in (icb_search, levinson_durbin, lsp_estimate,
                       postprocess):
            assert kernel_effect(kernel).verdict == IMPURE, kernel.__name__

    def test_verdict_lattice_order(self):
        from repro.analysis.effects import join_verdicts
        assert join_verdicts(ZERO, CONSTANT) == CONSTANT
        assert join_verdicts(CONSTANT, UNIFORM) == UNIFORM
        assert join_verdicts(UNIFORM, IMPURE) == IMPURE
        assert join_verdicts() == ZERO

    def test_annotation_intrinsics_are_rejected(self):
        # aint returns an annotated value: transparent suppression is
        # impossible, so its CallEffect must never approve with a plain
        # result (the precharge classifier keys on result == PLAIN).
        from repro.analysis.effects import dispatch_call
        from repro.annotate import aint
        effect = dispatch_call(aint, None, [])
        assert effect.result != PLAIN


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def test_effects_report_shape(self):
        report = json.loads(effects_report(
            [MODELS / "helper_race_model.py"]))
        assert report["version"] == 1
        assert report["functions"] > 0
        assert report["impure"] > 0
        (summaries,) = report["files"].values()
        by_name = {entry["qualname"]: entry for entry in summaries}
        worker = by_name["build.worker_a"]
        assert worker["writes"][0]["kind"] == "helper"
        assert worker["wait_sites"]

    def test_render_stats_counts_and_audit_trail(self):
        result = AnalysisResult()
        result.add([
            Diagnostic(RULES["RPR202"], "m", path="x.py", line=3),
            Diagnostic(RULES["RPR202"], "m", path="x.py", line=9),
            Diagnostic(RULES["RPR203"], "m", path="x.py", line=4,
                       suppressed=True, suppress_reason="demo reason"),
        ])
        text = render_stats(result)
        assert "RPR202 race-via-helper: 2 active, 0 suppressed" in text
        assert "suppressed rule set: RPR203" in text
        assert "demo reason" in text

    def test_render_stats_on_clean_result(self):
        text = render_stats(AnalysisResult())
        assert "(no findings)" in text
        assert "suppressed rule set: (empty)" in text

    def test_render_json_version_2_rule_keys(self):
        result = AnalysisResult()
        result.add([
            Diagnostic(RULES["RPR202"], "m", path="x.py", line=3),
            Diagnostic(RULES["RPR203"], "m", path="x.py", line=4,
                       suppressed=True, suppress_reason="demo"),
        ])
        payload = json.loads(render_json(result))
        assert payload["version"] == 2
        assert payload["rules"]["RPR202"] == {"active": 1, "suppressed": 0}
        assert payload["rules"]["RPR203"] == {"active": 0, "suppressed": 1}
        assert payload["suppressed_rules"] == ["RPR203"]
        assert payload["suppression_reasons"] == [
            {"code": "RPR203", "path": "x.py", "line": 4, "reason": "demo"}]


# ---------------------------------------------------------------------------
# Property: dynamic shared-state writes are covered by the static summary
# ---------------------------------------------------------------------------

WRITE_SNIPPETS = {
    "direct": '        shared["n"] = shared["n"] + 1\n',
    "helper": "        bump()\n",
    "arg": "        mutate(shared)\n",
    "alias": '        buf = grab(shared)\n        buf["n"] = buf["n"] + 1\n',
    "read": '        value = shared["n"]\n',
    "none": "        pass\n",
}

PROPERTY_TEMPLATE = '''
def build(shared):
    def bump():
        shared["n"] = shared["n"] + 1

    def mutate(d):
        d["n"] = d["n"] + 1

    def grab(d):
        return d

    def worker():
{body}
    return worker
'''


class _RecordingDict(dict):
    """Observes every dynamic write to the shared mapping."""

    def __init__(self):
        super().__init__(n=0)
        self.write_count = 0

    def __setitem__(self, key, value):
        self.write_count += 1
        super().__setitem__(key, value)


@given(st.lists(st.sampled_from(sorted(WRITE_SNIPPETS)),
                min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_observed_writes_are_covered_by_static_summary(kinds):
    """Soundness: a dynamically observed shared-state write implies the
    static summary records a write to that name (any provenance)."""
    body = "".join(WRITE_SNIPPETS[kind] for kind in kinds)
    source = PROPERTY_TEMPLATE.format(body=body)
    tree = ast.parse(source)
    summary = module_effects(tree).of(fn_named(tree, "worker"))

    namespace = {}
    exec(compile(source, "<effects-property>", "exec"), namespace)
    shared = _RecordingDict()
    namespace["build"](shared)()
    if shared.write_count:
        assert "shared" in summary.writes, kinds


# --- function-local cross-file imports (same-package resolution) -----------

class TestFunctionLocalImports:
    """The fxpkg fixture: a stage body importing its helper *inside*
    the generator from a sibling module.  Neither ``__globals__`` nor
    the closure cells see the name; only the analyzer's same-package
    import resolution can classify the call."""

    @staticmethod
    def _load_stage():
        import sys
        for name, rel in (("fxpkg", "fxpkg/__init__.py"),
                          ("fxpkg.helpers", "fxpkg/helpers.py"),
                          ("fxpkg.stage", "fxpkg/stage.py")):
            spec = importlib.util.spec_from_file_location(name, MODELS / rel)
            module = importlib.util.module_from_spec(spec)
            sys.modules[name] = module
            spec.loader.exec_module(module)
        return sys.modules["fxpkg.stage"]

    def test_local_import_resolves_same_package_helper(self):
        body = self._load_stage().make_body()
        env = EffectEnv.for_callable(body)
        assert "scale" not in body.__globals__
        found, value = env.resolve_name("scale")
        assert found and value(21) == 42

    def test_cross_file_helper_arc_stays_eligible(self):
        from repro.segments import build_plan

        body = self._load_stage().make_body()
        plan = build_plan(body)
        assert plan.ok, plan.reason
        total = sum(len(s) for s in plan.successors.values())
        # The compute arc around the scale() call is eligible; only the
        # entry arc holding the import statement itself stays dynamic.
        assert total == 3 and len(plan.eligible) == 2, plan.describe()

    def test_foreign_package_imports_stay_opaque(self):
        def body():
            from json import dumps
            return dumps

        env = EffectEnv.for_callable(body)
        # Different top-level package: never speculatively resolved.
        assert env.resolve_name("dumps") == (False, None)
