"""DSE property suite (hypothesis): the genome layer and seed contract.

The evolutionary engine is only trustworthy if its building blocks are
total and reversible: every variation operator must land inside the
space (else a generation would submit an invalid config and poison the
cache), encode/decode must round-trip (else reports and cache keys
would drift apart), and a seed must fix the whole search — in-process
and on a spawned worker pool.  These properties establish that over
randomized spaces, mirroring what ``test_determinism_props.py`` does
for the simulation kernel underneath.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.batch.config import RunConfig
from repro.dse import (
    DseSettings,
    Evolution,
    Gene,
    SearchSpace,
    canonical_payload,
    parse_objectives,
    render_json,
    screening_genomes,
)

# -- strategies -----------------------------------------------------------

#: One gene: 1-5 distinct small-int choices, optionally nested one deep.
_genes = st.tuples(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
             max_size=5, unique=True),
    st.booleans(),
)


@st.composite
def spaces(draw):
    """Random-but-valid probe-runner search spaces (1-4 genes).

    The first gene always lands on the probe's echoed ``value``
    parameter, so the search objective genuinely varies across the
    space; further genes are inert dimensions (flat or nested).
    """
    gene_specs = draw(st.lists(_genes, min_size=1, max_size=4))
    genes = []
    for index, (choices, nest) in enumerate(gene_specs):
        if index == 0:
            genes.append(Gene.of("value", choices))
            continue
        name = f"g{index}"
        path = ("extras", name) if nest else (name,)
        genes.append(Gene.of(name, choices, path))
    return SearchSpace("prop", "probe", genes,
                       base_params={"behavior": "ok"})


@st.composite
def space_and_genomes(draw, count=2):
    space = draw(spaces())
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    return space, [space.random_genome(rng) for _ in range(count)]


seeds = st.integers(min_value=0, max_value=2**32 - 1)


# -- genome layer ---------------------------------------------------------

@given(space_and_genomes())
@settings(max_examples=60, deadline=None)
def test_encode_decode_round_trips(pair):
    """decode → RunConfig → encode recovers the genome exactly, and
    the config is frozen with a stable content-addressed key."""
    space, genomes = pair
    for genome in genomes:
        config = space.decode(genome)
        assert isinstance(config, RunConfig)
        assert space.encode(config) == genome
        assert config.cache_key() == space.decode(genome).cache_key()
        # The fixed base parameters survive the decode untouched, and
        # the first gene landed on the probe's echoed value.
        params = config.params_dict()
        assert params["behavior"] == "ok"
        assert params["value"] == genome[0]


@given(space_and_genomes(), seeds, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_mutation_stays_in_bounds(pair, seed, rate):
    space, genomes = pair
    rng = random.Random(seed)
    for genome in genomes:
        mutant = space.mutate(genome, rng, rate)
        assert space.validate(mutant) == mutant      # in-domain everywhere
        space.decode(mutant)                          # decodes to a config
        if rate == 1.0:
            # Full-rate mutation flips every multi-choice gene.
            for gene, old, new in zip(space.genes, genome, mutant):
                if len(gene.choices) > 1:
                    assert new != old


@given(space_and_genomes(count=2), seeds)
@settings(max_examples=60, deadline=None)
def test_crossover_mixes_only_parent_genes(pair, seed):
    space, (a, b) = pair
    child = space.crossover(a, b, random.Random(seed))
    assert space.validate(child) == child
    for x, y, c in zip(a, b, child):
        assert c in (x, y)
    space.decode(child)


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_screening_genomes_are_valid_and_distinct(space):
    genomes = screening_genomes(space)
    assert genomes[0] == tuple(g.center for g in space.genes)
    assert len(set(genomes)) == len(genomes)
    for genome in genomes:
        assert space.validate(genome) == genome
    # A limit is a hard cap that keeps the center probe.
    limited = screening_genomes(space, limit=3)
    assert len(limited) <= 3
    assert limited[0] == genomes[0]


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_spec_round_trip_preserves_the_grid(space):
    clone = SearchSpace.from_spec(space.to_spec())
    assert clone.to_spec() == space.to_spec()
    assert list(clone.all_genomes()) == list(space.all_genomes())
    first = next(iter(space.all_genomes()))
    assert clone.decode(first).cache_key() == space.decode(first).cache_key()


# -- seed contract --------------------------------------------------------

def _outcome(space, seed, **kwargs):
    result = Evolution(space, parse_objectives("value=value"),
                       DseSettings(seed=seed, population=4, generations=3),
                       **kwargs).run()
    return render_json(canonical_payload(result))


@given(spaces(), seeds)
@settings(max_examples=20, deadline=None)
def test_same_seed_same_trajectory_in_process(space, seed):
    """The whole search is a pure function of (space, seed)."""
    assert _outcome(space, seed) == _outcome(space, seed)


@given(spaces(), seeds)
@settings(max_examples=2, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_spawned_pool_reproduces_in_process_search(space, seed):
    """A spawned worker pool yields byte-identical canonical outcomes.

    Expensive (fresh interpreters per generation), so few examples —
    the in-process property above carries the statistical weight.
    """
    serial = _outcome(space, seed)
    pooled = _outcome(space, seed, workers=2, start_method="spawn")
    assert serial == pooled
