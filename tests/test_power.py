"""Energy-estimation extension tests."""

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import AInt
from repro.core import PerformanceLibrary
from repro.errors import AnnotationError, ReproError
from repro.platform import Mapping, make_cpu, make_fabric
from repro.power import (
    CPU_ENERGY,
    EnergyTable,
    HW_ENERGY,
    PowerBudget,
    estimate_energy,
)


def _run_design(calibrated_costs):
    sim = Simulator()
    top = sim.module("top")

    def sw_proc():
        acc = AInt(0)
        for k in range(100):
            acc = acc + k * 3
        yield wait(SimTime.fs(0))

    def hw_proc():
        acc = AInt(0)
        for k in range(50):
            acc = acc + k
        yield wait(SimTime.fs(0))

    p_sw = top.add_process(sw_proc)
    p_hw = top.add_process(hw_proc)
    cpu = make_cpu("cpu0", costs=calibrated_costs)
    hw = make_fabric("hw0")
    mapping = Mapping()
    mapping.assign(p_sw, cpu)
    mapping.assign(p_hw, hw)
    perf = PerformanceLibrary(mapping).attach(sim)
    sim.run()
    return perf


class TestEnergyTable:
    def test_defaults_cover_all_charged_ops(self):
        for op in ("add", "mul", "load", "store", "call", "branch"):
            assert CPU_ENERGY.get(op) >= 0
            assert HW_ENERGY.get(op) >= 0

    def test_unknown_op_rejected(self):
        with pytest.raises(AnnotationError):
            EnergyTable({"warp": 1.0})

    def test_negative_energy_rejected(self):
        with pytest.raises(AnnotationError):
            EnergyTable({"add": -1.0})

    def test_histogram_energy(self):
        table = EnergyTable({"add": 2.0, "mul": 10.0})
        assert table.energy_pj({"add": 3, "mul": 1}) == 16.0

    def test_missing_entry_raises(self):
        table = EnergyTable({"add": 2.0})
        with pytest.raises(AnnotationError, match="no entry"):
            table.energy_pj({"div": 1})


class TestPowerBudget:
    def test_static_energy_units(self):
        budget = PowerBudget(static_mw=1.0)
        one_second_fs = 10**15
        # 1 mW for 1 s = 1 mJ = 1e9 pJ
        assert budget.static_energy_pj(one_second_fs) == pytest.approx(1e9)


class TestEstimateEnergy:
    def test_per_process_attribution(self, calibrated_costs):
        perf = _run_design(calibrated_costs)
        report = estimate_energy(perf, tables={})
        names = {p.process for p in report.processes}
        assert names == {"top.sw_proc", "top.hw_proc"}
        sw = next(p for p in report.processes if p.process == "top.sw_proc")
        hw = next(p for p in report.processes if p.process == "top.hw_proc")
        assert sw.operations > hw.operations          # 100 vs 50 iterations
        assert sw.dynamic_pj > 0 and hw.dynamic_pj > 0
        assert report.total_pj > 0

    def test_tables_selected_by_resource_kind(self, calibrated_costs):
        perf = _run_design(calibrated_costs)
        report = estimate_energy(perf, tables={})
        sw = next(p for p in report.processes if p.resource == "cpu0")
        hw = next(p for p in report.processes if p.resource == "hw0")
        # 2x the op count on the CPU at ~3x the energy/op: must dominate
        assert sw.dynamic_pj > hw.dynamic_pj

    def test_static_budget_included(self, calibrated_costs):
        perf = _run_design(calibrated_costs)
        without = estimate_energy(perf, tables={})
        with_static = estimate_energy(
            perf, tables={}, budgets={"cpu0": PowerBudget(static_mw=5.0)})
        assert with_static.total_pj > without.total_pj
        assert with_static.resource_static_pj["cpu0"] > 0

    def test_render(self, calibrated_costs):
        perf = _run_design(calibrated_costs)
        text = estimate_energy(perf, tables={}).render()
        assert "energy report" in text
        assert "cpu0" in text and "uJ" in text

    def test_requires_attached_library(self):
        perf = PerformanceLibrary(Mapping())
        with pytest.raises(ReproError, match="attached"):
            estimate_energy(perf, tables={})
