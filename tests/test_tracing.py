"""Trace recorder and VCD writer tests."""

from repro import SimTime, Simulator, TraceRecorder, wait
from repro.kernel import VcdWriter


def _traced_design():
    sim = Simulator(trace=True)
    fifo = sim.fifo("data")
    sig = sim.signal("sig", initial=0)
    top = sim.module("top")

    def producer():
        for i in range(2):
            yield from fifo.write(i)
            yield from sig.write(i + 1)
            yield wait(SimTime.ns(5))

    def consumer():
        for _ in range(2):
            yield from fifo.read()

    top.add_process(producer)
    top.add_process(consumer)
    sim.run()
    return sim, sig


class TestTraceRecorder:
    def test_records_nodes_and_exits(self):
        sim, _ = _traced_design()
        kinds = {r.kind for r in sim.trace.records}
        assert {"node-reached", "node-finished", "exit"} <= kinds

    def test_for_process_filter(self):
        sim, _ = _traced_design()
        producer_records = sim.trace.for_process("top.producer")
        assert producer_records
        assert all(r.process == "top.producer" for r in producer_records)

    def test_of_kind_filter(self):
        sim, _ = _traced_design()
        exits = sim.trace.of_kind("exit")
        assert len(exits) == 2

    def test_record_rendering(self):
        sim, _ = _traced_design()
        text = str(sim.trace.records[0])
        assert "top." in text and "node-reached" in text

    def test_kind_restriction(self):
        recorder = TraceRecorder(kinds={"exit"})
        sim = Simulator()
        sim.add_observer(recorder)
        top = sim.module("top")

        def body():
            yield wait(SimTime.ns(1))

        top.add_process(body)
        sim.run()
        assert all(r.kind == "exit" for r in recorder.records)
        assert len(recorder) == 1

    def test_clear(self):
        sim, _ = _traced_design()
        sim.trace.clear()
        assert len(sim.trace) == 0

    def test_times_and_deltas_recorded(self):
        sim, _ = _traced_design()
        times = {r.time_fs for r in sim.trace.records}
        assert 0 in times
        assert any(t > 0 for t in times)


class TestVcdWriter:
    def test_render_structure(self):
        _, sig = _traced_design()
        text = VcdWriter().render([sig])
        assert "$timescale 1 fs $end" in text
        assert "$var wire 64" in text
        assert "sig" in text
        assert "$enddefinitions" in text
        assert "#0" in text

    def test_value_changes_in_time_order(self):
        _, sig = _traced_design()
        text = VcdWriter().render([sig])
        stamps = [int(line[1:]) for line in text.splitlines()
                  if line.startswith("#")]
        assert stamps == sorted(stamps)

    def test_write_to_file(self, tmp_path):
        _, sig = _traced_design()
        path = tmp_path / "wave.vcd"
        VcdWriter().write(str(path), [sig])
        assert path.read_text().startswith("$date")

    def test_identifier_uniqueness(self):
        writer = VcdWriter()
        codes = {writer._identifier(i) for i in range(500)}
        assert len(codes) == 500

    def test_non_integer_values_hash(self):
        assert VcdWriter._to_bits("text").isdigit() or \
            set(VcdWriter._to_bits("text")) <= {"0", "1"}
        assert VcdWriter._to_bits(-3)


class TestRecordStability:
    def test_describe_fallback_is_stable_across_runs(self):
        """Unknown commands render as their class name, never a repr —
        a repr leaks ``0x...`` object addresses into the stream and
        breaks byte-identical traces across runs."""
        from repro.kernel.tracing import _describe

        class Mystery:
            pass

        first, second = _describe(Mystery()), _describe(Mystery())
        assert first == second == "Mystery"
        assert "0x" not in first

    def test_default_stream_has_no_state_records(self):
        sim, _ = _traced_design()
        kinds = {r.kind for r in sim.trace.records}
        assert "resume" not in kinds and "suspend" not in kinds

    def test_record_states_adds_transitions(self):
        sim = Simulator(trace=True, record_states=True)
        fifo = sim.fifo("data", capacity=1)
        top = sim.module("top")

        def producer():
            for i in range(2):
                yield wait(SimTime.ns(5))
                yield from fifo.write(i)

        def consumer():
            for _ in range(2):
                yield from fifo.read()

        top.add_process(producer)
        top.add_process(consumer)
        sim.run()
        kinds = [r.kind for r in sim.trace.records]
        assert "resume" in kinds and "suspend" in kinds
        # A finished process ends on `exit`; no trailing suspend may
        # flip its state waveform back to waiting.
        per_process = {}
        for r in sim.trace.records:
            per_process.setdefault(r.process, []).append(r.kind)
        for name, sequence in per_process.items():
            assert "suspend" not in sequence[sequence.index("exit"):], name

    def test_depth_carries_fifo_occupancy(self):
        sim, _ = _traced_design()
        finished = [r for r in sim.trace.records
                    if r.kind == "node-finished" and "data." in r.detail]
        assert finished
        assert all(r.depth >= 0 for r in finished)
        assert any(r.depth > 0 for r in finished)
