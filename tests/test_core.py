"""Performance-library tests: estimation, agents, global analysis."""

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import AInt, CostContext, MODE_HW, MODE_SW, uniform_costs
from repro.core import (
    PerformanceLibrary,
    SegmentEstimate,
    annotated_cycles,
    annotated_time,
    check_determinism,
)
from repro.errors import MappingError
from repro.kernel import Clock, TraceRecorder
from repro.platform import (
    EnvironmentResource,
    Mapping,
    RtosModel,
    make_cpu,
    make_fabric,
)


def _busy(n):
    acc = AInt(0)
    for k in range(n):
        acc = acc + 1
    return acc


class TestEstimator:
    def test_interpolation_endpoints(self):
        estimate = SegmentEstimate(t_max_cycles=100.0, t_min_cycles=40.0)
        assert estimate.interpolate(0.0) == 40.0
        assert estimate.interpolate(1.0) == 100.0
        assert estimate.interpolate(0.5) == 70.0

    def test_bad_k_rejected(self):
        estimate = SegmentEstimate(10.0, 5.0)
        with pytest.raises(ValueError):
            estimate.interpolate(1.5)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            SegmentEstimate(t_max_cycles=1.0, t_min_cycles=2.0)

    def test_sequential_uses_sum(self):
        cpu = make_cpu()
        estimate = SegmentEstimate(100.0, 40.0)
        assert annotated_cycles(estimate, cpu) == 100.0

    def test_parallel_uses_k(self):
        fabric = make_fabric(k_factor=0.25)
        estimate = SegmentEstimate(100.0, 40.0)
        assert annotated_cycles(estimate, fabric) == 55.0

    def test_environment_is_free(self):
        env = EnvironmentResource("tb")
        assert annotated_cycles(SegmentEstimate(100.0, 40.0), env) == 0.0

    def test_annotated_time_uses_resource_clock(self):
        cpu = make_cpu(mhz=100.0)
        estimate = SegmentEstimate(10.0, 10.0)
        assert annotated_time(estimate, cpu) == SimTime.ns(100)


class TestSwSerialization:
    def _run(self, policy="fifo", rtos=None, priorities=(0, 0)):
        sim = Simulator()
        top = sim.module("top")
        done = {}

        def make(name, cycles, priority):
            def body():
                _busy(cycles)
                yield wait(SimTime.fs(0))
                done[name] = sim.now
            body.__name__ = name
            return top.add_process(body, name=name, priority=priority)

        p_a = make("a", 100, priorities[0])
        p_b = make("b", 100, priorities[1])
        cpu = make_cpu("cpu0", costs=uniform_costs(), rtos=rtos, policy=policy)
        mapping = Mapping()
        mapping.assign(p_a, cpu)
        mapping.assign(p_b, cpu)
        perf = PerformanceLibrary(mapping).attach(sim)
        sim.run()
        sim.assert_quiescent()
        return sim, cpu, perf, done

    def test_same_cpu_processes_serialize(self):
        sim, cpu, perf, done = self._run()
        stats_a = perf.stats["top.a"]
        stats_b = perf.stats["top.b"]
        # both segments ran: total busy = sum, and the simulated span
        # covers the serialized execution of both.
        assert cpu.busy_time.femtoseconds == (
            stats_a.busy_time.femtoseconds + stats_b.busy_time.femtoseconds
        )
        assert sim.now.femtoseconds >= cpu.busy_time.femtoseconds
        assert done["a"] != done["b"]

    def test_second_process_waits_full_duration(self):
        sim, cpu, perf, done = self._run()
        # each segment is ~101 charged ops at 1 cycle on a 200 MHz clock
        first_done = min(done.values())
        second_done = max(done.values())
        assert second_done.femtoseconds >= 2 * first_done.femtoseconds * 0.9

    def test_priority_policy_orders_grant(self):
        """When contenders queue behind a busy CPU, priority wins.

        (A request hitting a *free* CPU is granted immediately — the
        RTOS cannot foresee a more urgent thread becoming ready in the
        same instant; FIFO arrival order applies there.)
        """
        sim = Simulator()
        top = sim.module("top")
        done = {}

        def make(name, cycles, priority):
            def body():
                _busy(cycles)
                yield wait(SimTime.fs(0))
                done[name] = sim.now
            body.__name__ = name
            return top.add_process(body, name=name, priority=priority)

        hog = make("hog", 500, 0)        # grabs the CPU first
        low = make("low", 100, 5)
        high = make("high", 100, 1)      # queues later but more urgent
        cpu = make_cpu("cpu0", costs=uniform_costs(), rtos=None,
                       policy="priority")
        mapping = Mapping()
        for process in (hog, low, high):
            mapping.assign(process, cpu)
        PerformanceLibrary(mapping).attach(sim)
        sim.run()
        sim.assert_quiescent()
        assert done["hog"] < done["high"] < done["low"]

    def test_rtos_overhead_accounted(self):
        rtos = RtosModel("r", channel_access_cycles=50.0, wait_cycles=50.0,
                         context_switch_cycles=25.0)
        sim, cpu, perf, _ = self._run(rtos=rtos)
        assert cpu.rtos_time.femtoseconds > 0
        assert perf.stats["top.a"].rtos_cycles > 0
        _, cpu_free, _, _ = self._run(rtos=None)
        assert cpu_free.rtos_time.femtoseconds == 0

    def test_arbitration_time_recorded(self):
        _, _, perf, _ = self._run()
        total_arbitration = sum(
            s.arbitration_time.femtoseconds for s in perf.stats.values()
        )
        assert total_arbitration > 0


class TestHwParallelism:
    def test_hw_processes_overlap(self):
        sim = Simulator()
        top = sim.module("top")
        done = {}

        def make(name):
            def body():
                _busy(200)
                yield wait(SimTime.fs(0))
                done[name] = sim.now
            body.__name__ = name
            return top.add_process(body, name=name)

        p_a, p_b = make("a"), make("b")
        hw_a = make_fabric("hw_a")
        hw_b = make_fabric("hw_b")
        mapping = Mapping()
        mapping.assign(p_a, hw_a)
        mapping.assign(p_b, hw_b)
        PerformanceLibrary(mapping).attach(sim)
        sim.run()
        # independent fabrics: both finish at the same instant
        assert done["a"] == done["b"]

    def test_k_factor_scales_duration(self):
        durations = {}
        for k in (0.0, 1.0):
            sim = Simulator()
            top = sim.module("top")

            def body():
                a, b, c, d = AInt(1), AInt(2), AInt(3), AInt(4)
                _ = (a + b) + (c + d)
                yield wait(SimTime.fs(0))

            process = top.add_process(body)
            fabric = make_fabric("hw", k_factor=k)
            mapping = Mapping()
            mapping.assign(process, fabric)
            perf = PerformanceLibrary(mapping).attach(sim)
            sim.run()
            durations[k] = perf.stats["top.body"].cycles
        assert durations[0.0] < durations[1.0]


class TestAttachment:
    def test_unmapped_process_rejected(self):
        sim = Simulator()
        top = sim.module("top")

        def body():
            yield wait(SimTime.ns(1))

        top.add_process(body)
        perf = PerformanceLibrary(Mapping())
        with pytest.raises(MappingError, match="unmapped"):
            perf.attach(sim)

    def test_double_attach_rejected(self):
        sim = Simulator()
        top = sim.module("top")

        def body():
            yield wait(SimTime.ns(1))

        process = top.add_process(body)
        mapping = Mapping()
        mapping.assign(process, make_cpu())
        perf = PerformanceLibrary(mapping).attach(sim)
        with pytest.raises(MappingError, match="already attached"):
            perf.attach(sim)

    def test_environment_processes_not_instrumented(self):
        sim = Simulator()
        top = sim.module("top")

        def body():
            yield wait(SimTime.ns(1))

        process = top.add_process(body)
        mapping = Mapping()
        mapping.assign(process, EnvironmentResource("tb"))
        perf = PerformanceLibrary(mapping).attach(sim)
        sim.run()
        assert perf.stats == {}
        assert sim.now == SimTime.ns(1)  # untouched timing

    def test_report_renders(self):
        sim = Simulator()
        top = sim.module("top")

        def body():
            _busy(10)
            yield wait(SimTime.ns(5))

        process = top.add_process(body)
        mapping = Mapping()
        mapping.assign(process, make_cpu())
        perf = PerformanceLibrary(mapping).attach(sim)
        final = sim.run()
        report = perf.report(final)
        assert "top.body" in report
        assert "cpu0" in report
        segments = perf.segment_report()
        assert "top.body" in segments


class TestDeterminismCheck:
    def _trace_of(self, racy: bool, timed: bool):
        """A design whose reader branches on whichever write wins.

        In the deterministic variant, an ordering channel forces
        a-before-b.  In the racy variant, the untimed delta order says
        "a first" while the strict-timed mapping delays writer_a by its
        computation time, so "b" wins — the §6 hidden-error scenario.
        """
        sim = Simulator()
        trace = TraceRecorder()
        sim.add_observer(trace)
        shared = sim.fifo("shared")
        order = sim.fifo("order")
        top = sim.module("top")

        def writer_a():
            _busy(500)                      # heavy segment before writing
            yield from shared.write("a")
            if not racy:
                yield from order.write(1)

        def writer_b():
            if not racy:
                yield from order.read()     # wait for a's token
            yield from shared.write("b")

        def reader():
            first = yield from shared.read()
            second = yield from shared.read()
            if first == "a":
                yield wait(SimTime.ns(1))   # order-dependent control flow
            del second

        p_a = top.add_process(writer_a)
        p_b = top.add_process(writer_b)
        p_r = top.add_process(reader)
        if timed:
            cpu = make_cpu("cpu0", costs=uniform_costs())
            cpu2 = make_cpu("cpu1", costs=uniform_costs())
            mapping = Mapping()
            mapping.assign(p_a, cpu)
            mapping.assign(p_b, cpu2)
            mapping.assign(p_r, EnvironmentResource("tb"))
            PerformanceLibrary(mapping).attach(sim)
        sim.run()
        sim.assert_quiescent()
        return trace

    def test_deterministic_design_matches(self):
        untimed = self._trace_of(racy=False, timed=False)
        timed = self._trace_of(racy=False, timed=True)
        assert check_determinism(untimed, timed) == []

    def test_racy_design_flagged(self):
        untimed = self._trace_of(racy=True, timed=False)
        timed = self._trace_of(racy=True, timed=True)
        differences = check_determinism(untimed, timed)
        assert differences, "timing-dependent design should be flagged"
        assert any("reader" in d for d in differences)
