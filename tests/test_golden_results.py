"""Golden regression tests for the checked-in benchmark results.

``benchmarks/results/*.txt`` are committed artifacts of the paper
reproduction (Tables 1-4 and Fig. 4).  These tests pin them down twice
over:

* **claims** — the numbers already in the files must keep satisfying
  the paper's headline accuracy statements (SW estimation error below
  4.5 % on average, HW estimation error below 8.2 %), plus the looser
  per-row bounds each bench asserts for itself;
* **reproduction** — recomputing the deterministic columns through the
  same code paths the benches use (including the Fig. 4 sweep through
  the batch :class:`~repro.batch.Campaign`) must regenerate the
  committed rows exactly, so a silent behavior change in the library,
  the ISS, or the scheduler shows up as a diff against the goldens.

Host-time columns (wall-clock, overload, gain) are machine-dependent
and are only checked structurally.
"""

from __future__ import annotations

import pathlib
import re
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

# The benches live outside the package; import their harness the same
# way benchmarks/conftest.py does so the recomputation shares one code
# path with the scripts that wrote the goldens.
sys.path.insert(0, str(ROOT / "benchmarks"))

from repro.annotate import AArray, CostContext, MODE_HW, active
from repro.batch import Campaign, fig4_sweep_configs
from repro.calibration import calibrate, default_microbenchmarks
from repro.core import SegmentEstimate
from repro.hls import (
    Allocation,
    DesignPoint,
    capture_dfg,
    pareto_front,
    synthesize_best_case,
    synthesize_worst_case,
)
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS, HW_CLOCK_MHZ, OPENRISC_SW_COSTS

# Paper claims (abstract / §6).
SW_MEAN_ERROR_PCT = 4.5
HW_MEAN_ERROR_PCT = 8.2
# Looser per-row bounds asserted by the benches themselves.
PER_ROW_BOUND_PCT = {"table1": 10.0, "table2": 15.0, "table3": 12.0,
                     "table4": 15.0}


# -- parsing format_table output ------------------------------------------


def _split(line: str):
    return re.split(r"\s{2,}", line.strip())


def _parse_table(text: str):
    """(title, headers, rows) from one ``format_table`` rendering."""
    lines = [l for l in text.splitlines() if l.strip()]
    title, headers = lines[0], _split(lines[1])
    assert set(lines[2]) <= {"-", " "}, "missing rule under the header"
    rows = [_split(l) for l in lines[3:] if not l.startswith("host:")]
    for row in rows:
        assert len(row) == len(headers), f"ragged row {row!r} in {title!r}"
    return title, headers, rows


def _golden(name: str):
    return _parse_table((RESULTS / name).read_text(encoding="utf-8"))


def _error_col(rows, index=-1):
    return [float(row[index].rstrip("%")) for row in rows]


# -- the paper's accuracy claims, on the committed numbers ----------------


def test_table1_rows_and_sw_error_claim():
    title, headers, rows = _golden("table1.txt")
    assert headers[0] == "Benchmark" and "Error" in headers
    assert [r[0] for r in rows] == ["FIR", "Compress", "Quick sort",
                                    "Bubble", "Fibonacci", "Array"]
    errors = _error_col(rows, headers.index("Error"))
    for name, err in zip((r[0] for r in rows), errors):
        assert abs(err) < PER_ROW_BOUND_PCT["table1"], (name, err)
    mean = sum(abs(e) for e in errors) / len(errors)
    assert mean < SW_MEAN_ERROR_PCT, \
        f"mean SW estimation error {mean:.2f}% breaks the paper's 4.5% claim"


def test_table3_vocoder_rows_and_host_line():
    text = (RESULTS / "table3.txt").read_text(encoding="utf-8")
    _, headers, rows = _parse_table(text)
    assert [r[0] for r in rows] == ["lsp_estim", "lpc_int", "acb_search",
                                    "icb_search", "post_proc"]
    for err in _error_col(rows, headers.index("Error")):
        assert abs(err) < PER_ROW_BOUND_PCT["table3"]
    host = next(l for l in text.splitlines() if l.startswith("host:"))
    overload, gain = re.search(
        r"overload ([\d.]+)x, gain vs ISS ([\d.]+)x", host).groups()
    assert float(overload) > 1.0 and float(gain) > 0.6


def test_hw_tables_rows_and_error_claim():
    _, headers2, rows2 = _golden("table2.txt")
    _, headers4, rows4 = _golden("table4.txt")
    assert [r[0] for r in rows2] == ["FIR (WC)", "FIR (BC)",
                                     "Euler (WC)", "Euler (BC)"]
    assert [r[0] for r in rows4] == ["Post. Proc. (WC)", "Post. Proc. (BC)"]
    errors2 = _error_col(rows2, headers2.index("Error"))
    errors4 = _error_col(rows4, headers4.index("Error"))
    for err in errors2:
        assert abs(err) < PER_ROW_BOUND_PCT["table2"]
    for err in errors4:
        assert abs(err) < PER_ROW_BOUND_PCT["table4"]
    combined = errors2 + errors4
    mean = sum(abs(e) for e in combined) / len(combined)
    assert mean < HW_MEAN_ERROR_PCT, \
        f"mean HW estimation error {mean:.2f}% breaks the paper's 8.2% claim"


def test_estimates_bracket_reality_from_both_sides():
    """Bounds behave like bounds: WC/BC estimates sit under the real
    schedule times by construction (fractional vs whole-cycle slots),
    and every error in the HW tables is negative for that reason."""
    for name in ("table2.txt", "table4.txt"):
        _, headers, rows = _golden(name)
        for row in rows:
            real = float(row[headers.index("Real exec time (ns)")])
            est = float(row[headers.index("Estimated exec time (ns)")])
            assert est <= real, (name, row)


# -- exact reproduction of the deterministic columns ----------------------


@pytest.fixture(scope="module")
def bench_costs():
    """The benches calibrate at scale=64 (benchmarks/conftest.py)."""
    return calibrate(default_microbenchmarks(scale=64),
                     OPENRISC_SW_COSTS).costs


def test_table1_cycles_reproduce_exactly(bench_costs):
    from harness import run_sequential_case, table1_cases

    _, headers, rows = _golden("table1.txt")
    est_col = headers.index("Library est (cyc)")
    iss_col = headers.index("ISS (cyc)")
    err_col = headers.index("Error")
    for case, row in zip(table1_cases(), rows):
        result = run_sequential_case(case, bench_costs)
        assert f"{result.estimated_cycles:.0f}" == row[est_col], case.name
        assert str(result.iss_cycles) == row[iss_col], case.name
        assert f"{result.error_pct:+.2f}%" == row[err_col], case.name


def test_table2_reproduces_exactly():
    from bench_table2 import _euler_case, _fir_case, _rows_for

    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    _, _, rows = _golden("table2.txt")
    recomputed = []
    for name, fn, args in (_fir_case(), _euler_case()):
        for label, real_ns, est_ns in _rows_for(name, fn, args, clock):
            error = 100.0 * (est_ns - real_ns) / real_ns
            recomputed.append([label, f"{real_ns:.1f}", f"{est_ns:.1f}",
                               f"{error:+.2f}%"])
    assert recomputed == rows


@pytest.fixture(scope="module")
def fig4_golden():
    text = (RESULTS / "fig4_design_space.txt").read_text(encoding="utf-8")
    part_a, part_b = text.split("\n\n")
    return _parse_table(part_a), _parse_table(part_b)


def _fig4_segment_args(taps=12):
    from repro.workloads.fir import _lowpass_taps

    x = AArray([(i * 17 + 3) % 128 - 64 for i in range(taps)])
    h = AArray(_lowpass_taps(taps))
    return (x, h, taps)


def test_fig4_frontier_reproduces_through_campaign(fig4_golden):
    """The committed Fig. 4 frontier comes back row-for-row when the
    allocation sweep is re-run through the batch Campaign API."""
    from repro.workloads.fir import fir_sample

    (_, headers, rows), _ = fig4_golden
    assert headers == ["allocation", "area", "cycles", "time (ns)"]
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)

    results = Campaign(fig4_sweep_configs(max_units_per_class=3),
                       workers=0, cache=None, retries=0).run()
    assert all(r.ok for r in results)
    points = sorted(
        (DesignPoint(Allocation.of(r.payload["allocation"]),
                     r.payload["latency_cycles"], r.payload["area"])
         for r in results),
        key=lambda p: (p.area, p.latency_cycles))
    front_rows = [
        [str(p.allocation), f"{p.area:.0f}", str(p.latency_cycles),
         f"{clock.cycles_to_time(p.latency_cycles).to_ns():.0f}"]
        for p in pareto_front(points)
    ]

    graph = capture_dfg(fir_sample, _fig4_segment_args(), ASIC_HW_COSTS)
    worst = synthesize_worst_case(graph, clock)
    best = synthesize_best_case(graph, clock)
    front_rows.append(["single universal ALU (paper WC)",
                       f"{worst.area:.0f}", str(worst.latency_cycles),
                       f"{worst.exec_time_ns:.0f}"])
    front_rows.append(["critical path, unlimited units (paper BC)",
                       f"{best.area:.0f}", str(best.latency_cycles),
                       f"{best.exec_time_ns:.0f}"])
    assert front_rows == rows


def test_fig4_k_sweep_reproduces(fig4_golden):
    from repro.workloads.fir import fir_sample

    _, (_, headers, rows) = fig4_golden
    assert headers == ["k", "annotated cycles", "time (ns)"]
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    context = CostContext(ASIC_HW_COSTS, MODE_HW)
    with active(context):
        fir_sample(*_fig4_segment_args())
    t_max, t_min = context.segment_totals()
    estimate = SegmentEstimate(t_max, t_min)
    recomputed = []
    for tenth in range(11):
        k = tenth / 10.0
        cycles = estimate.interpolate(k)
        recomputed.append([f"{k:.1f}", f"{cycles:.1f}",
                           f"{clock.cycles_to_time(cycles).to_ns():.0f}"])
    assert recomputed == rows
