"""Fault-injection suite: the campaign's crash paths and the
integrity-checked cache/artifact lifecycle.

The batch layer's value is that thousands of cached design points can
be *trusted after failures* — so every claim here is driven the hard
way: workers killed before and during runs, timeouts, corrupt and
truncated cache entries, deleted artifacts, flaky cache storage
(:class:`FaultingCache`), and a simulated kill-mid-campaign that must
converge to the uninterrupted result.  Pool tests run under ``spawn``
(pinned session-wide in ``conftest.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.batch import (
    CACHE_SCHEMA_VERSION,
    Campaign,
    CacheFault,
    FaultingCache,
    ResultCache,
    RunConfig,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    corrupt_entry_file,
    execute_config,
    gc_cache,
    payload_checksum,
    register_runner,
    verify_cache,
)
from repro.batch.campaign import _Worker

TOPOLOGY = dict(stages=2, messages=4, capacities=[1, 2], waits_ns=[0, 3],
                seed=7)


def _topology(name="t", **overrides):
    return RunConfig.of("topology", name, **dict(TOPOLOGY, **overrides))


# -- test-only runner kinds (inline campaigns only: these are not
#    registered inside spawned workers) ----------------------------------


def _tiny_sim(tag: str):
    from repro import SimTime, Simulator, wait

    simulator = Simulator()
    top = simulator.module("top")

    def body():
        yield wait(SimTime.ns(1))

    top.add_process(body, name=tag)
    simulator.run()


@register_runner("sim-then-fail")
def _run_sim_then_fail(params: dict) -> dict:
    _tiny_sim("doomed")
    raise RuntimeError("failure after the simulator already traced")


@register_runner("two-sims")
def _run_two_sims(params: dict) -> dict:
    _tiny_sim("first")
    _tiny_sim("second")
    return {"sims": 2}


# -- cache entry integrity ------------------------------------------------


def test_entry_carries_meta_block(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" * 32
    cache.put(key, {"x": 1}, describe="point")
    raw = json.loads(cache.path_for(key).read_text(encoding="utf-8"))
    assert raw["key"] == key
    assert raw["meta"]["schema"] == CACHE_SCHEMA_VERSION
    assert raw["meta"]["checksum"] == payload_checksum({"x": 1})
    assert raw["meta"]["created_at"] > 0
    assert cache.get(key) == {"x": 1}
    assert cache.hits == 1 and cache.invalidated == 0


def test_garbage_entry_is_counted_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" * 32
    cache.put(key, {"x": 2})
    corrupt_entry_file(cache, key)
    assert cache.get(key) is None
    assert cache.invalidated == 1 and cache.misses == 1


def test_tampered_payload_fails_checksum(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ef" * 32
    cache.put(key, {"x": 3})
    path = cache.path_for(key)
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["payload"]["x"] = 99          # bit-flip past the atomic rename
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(key) is None
    assert cache.invalidated == 1


def test_foreign_entry_under_wrong_key_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    key_a, key_b = "aa" * 32, "bb" * 32
    cache.put(key_a, {"x": 4})
    target = cache.path_for(key_b)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(cache.path_for(key_a).read_bytes())
    assert cache.get(key_b) is None     # key mismatch: foreign entry
    assert cache.get(key_a) == {"x": 4}
    assert cache.invalidated == 1


def test_pre_integrity_schema_entry_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    key = "dd" * 32
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"key": key, "describe": "",
                                "payload": {"x": 5}}), encoding="utf-8")
    assert cache.get(key) is None
    assert cache.invalidated == 1


def test_missing_entry_is_clean_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("ee" * 32) is None
    assert cache.misses == 1 and cache.invalidated == 0


def test_campaign_self_heals_corrupt_entry(tmp_path):
    config = _topology()
    cache = ResultCache(tmp_path / "cache")
    reference = Campaign([config], workers=0, cache=cache).run()[0]
    corrupt_entry_file(cache, config.cache_key())

    rerun = Campaign([config], workers=0, cache=cache)
    result = rerun.run()[0]
    assert not result.cached and result.attempts == 1
    assert result.payload == reference.payload
    assert cache.invalidated == 1
    assert verify_cache(cache).ok     # rewritten entry is valid again


def test_corrupt_cache_probe_exercises_foreign_writer(tmp_path):
    cache_root = tmp_path / "cache"
    victim = _topology()
    Campaign([victim], workers=0, cache=cache_root).run()

    saboteur = RunConfig.of("probe", "saboteur", behavior="corrupt-cache",
                            cache_root=str(cache_root),
                            key=victim.cache_key())
    Campaign([saboteur], workers=0, cache=None).run()

    healed = Campaign([victim], workers=0, cache=cache_root)
    result = healed.run()[0]
    assert not result.cached            # corrupt entry was a miss
    assert result.ok
    assert healed.cache.invalidated == 1
    assert verify_cache(healed.cache).ok


# -- FaultingCache: flaky cache storage must never lose results ----------


def test_injected_get_fault_degrades_to_miss(tmp_path):
    config = _topology()
    cache = FaultingCache(tmp_path, fail_first_gets=1)
    campaign = Campaign([config], workers=0, cache=cache)
    result = campaign.run()[0]
    assert result.ok and not result.cached
    assert campaign.metrics.cache_errors == 1
    assert cache.faults_injected == 1
    # The put still happened; the next campaign is a pure hit.
    hit = Campaign([config], workers=0, cache=cache).run()[0]
    assert hit.cached


def test_injected_put_fault_does_not_lose_result(tmp_path):
    config = _topology()
    cache = FaultingCache(tmp_path, fail_puts_for={config.cache_key()})
    campaign = Campaign([config], workers=0, cache=cache)
    result = campaign.run()[0]
    assert result.status == STATUS_OK and result.payload is not None
    assert campaign.metrics.cache_errors == 1
    assert len(cache) == 0              # nothing persisted...
    assert campaign.metrics.completed == 1   # ...but the run succeeded


def test_injected_corrupt_put_is_healed_by_next_campaign(tmp_path):
    config = _topology()
    faulty = FaultingCache(tmp_path, corrupt_puts_for={config.cache_key()})
    first = Campaign([config], workers=0, cache=faulty).run()[0]
    assert first.ok
    report = verify_cache(ResultCache(tmp_path))
    assert [key for key, _ in report.invalid] == [config.cache_key()]

    clean = ResultCache(tmp_path)
    second = Campaign([config], workers=0, cache=clean)
    result = second.run()[0]
    assert not result.cached and result.payload == first.payload
    assert clean.invalidated == 1
    assert verify_cache(clean).ok


def test_cache_fault_is_oserror():
    # Campaign tolerance hinges on the injected fault taking the real
    # OSError handling path, not a bespoke exception type.
    assert issubclass(CacheFault, OSError)


# -- worker crash paths ---------------------------------------------------


def test_assign_to_dead_worker_reports_false():
    context = multiprocessing.get_context("spawn")
    worker = _Worker(context)
    try:
        worker.process.terminate()
        worker.process.join(timeout=10.0)
        deadline = time.perf_counter() + 10.0
        accepted = True
        # The pipe may take a beat to report the peer closed; the
        # campaign sees the same race and must always land on False.
        while time.perf_counter() < deadline:
            accepted = worker.assign(
                [(0, RunConfig.of("probe", behavior="ok"), 1)], None, [None])
            if not accepted:
                break
            worker.chunk.clear()
            worker.deadline = None
            time.sleep(0.05)
        assert accepted is False
        assert not worker.busy
    finally:
        worker.kill()


def test_pool_requeues_task_when_worker_dies_before_assignment(monkeypatch):
    from repro.batch import campaign as campaign_mod

    original = campaign_mod._Worker.assign
    state = {"killed": False}

    def flaky_assign(self, tasks, timeout_s, trace_paths):
        if not state["killed"]:
            state["killed"] = True
            self.process.terminate()
            self.process.join(timeout=10.0)
        return original(self, tasks, timeout_s, trace_paths)

    monkeypatch.setattr(campaign_mod._Worker, "assign", flaky_assign)
    configs = [RunConfig.of("probe", f"p{i}", behavior="ok", value=i)
               for i in range(3)]
    campaign = Campaign(configs, workers=2, cache=None, retries=0)
    results = campaign.run()
    assert [r.status for r in results] == [STATUS_OK] * 3
    # The dead worker never started the task: one replacement, no
    # attempt consumed (all runs completed on their first attempt).
    assert all(r.attempts == 1 for r in results)
    assert campaign.metrics.worker_replacements >= 1
    assert campaign.metrics.retries == 0


def test_worker_death_mid_run_is_replaced_and_retried(worker_tmp_path):
    marker = worker_tmp_path / "die-once"
    configs = [
        RunConfig.of("probe", "ok-1", behavior="ok", value=1),
        RunConfig.of("probe", "victim", behavior="die", marker=str(marker)),
        RunConfig.of("probe", "ok-2", behavior="ok", value=2),
    ]
    campaign = Campaign(configs, workers=2, cache=None, retries=1)
    results = campaign.run()
    assert [r.status for r in results] == [STATUS_OK] * 3
    assert results[1].attempts == 2
    assert campaign.metrics.worker_replacements >= 1
    assert campaign.metrics.retries == 1


def test_worker_death_every_attempt_reports_failed():
    config = RunConfig.of("probe", "doomed", behavior="die")
    campaign = Campaign([config], workers=2, cache=None, retries=1)
    result = campaign.run()[0]
    assert result.status == STATUS_FAILED
    assert result.attempts == 2
    assert "worker process died" in result.error
    assert campaign.metrics.worker_replacements >= 2


def test_timeout_replace_retry_with_shared_cache(worker_tmp_path, tmp_path):
    marker = worker_tmp_path / "slow-once"
    config = RunConfig.of("probe", "laggard", behavior="slow-then-ok",
                          marker=str(marker), seconds=60, value=7)
    cache_root = tmp_path / "cache"
    campaign = Campaign([config], workers=2, cache=cache_root,
                        retries=1, timeout_s=3.0)
    started = time.perf_counter()
    result = campaign.run()[0]
    assert time.perf_counter() - started < 30.0
    assert result.status == STATUS_OK
    assert result.attempts == 2           # timeout, then instant success
    assert campaign.metrics.retries == 1
    assert campaign.metrics.worker_replacements >= 1

    rerun = Campaign([config], workers=0, cache=cache_root)
    hit = rerun.run()[0]
    assert hit.cached and hit.payload == result.payload
    assert verify_cache(rerun.cache).ok


def test_timeout_without_retry_settles_timeout_status():
    config = RunConfig.of("probe", "hang", behavior="sleep", seconds=60)
    campaign = Campaign([config], workers=2, cache=None, retries=0,
                        timeout_s=3.0)
    result = campaign.run()[0]
    assert result.status == STATUS_TIMEOUT
    assert campaign.metrics.worker_replacements >= 1


# -- concurrent campaigns on one cache root -------------------------------


def test_concurrent_campaigns_share_cache_root(tmp_path):
    configs = [_topology(f"s{i}", seed=i + 1) for i in range(4)]
    cache_root = tmp_path / "cache"
    outcomes = [None, None]

    def drive(slot):
        campaign = Campaign(configs, workers=0, cache=cache_root)
        outcomes[slot] = campaign.run()

    threads = [threading.Thread(target=drive, args=(slot,))
               for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    first, second = outcomes
    assert all(r.ok for r in first) and all(r.ok for r in second)
    assert [r.payload for r in first] == [r.payload for r in second]
    cache = ResultCache(cache_root)
    assert len(cache) == len(configs)
    assert verify_cache(cache).ok


# -- artifact lifecycle ----------------------------------------------------


def test_failed_traced_run_leaves_partial_not_truncated(tmp_path):
    config = RunConfig.of("sim-then-fail")
    trace = tmp_path / f"{config.cache_key()}.jsonl"
    with pytest.raises(RuntimeError):
        execute_config(config, trace_path=str(trace))
    assert not trace.exists()                       # never a fake trace
    partial = trace.with_name(trace.name + ".partial")
    assert partial.exists()
    assert partial.read_text(encoding="utf-8")      # evidence retained


def test_multi_simulator_artifacts_all_recorded(tmp_path):
    config = RunConfig.of("two-sims")
    base = tmp_path / f"{config.cache_key()}.jsonl"
    payload = execute_config(config, trace_path=str(base))
    assert payload["trace"] == str(base)
    assert payload["trace_artifacts"] == [str(base), f"{base}.1"]
    assert base.exists() and os.path.exists(f"{base}.1")


def test_cache_hit_with_pruned_artifact_is_reexecuted(tmp_path):
    config = _topology()
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    first = Campaign([config], workers=0, cache=cache_root,
                     trace_dir=trace_root).run()[0]
    artifact = trace_root / f"{config.cache_key()}.jsonl"
    assert artifact.exists()
    artifact.unlink()

    rerun = Campaign([config], workers=0, cache=cache_root,
                     trace_dir=trace_root)
    result = rerun.run()[0]
    assert not result.cached and result.attempts == 1
    assert result.payload == first.payload
    assert artifact.exists()                        # regenerated
    assert rerun.metrics.trace_reruns == 1
    assert rerun.metrics.cache_hits == 0


def test_cache_hit_missing_numbered_sibling_is_reexecuted(tmp_path):
    config = RunConfig.of("two-sims")
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    Campaign([config], workers=0, cache=cache_root,
             trace_dir=trace_root).run()
    sibling = trace_root / f"{config.cache_key()}.jsonl.1"
    assert sibling.exists()
    sibling.unlink()

    rerun = Campaign([config], workers=0, cache=cache_root,
                     trace_dir=trace_root)
    result = rerun.run()[0]
    assert not result.cached
    assert sibling.exists()
    assert rerun.metrics.trace_reruns == 1


def test_untraced_cache_entry_is_retraced_when_artifacts_wanted(tmp_path):
    config = _topology()
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    untraced = Campaign([config], workers=0, cache=cache_root).run()[0]
    assert "trace" not in untraced.payload

    traced = Campaign([config], workers=0, cache=cache_root,
                      trace_dir=trace_root)
    result = traced.run()[0]
    assert not result.cached
    assert result.payload["trace"]
    assert (trace_root / f"{config.cache_key()}.jsonl").exists()
    assert traced.metrics.trace_reruns == 1

    # And without trace_dir the (now traced) entry is still a plain hit.
    plain = Campaign([config], workers=0, cache=cache_root).run()[0]
    assert plain.cached


def test_cache_hit_without_trace_dir_never_checks_artifacts(tmp_path):
    config = _topology()
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    Campaign([config], workers=0, cache=cache_root,
             trace_dir=trace_root).run()
    (trace_root / f"{config.cache_key()}.jsonl").unlink()
    hit = Campaign([config], workers=0, cache=cache_root).run()[0]
    assert hit.cached                   # no artifacts wanted, no re-run


# -- verify / gc lockstep --------------------------------------------------


def _seeded_dirs(tmp_path, count=3):
    configs = [_topology(f"g{i}", seed=i + 1) for i in range(count)]
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    Campaign(configs, workers=0, cache=cache_root,
             trace_dir=trace_root).run()
    return configs, ResultCache(cache_root), trace_root


def test_verify_flags_partial_and_orphan_artifacts(tmp_path):
    configs, cache, trace_root = _seeded_dirs(tmp_path)
    (trace_root / ("ff" * 32 + ".jsonl")).write_text("{}\n")      # orphan
    (trace_root / (configs[0].cache_key() + ".jsonl.partial")
     ).write_text("truncated")
    report = verify_cache(cache, trace_root)
    assert not report.ok
    assert len(report.orphan_artifacts) == 1
    assert len(report.partial_artifacts) == 1
    assert not report.invalid and not report.missing_artifacts


def test_gc_prune_sweeps_invalid_orphan_partial_only(tmp_path):
    configs, cache, trace_root = _seeded_dirs(tmp_path)
    corrupt_entry_file(cache, configs[0].cache_key())
    (trace_root / ("ff" * 32 + ".jsonl")).write_text("{}\n")
    (trace_root / (configs[1].cache_key() + ".jsonl.partial")
     ).write_text("truncated")

    report = gc_cache(cache, trace_root)       # no age/keep policy
    assert report.removed_entries == 1         # the corrupt one
    assert report.removed_artifacts == 2       # its artifact + the orphan
    assert report.removed_partials == 1
    assert report.kept_entries == 2
    assert verify_cache(cache, trace_root).ok  # coherent afterwards


def test_gc_keep_newest_removes_artifacts_in_lockstep(tmp_path):
    configs, cache, trace_root = _seeded_dirs(tmp_path, count=4)
    report = gc_cache(cache, trace_root, keep=1)
    assert report.removed_entries == 3
    assert report.removed_artifacts == 3
    assert len(cache) == 1
    remaining = [p for p in trace_root.iterdir()]
    assert len(remaining) == 1
    assert verify_cache(cache, trace_root).ok


def test_gc_older_than_uses_entry_creation_time(tmp_path):
    _configs, cache, trace_root = _seeded_dirs(tmp_path)
    future = time.time() + 1000.0
    dry = gc_cache(cache, trace_root, older_than_s=2000.0, now=future,
                   dry_run=True)
    assert dry.removed_entries == 0            # all newer than the cutoff
    assert len(cache) == 3
    wet = gc_cache(cache, trace_root, older_than_s=500.0, now=future)
    assert wet.removed_entries == 3 and wet.removed_artifacts == 3
    assert len(cache) == 0


def test_gc_dry_run_removes_nothing(tmp_path):
    _configs, cache, trace_root = _seeded_dirs(tmp_path)
    report = gc_cache(cache, trace_root, keep=0, dry_run=True)
    assert report.dry_run and report.removed_entries == 3
    assert len(cache) == 3
    assert verify_cache(cache, trace_root).ok


# -- acceptance: killed-mid-campaign convergence ---------------------------


def _sans_pointers(payload):
    """Payload minus the artifact pointers (they embed the trace dir)."""
    return {k: v for k, v in payload.items()
            if k not in ("trace", "trace_artifacts")}


def test_killed_mid_campaign_rerun_converges(tmp_path):
    configs = [_topology(f"k{i}", seed=i + 1) for i in range(4)]

    # Reference: one uninterrupted campaign in pristine dirs.
    ref_cache, ref_traces = tmp_path / "ref-cache", tmp_path / "ref-traces"
    reference = Campaign(configs, workers=0, cache=ref_cache,
                         trace_dir=ref_traces).run()
    ref_payloads = [_sans_pointers(r.payload) for r in reference]
    ref_artifacts = sorted(p.name for p in ref_traces.iterdir())

    # "Killed" campaign: only half the points landed, one entry was
    # torn by the kill, and one trace died mid-stream as a .partial.
    cache_root, trace_root = tmp_path / "cache", tmp_path / "traces"
    Campaign(configs[:2], workers=0, cache=cache_root,
             trace_dir=trace_root).run()
    survivor_cache = ResultCache(cache_root)
    corrupt_entry_file(survivor_cache, configs[1].cache_key())
    torn = trace_root / f"{configs[1].cache_key()}.jsonl"
    torn.rename(torn.with_name(torn.name + ".partial"))

    # Rerun the full sweep over the same dirs.
    rerun = Campaign(configs, workers=0, cache=cache_root,
                     trace_dir=trace_root)
    results = rerun.run()
    assert all(r.ok for r in results)
    assert [_sans_pointers(r.payload) for r in results] == ref_payloads
    assert results[0].cached                   # the intact point survived
    assert not results[1].cached               # the torn one re-ran

    # Sweep the kill's leftovers; then the state must be exactly the
    # uninterrupted state: same artifact set, zero invalid entries.
    gc_cache(survivor_cache, trace_root)
    report = verify_cache(survivor_cache, trace_root)
    assert report.ok and not report.invalid
    assert sorted(p.name for p in trace_root.iterdir()) == ref_artifacts

    # A final rerun is pure cache hits.
    final = Campaign(configs, workers=0, cache=cache_root,
                     trace_dir=trace_root)
    assert all(r.cached for r in final.run())
