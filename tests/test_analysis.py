"""Tests for repro.analysis — the model linter.

Each rule gets a minimal bad model that makes it fire and a fixed
version that keeps it silent.  Two cases are *real*, not synthetic:

* the lost-update race in ``tests/models/racy_model.py`` actually loses
  half its increments when simulated (RPR201), and the channel-mediated
  rewrite does not;
* the ``range()`` kernel in ``tests/models/kernels.py`` actually
  under-counts segment cost versus its ``arange`` twin (RPR301).
"""

import importlib.util
import inspect
import json
import pathlib

import pytest

from repro import SimTime, Simulator, wait
from repro.analysis import (
    RULES,
    Severity,
    analyze_file,
    analyze_process,
    analyze_source,
    build_static_graph,
    diff_graphs,
    diff_process,
    lint_paths,
    render_json,
    render_text,
    rule_catalog,
)
from repro.annotate import MODE_SW, CostContext, active, uniform_costs, unwrap
from repro.errors import ReproError
from repro.segments import SegmentTracker

REPO = pathlib.Path(__file__).resolve().parent.parent
MODELS = pathlib.Path(__file__).resolve().parent / "models"


def load_model(name):
    spec = importlib.util.spec_from_file_location(name, MODELS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def codes(result):
    return [d.code for d in result.sorted_diagnostics()]


# ---------------------------------------------------------------------------
# Diagnostics framework
# ---------------------------------------------------------------------------

class TestFramework:
    def test_rule_catalog_is_complete(self):
        assert set(RULES) == {
            "RPR001", "RPR101", "RPR102", "RPR103", "RPR104", "RPR105",
            "RPR201", "RPR202", "RPR203",
            "RPR301", "RPR302", "RPR303", "RPR401", "RPR402",
        }
        text = rule_catalog()
        for code in RULES:
            assert code in text

    def test_severities_order(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert str(Severity.ERROR) == "error"

    def test_parse_error_is_rpr001(self):
        result = analyze_source("def broken(:\n", "bad.py")
        assert codes(result) == ["RPR001"]
        assert not result.clean

    def test_noqa_suppresses_but_stays_auditable(self):
        source = (
            "def proc(self):\n"
            "    yield wait()  # repro: noqa[RPR101] -- event demo\n"
        )
        result = analyze_source(source, "m.py")
        assert result.clean
        assert [d.code for d in result.suppressed] == ["RPR101"]
        assert result.suppressed[0].suppress_reason == "event demo"
        payload = json.loads(render_json(result))
        assert payload["clean"] is True
        assert payload["suppressed"][0]["code"] == "RPR101"

    def test_noqa_only_hides_listed_codes(self):
        source = (
            "def proc(self):\n"
            "    yield wait()  # repro: noqa[RPR103]\n"
        )
        result = analyze_source(source, "m.py")
        assert codes(result) == ["RPR101"]

    def test_text_report_lists_location(self):
        result = analyze_source(
            "def proc(self):\n    yield wait()\n", "model.py")
        text = render_text(result)
        assert "model.py:2:" in text and "RPR101" in text

    def test_select_filters_rules(self):
        source = (
            "def proc(self):\n"
            "    yield wait()\n"
            "    self.out.write(1)\n"
        )
        result = analyze_source(source, "m.py", rules=["RPR103"])
        assert codes(result) == ["RPR103"]


# ---------------------------------------------------------------------------
# Protocol pass (RPR101..RPR105)
# ---------------------------------------------------------------------------

class TestProtocolPass:
    def test_untimed_wait_fires(self):
        bad = "def proc(self):\n    yield wait()\n"
        assert codes(analyze_source(bad)) == ["RPR101"]

    def test_timed_wait_is_silent(self):
        good = "def proc(self):\n    yield wait(SimTime.ns(10))\n"
        assert analyze_source(good).clean

    def test_literal_wait_duration_fires(self):
        bad = "def proc(self):\n    yield wait(10)\n"
        assert codes(analyze_source(bad)) == ["RPR102"]

    def test_unyielded_channel_op_fires(self):
        bad = (
            "def proc(self):\n"
            "    self.out.write(1)\n"
            "    yield wait(SimTime.ns(5))\n"
        )
        result = analyze_source(bad)
        assert codes(result) == ["RPR103"]
        assert "never driven" in result.diagnostics[0].message

    def test_plain_yield_channel_op_fires(self):
        bad = (
            "def proc(self):\n"
            "    value = yield self.inp.read()\n"
        )
        result = analyze_source(bad)
        assert codes(result) == ["RPR103"]
        assert "yield from" in result.diagnostics[0].message

    def test_yield_from_channel_op_is_silent(self):
        good = (
            "def proc(self):\n"
            "    value = yield from self.inp.read()\n"
            "    yield from self.out.write(value)\n"
        )
        assert analyze_source(good).clean

    def test_non_channel_target_fires(self):
        bad = (
            "def proc(self):\n"
            "    ch = 42\n"
            "    yield from ch.write(1)\n"
        )
        result = analyze_source(bad)
        assert codes(result) == ["RPR104"]
        assert "42" in result.diagnostics[0].message

    def test_aliased_channel_target_is_silent(self):
        good = (
            "def proc(self):\n"
            "    ch = self.out\n"
            "    yield from ch.write(1)\n"
        )
        assert analyze_source(good).clean

    def test_unreachable_after_infinite_loop_fires(self):
        bad = (
            "def proc(self):\n"
            "    while True:\n"
            "        yield from self.inp.read()\n"
            "    yield from self.out.write(0)\n"
        )
        assert codes(analyze_source(bad)) == ["RPR105"]

    def test_loop_with_break_is_silent(self):
        good = (
            "def proc(self):\n"
            "    while True:\n"
            "        value = yield from self.inp.read()\n"
            "        if value < 0:\n"
            "            break\n"
            "    yield from self.out.write(0)\n"
        )
        assert analyze_source(good).clean

    def test_non_process_functions_are_ignored(self):
        # a plain helper calling something named write() is not a process
        source = "def helper(buffer):\n    buffer.write(1)\n"
        assert analyze_source(source).clean


# ---------------------------------------------------------------------------
# Shared-state race pass (RPR201)
# ---------------------------------------------------------------------------

RACY = """
def build(simulator):
    top = simulator.module("top")
    shared = []

    def producer():
        shared.append(1)
        yield wait(SimTime.ns(1))

    def consumer():
        value = shared[0]
        yield wait(SimTime.ns(1))

    top.add_process(producer)
    top.add_process(consumer)
"""

FIXED = """
def build(simulator):
    top = simulator.module("top")
    link = simulator.fifo("link")

    def producer():
        yield from link.write(1)

    def consumer():
        value = yield from link.read()

    top.add_process(producer)
    top.add_process(consumer)
"""


class TestRacePass:
    def test_shared_state_fires(self):
        result = analyze_source(RACY, "racy.py")
        assert codes(result) == ["RPR201"]
        assert "'shared'" in result.diagnostics[0].message

    def test_channel_mediation_is_silent(self):
        assert analyze_source(FIXED, "fixed.py").clean

    def test_shared_read_only_data_is_silent(self):
        source = RACY.replace("shared.append(1)", "value = shared[0]")
        assert analyze_source(source, "ro.py").clean

    def test_real_race_loses_updates_and_lints_dirty(self):
        # the model really races: half the increments are lost
        model = load_model("racy_model")
        simulator = Simulator()
        stats = model.build(simulator)
        simulator.run()
        assert stats["count"] == model.ITERATIONS  # not 2 * ITERATIONS!
        result = analyze_file(MODELS / "racy_model.py")
        assert codes(result) == ["RPR201"]

    def test_channeled_rewrite_is_correct_and_clean(self):
        model = load_model("channeled_model")
        simulator = Simulator()
        totals = model.build(simulator)
        simulator.run()
        assert totals[-1] == 2 * model.ITERATIONS  # no update lost
        assert analyze_file(MODELS / "channeled_model.py").clean


# ---------------------------------------------------------------------------
# Annotation-coverage pass (RPR301..RPR303)
# ---------------------------------------------------------------------------

class TestAnnotationPass:
    def test_range_in_kernel_fires(self):
        bad = (
            "def kernel(n):\n"
            "    acc = aint(0)\n"
            "    for i in range(n):\n"
            "        acc = acc + i\n"
            "    return acc\n"
        )
        assert codes(analyze_source(bad)) == ["RPR301"]

    def test_arange_in_kernel_is_silent(self):
        good = (
            "def kernel(n):\n"
            "    acc = aint(0)\n"
            "    for i in arange(n):\n"
            "        acc = acc + i\n"
            "    return acc\n"
        )
        assert analyze_source(good).clean

    def test_uncharged_builtin_fires(self):
        bad = (
            "def kernel(values):\n"
            "    acc = aint(0)\n"
            "    return acc + sum(values)\n"
        )
        assert codes(analyze_source(bad)) == ["RPR302"]

    def test_int_conversion_in_loop_fires(self):
        bad = (
            "def kernel(values):\n"
            "    acc = aint(0)\n"
            "    for v in arange(8):\n"
            "        acc = acc + int(v)\n"
            "    return acc\n"
        )
        assert codes(analyze_source(bad)) == ["RPR303"]

    def test_annotation_wrapped_conversion_is_silent(self):
        good = (
            "def kernel(seed):\n"
            "    acc = aint(0)\n"
            "    for v in arange(8):\n"
            "        acc = acc + AInt(int(seed))\n"
            "    return acc\n"
        )
        assert analyze_source(good).clean

    def test_process_bodies_are_not_kernels(self):
        # structural range() loops in generator processes are fine
        source = (
            "def proc(self):\n"
            "    for _ in range(4):\n"
            "        yield from self.out.write(0)\n"
        )
        assert analyze_source(source).clean

    def test_real_bypass_undercounts_cost(self):
        kernels = load_model("kernels")
        bypass_ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(bypass_ctx):
            bypass_value = unwrap(kernels.poly_bypass(16))
        full_ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(full_ctx):
            full_value = unwrap(kernels.poly_annotated(16))
        assert bypass_value == full_value  # same result ...
        assert bypass_ctx.total_cycles < full_ctx.total_cycles  # ... cheaper
        result = analyze_file(MODELS / "kernels.py")
        assert codes(result) == ["RPR301"]
        assert result.diagnostics[0].line == inspect.getsource(
            kernels.poly_bypass).splitlines().index(
                "    for i in range(n):") + 13  # def starts at line 13


# ---------------------------------------------------------------------------
# Static segment graph + dynamic diff (RPR401/RPR402)
# ---------------------------------------------------------------------------

def make_design(values):
    simulator = Simulator()
    tracker = SegmentTracker()
    simulator.add_observer(tracker)
    ch1 = simulator.fifo("ch1")
    ch2 = simulator.fifo("ch2")
    top = simulator.module("top")

    def process():
        for _ in values:
            value = yield from ch1.read()
            if value % 2 == 0:
                yield from ch2.write(value)
            yield wait(SimTime.ns(10))

    def environment():
        for i in values:
            yield from ch1.write(i)
            if i % 2 == 0:
                yield from ch2.read()

    proc = top.add_process(process)
    top.add_process(environment)
    simulator.run()
    return proc, tracker, process


class TestGraphDiff:
    def test_static_graph_structure(self):
        _proc, _tracker, body = make_design([0, 1])
        graph = build_static_graph(body)
        details = sorted(site.detail for site in graph.sites)
        assert details == ["ch1.read", "ch2.write", "wait"]
        lines = {site.detail: site.lineno for site in graph.sites}
        # conditional write: reachable from the read, skippable to the wait
        assert (lines["ch1.read"], lines["ch2.write"]) in graph.arcs
        assert (lines["ch1.read"], lines["wait"]) in graph.arcs
        assert (lines["ch2.write"], lines["wait"]) in graph.arcs
        # loop back-arc and loop-skip arc
        assert (lines["wait"], lines["ch1.read"]) in graph.arcs
        assert (0, -1) in graph.arcs  # zero-iteration path entry -> exit

    def test_full_stimulus_visits_every_node(self):
        proc, tracker, _body = make_design([0, 1, 2, 3])
        diff = diff_process(proc, tracker)
        assert diff.complete
        assert not diff.unpredicted

    def test_missed_branch_is_reported(self):
        proc, tracker, body = make_design([1, 3, 5])  # write branch never taken
        diff = diff_process(proc, tracker)
        assert not diff.complete
        assert [site.detail for site in diff.never_visited] == ["ch2.write"]
        diagnostics = diff.to_diagnostics("design.py")
        assert "RPR401" in [d.code for d in diagnostics]
        assert "MISSED" in diff.describe()

    def test_dead_segment_is_reported(self):
        proc, tracker, _body = make_design([0, 2, 4])  # loop always iterates
        diff = diff_process(proc, tracker)
        # the zero-iteration entry->exit arc exists statically, never ran
        assert (0, -1) in diff.dead_arcs
        assert "RPR402" in [d.code for d in diff.to_diagnostics()]

    def test_diff_graphs_direct(self):
        proc, tracker, body = make_design([0, 1, 2, 3])
        static = build_static_graph(body)
        diff = diff_graphs(static, tracker.graph_of(proc.full_name))
        assert diff.complete

    def test_static_graph_to_dot(self):
        _proc, _tracker, body = make_design([0])
        dot = build_static_graph(body).to_dot()
        assert dot.startswith("digraph") and "->" in dot

    def test_process_without_body_hook_raises(self):
        class Stub:
            full_name = "top.stub"
            body = None
        with pytest.raises(ReproError):
            diff_process(Stub(), SegmentTracker())


# ---------------------------------------------------------------------------
# Engine entry points
# ---------------------------------------------------------------------------

class TestEngine:
    def test_analyze_process_maps_lines_to_file(self):
        def bad_proc():
            yield wait()  # noqa site (deliberately untimed)

        result = analyze_process(bad_proc)
        assert codes(result) == ["RPR101"]
        expected = inspect.getsourcelines(bad_proc)[1] + 1
        assert result.diagnostics[0].line == expected
        assert result.diagnostics[0].path.endswith("test_analysis.py")

    def test_lint_paths_rejects_missing_target(self):
        with pytest.raises(ReproError):
            lint_paths(["no/such/path"])

    def test_lint_paths_walks_directories(self):
        result = lint_paths([MODELS])
        assert "RPR201" in codes(result)
        assert any(path.endswith("racy_model.py") for path in result.files)

    def test_workloads_and_examples_are_clean(self):
        result = lint_paths([REPO / "src" / "repro" / "workloads",
                             REPO / "examples"])
        assert result.clean, render_text(result)
        assert len(result.files) >= 16  # ten workloads + six examples


class TestEntryPointRegistry:
    """Satellite: registry-announced kernels need no in-body markers."""

    def test_registry_names_cover_the_benchmark_inventory(self):
        from repro.workloads import entry_point_names, registry

        names = entry_point_names()
        for functions, _make_args in registry().values():
            for fn in functions:
                assert fn.__name__ in names

    def test_registry_named_kernel_is_linted_without_markers(self):
        # `fir_filter` is a registry name; a native-typed body with a
        # plain range() loop must fire RPR301 even with no aint/arange
        # markers to trip the kernel scan.
        bad = (
            "def fir_filter(x, h, y, n, taps):\n"
            "    check = 0\n"
            "    for i in range(n):\n"
            "        check = check + x[i]\n"
            "    return check\n"
        )
        assert "RPR301" in codes(analyze_source(bad))

    def test_unregistered_plain_function_stays_invisible(self):
        plain = (
            "def helper(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        assert analyze_source(plain).clean

    def test_register_kernel_entry_point_hook(self):
        import repro.workloads as workloads

        source = (
            "def my_custom_kernel(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        assert analyze_source(source).clean
        workloads.register_kernel_entry_point("my_custom_kernel")
        try:
            assert "RPR301" in codes(analyze_source(source))
        finally:
            workloads._EXTRA_ENTRY_POINTS.discard("my_custom_kernel")


class TestLiveLint:
    def test_lint_simulation_merges_static_and_graph_diff(self):
        from repro import Simulator
        from repro.analysis import lint_simulation

        model = load_model("channeled_model")
        simulator = Simulator()
        tracker = SegmentTracker()
        simulator.add_observer(tracker)
        model.build(simulator)
        simulator.run()
        skipped = []
        result = lint_simulation(simulator, tracker, skipped=skipped)
        assert not skipped
        assert result.files
        # The fixed model lints clean statically; only info-level
        # graph-diff notes may remain.
        assert all(str(d.severity) == "info" for d in result.diagnostics)

    def test_rule_selection_applies_to_graph_diff_rules(self):
        from repro import Simulator
        from repro.analysis import lint_simulation

        model = load_model("channeled_model")
        simulator = Simulator()
        tracker = SegmentTracker()
        simulator.add_observer(tracker)
        model.build(simulator)
        simulator.run()
        result = lint_simulation(simulator, tracker, rules=["RPR101"])
        assert all(d.code == "RPR101" for d in result.diagnostics)
