"""Platform model tests: resources, arbitration protocol, RTOS, mapping."""

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import OperationCosts, uniform_costs
from repro.errors import AnnotationError, MappingError
from repro.kernel import Clock
from repro.kernel.process import Process
from repro.platform import (
    ASIC_HW_COSTS,
    EnvironmentResource,
    Mapping,
    NULL_RTOS,
    OPENRISC_SW_COSTS,
    ParallelResource,
    RtosModel,
    SequentialResource,
    make_cpu,
    make_fabric,
)


def _dummy_process(name: str, priority: int = 0) -> Process:
    def body():
        yield wait(SimTime.ns(1))
    return Process(name, body(), priority=priority)


class TestCostTables:
    def test_default_tables_are_complete(self):
        for table in (OPENRISC_SW_COSTS, ASIC_HW_COSTS):
            for op in ("add", "mul", "div", "load", "store", "call"):
                assert table.get(op) >= 0

    def test_unknown_operation_rejected(self):
        with pytest.raises(AnnotationError, match="unknown operation"):
            OperationCosts({"teleport": 1.0})

    def test_negative_cost_rejected(self):
        with pytest.raises(AnnotationError, match="negative"):
            OperationCosts({"add": -1.0})

    def test_merged_overrides(self):
        merged = OPENRISC_SW_COSTS.merged({"add": 99.0}, name="patched")
        assert merged.get("add") == 99.0
        assert merged.get("mul") == OPENRISC_SW_COSTS.get("mul")
        assert OPENRISC_SW_COSTS.get("add") != 99.0  # original untouched

    def test_contains(self):
        assert "add" in OPENRISC_SW_COSTS
        assert "fft" not in OPENRISC_SW_COSTS


class TestSequentialResource:
    def _cpu(self, policy="fifo"):
        return SequentialResource("cpu", Clock.from_frequency_mhz(100.0),
                                  uniform_costs(), policy=policy)

    def test_free_resource_grants_immediately(self):
        cpu = self._cpu()
        process = _dummy_process("p")
        assert cpu.may_run(process, SimTime(0))

    def test_occupy_advances_free_time_and_busy(self):
        cpu = self._cpu()
        process = _dummy_process("p")
        completion = cpu.occupy(process, SimTime.ns(10), SimTime.ns(30))
        assert completion == SimTime.ns(40)
        assert cpu.free_at == SimTime.ns(40)
        assert cpu.busy_time == SimTime.ns(30)
        assert not cpu.may_run(process, SimTime.ns(20))
        assert cpu.may_run(process, SimTime.ns(40))

    def test_expected_wait_while_busy(self):
        cpu = self._cpu()
        p1, p2 = _dummy_process("a"), _dummy_process("b")
        cpu.occupy(p1, SimTime(0), SimTime.ns(50))
        assert cpu.expected_wait(p2, SimTime.ns(20)) == SimTime.ns(30)

    def test_fifo_policy_grants_in_arrival_order(self):
        cpu = self._cpu()
        p1, p2 = _dummy_process("a"), _dummy_process("b")
        p1.pid, p2.pid = 0, 1
        cpu.enqueue(p1, SimTime.ns(10))
        cpu.enqueue(p2, SimTime.ns(10))
        now = SimTime(0)
        assert cpu.may_run(p1, now)
        assert not cpu.may_run(p2, now)
        # the loser waits out the head's announced duration
        assert cpu.expected_wait(p2, now) == SimTime.ns(10)

    def test_priority_policy_grants_most_urgent(self):
        cpu = self._cpu(policy="priority")
        low = _dummy_process("low", priority=5)
        high = _dummy_process("high", priority=1)
        low.pid, high.pid = 0, 1
        cpu.enqueue(low, SimTime.ns(10))
        cpu.enqueue(high, SimTime.ns(10))
        assert cpu.may_run(high, SimTime(0))
        assert not cpu.may_run(low, SimTime(0))

    def test_context_switches_counted(self):
        cpu = self._cpu()
        p1, p2 = _dummy_process("a"), _dummy_process("b")
        cpu.occupy(p1, SimTime(0), SimTime.ns(1))
        cpu.occupy(p1, SimTime.ns(1), SimTime.ns(1))
        cpu.occupy(p2, SimTime.ns(2), SimTime.ns(1))
        assert cpu.context_switches == 1
        assert cpu.last_process is p2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            self._cpu(policy="round-robin")

    def test_zero_length_head_waits_one_tick(self):
        cpu = self._cpu()
        p1, p2 = _dummy_process("a"), _dummy_process("b")
        p1.pid, p2.pid = 0, 1
        cpu.enqueue(p1, SimTime(0))
        cpu.enqueue(p2, SimTime.ns(5))
        assert cpu.expected_wait(p2, SimTime(0)) == cpu.clock.period


class TestParallelResource:
    def test_k_factor_bounds(self):
        make_fabric(k_factor=0.0)
        make_fabric(k_factor=1.0)
        with pytest.raises(ValueError):
            ParallelResource("hw", Clock.from_frequency_mhz(100.0),
                             uniform_costs(), k_factor=1.5)


class TestRtos:
    def test_node_cycles_by_kind(self):
        rtos = RtosModel("r", channel_access_cycles=10.0, wait_cycles=5.0,
                         context_switch_cycles=20.0)
        assert rtos.node_cycles("channel") == 10.0
        assert rtos.node_cycles("wait") == 5.0
        assert rtos.node_cycles("exit") == 0.0

    def test_null_rtos_is_free(self):
        assert NULL_RTOS.node_cycles("channel") == 0.0
        assert NULL_RTOS.context_switch_cycles == 0.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            RtosModel("bad", channel_access_cycles=-1.0)


class TestMapping:
    def test_assign_and_lookup(self):
        mapping = Mapping()
        cpu = make_cpu()
        process = _dummy_process("p")
        mapping.assign(process, cpu)
        assert mapping.resource_of(process) is cpu
        assert mapping.is_mapped(process)
        assert mapping.processes_on(cpu) == ["p"]

    def test_remapping_rejected(self):
        mapping = Mapping()
        process = _dummy_process("p")
        mapping.assign(process, make_cpu())
        with pytest.raises(MappingError, match="already mapped"):
            mapping.assign(process, make_fabric())

    def test_unmapped_lookup_raises(self):
        with pytest.raises(MappingError, match="not mapped"):
            Mapping().resource_of("ghost")

    def test_mapping_to_non_resource_rejected(self):
        with pytest.raises(MappingError, match="not a Resource"):
            Mapping().assign(_dummy_process("p"), "the-cloud")

    def test_validate_flags_missing(self):
        mapping = Mapping()
        p1, p2 = _dummy_process("a"), _dummy_process("b")
        mapping.assign(p1, make_cpu())
        with pytest.raises(MappingError, match="unmapped"):
            mapping.validate([p1, p2])

    def test_assign_all_and_resources(self):
        mapping = Mapping()
        cpu = make_cpu()
        processes = [_dummy_process(n) for n in "abc"]
        mapping.assign_all(processes, cpu)
        assert len(mapping) == 3
        assert mapping.resources() == [cpu]

    def test_describe_mentions_environment(self):
        mapping = Mapping()
        mapping.assign(_dummy_process("tb"), EnvironmentResource("env"))
        assert "(env)" in mapping.describe()
