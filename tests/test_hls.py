"""Behavioral-synthesis substrate tests: DFG capture and scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate import AArray, AInt, uniform_costs
from repro.errors import SynthesisError
from repro.hls import (
    Allocation,
    DataflowGraph,
    DfgNode,
    UNIVERSAL_FU,
    alap,
    asap,
    capture_dfg,
    explore_design_space,
    fu_class,
    list_schedule,
    pareto_front,
    synthesize_best_case,
    synthesize_worst_case,
)
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS


def _chain_graph(lengths):
    """A linear dependence chain with the given latencies."""
    graph = DataflowGraph()
    previous = ()
    for i, latency in enumerate(lengths):
        graph.add(DfgNode(i, "add", latency, float(latency), previous))
        previous = (i,)
    return graph


def _parallel_graph(count, latency=1):
    graph = DataflowGraph()
    for i in range(count):
        graph.add(DfgNode(i, "add", latency, float(latency), ()))
    return graph


def _balanced_tree(leaves=4):
    """leaves constants reduced pairwise: depth log2(leaves)."""
    graph = DataflowGraph()
    node_id = 0
    frontier = []
    for _ in range(leaves):
        graph.add(DfgNode(node_id, "load", 1, 1.0, ()))
        frontier.append(node_id)
        node_id += 1
    while len(frontier) > 1:
        next_level = []
        for a, b in zip(frontier[::2], frontier[1::2]):
            graph.add(DfgNode(node_id, "add", 1, 1.0, (a, b)))
            next_level.append(node_id)
            node_id += 1
        frontier = next_level
    return graph


class TestCapture:
    def test_capture_simple_expression(self):
        def segment(a, b):
            return a * b + 1

        graph = capture_dfg(segment, (AInt(3), AInt(4)), ASIC_HW_COSTS)
        ops = graph.operations_used()
        assert ops == {"mul": 1, "add": 1}

    def test_capture_tracks_dependencies(self):
        def segment(a, b):
            return (a + b) * (a - b)

        graph = capture_dfg(segment, (AInt(5), AInt(2)), ASIC_HW_COSTS)
        mul_node = next(n for n in graph.nodes if n.operation == "mul")
        assert len(mul_node.predecessors) == 2

    def test_capture_through_arrays(self):
        def segment(a):
            a[0] = a[1] + a[2]
            return a[0]

        graph = capture_dfg(segment, (AArray([0, 1, 2]),), ASIC_HW_COSTS)
        ops = graph.operations_used()
        assert ops["load"] == 3 and ops["store"] == 1 and ops["add"] == 1
        # the final load depends on the store through the memory slot
        final_load = graph.nodes[-1]
        assert final_load.operation == "load"
        assert final_load.predecessors, "write->read dependency lost"

    def test_empty_capture_rejected(self):
        def segment(a):
            return a

        with pytest.raises(SynthesisError, match="no operations"):
            capture_dfg(segment, (AInt(1),), ASIC_HW_COSTS)

    def test_zero_latency_ops_skipped(self):
        from repro.annotate import Var

        def segment(a):
            v = Var(0)
            v.assign(a + 1)        # assign has zero HW latency
            return v.get()

        graph = capture_dfg(segment, (AInt(1),), ASIC_HW_COSTS)
        assert "assign" not in graph.operations_used()


class TestSchedules:
    def test_asap_chain(self):
        graph = _chain_graph([1, 2, 3])
        schedule = asap(graph)
        assert schedule.makespan == 6
        assert schedule.start == {0: 0, 1: 1, 2: 3}

    def test_asap_parallel(self):
        schedule = asap(_parallel_graph(5))
        assert schedule.makespan == 1
        assert schedule.peak_usage["alu"] == 5

    def test_alap_respects_deadline(self):
        graph = _chain_graph([1, 1])
        schedule = alap(graph, deadline=5)
        assert schedule.finish[1] == 5
        assert schedule.start[0] == 3

    def test_alap_infeasible_deadline(self):
        with pytest.raises(SynthesisError, match="infeasible"):
            alap(_chain_graph([2, 2]), deadline=3)

    def test_single_unit_serializes(self):
        graph = _parallel_graph(6)
        schedule = list_schedule(graph, {"alu": 1})
        assert schedule.makespan == 6

    def test_two_units_halve_time(self):
        graph = _parallel_graph(6)
        schedule = list_schedule(graph, {"alu": 2})
        assert schedule.makespan == 3

    def test_list_schedule_missing_units_rejected(self):
        with pytest.raises(SynthesisError, match="no 'alu' units"):
            list_schedule(_parallel_graph(2), {"mul": 1})

    def test_empty_graph_rejected(self):
        with pytest.raises(SynthesisError, match="empty"):
            list_schedule(DataflowGraph(), {"alu": 1})

    def test_schedule_verifies_dependences(self):
        graph = _balanced_tree(8)
        for schedule in (asap(graph), list_schedule(graph, {"alu": 2, "mem": 2})):
            schedule.verify(graph)

    @given(st.lists(st.integers(min_value=1, max_value=4),
                    min_size=1, max_size=12),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_resource_constrained_bounds(self, latencies, units):
        """Invariant: ASAP <= list schedule <= serialized sum."""
        graph = _chain_graph(latencies)
        lower = asap(graph).makespan
        upper = graph.total_latency()
        constrained = list_schedule(graph, {"alu": units}).makespan
        assert lower <= constrained <= upper
        list_schedule(graph, {"alu": units}).verify(graph)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_more_units_never_slower(self, jobs, units):
        graph = _parallel_graph(jobs, latency=2)
        fewer = list_schedule(graph, {"alu": units}).makespan
        more = list_schedule(graph, {"alu": units + 1}).makespan
        assert more <= fewer


class TestSynthesisFacade:
    def test_worst_case_is_total_latency(self):
        graph = _balanced_tree(8)
        clock = Clock.from_frequency_mhz(100.0)
        worst = synthesize_worst_case(graph, clock)
        assert worst.latency_cycles == graph.total_latency()

    def test_best_case_is_critical_path(self):
        graph = _balanced_tree(8)
        clock = Clock.from_frequency_mhz(100.0)
        best = synthesize_best_case(graph, clock)
        assert best.latency_cycles == graph.critical_path()
        assert best.latency_cycles <= synthesize_worst_case(graph, clock).latency_cycles

    def test_exec_time_uses_clock(self):
        graph = _chain_graph([3])
        clock = Clock.from_frequency_mhz(100.0)
        best = synthesize_best_case(graph, clock)
        assert best.exec_time_ns == 30.0

    def test_universal_fu_class(self):
        assert fu_class("mul", universal=True) == UNIVERSAL_FU
        assert fu_class("mul") == "mul"
        with pytest.raises(SynthesisError):
            fu_class("teleport")


class TestAllocation:
    def test_area_model(self):
        allocation = Allocation.of({"alu": 2, "mul": 1})
        assert allocation.area == 2 * 1.0 + 8.0

    def test_bad_allocation_rejected(self):
        with pytest.raises(SynthesisError):
            Allocation.of({"warp-core": 1})
        with pytest.raises(SynthesisError):
            Allocation.of({"alu": -1})

    def test_design_space_and_pareto(self):
        graph = _balanced_tree(8)
        points = explore_design_space(graph, max_units_per_class=3)
        front = pareto_front(points)
        assert front, "frontier must not be empty"
        latencies = [p.latency_cycles for p in front]
        areas = [p.area for p in front]
        assert latencies == sorted(latencies, reverse=True)
        assert areas == sorted(areas)
        # every point is dominated by or on the frontier
        for point in points:
            assert any(f.area <= point.area
                       and f.latency_cycles <= point.latency_cycles
                       for f in front)


class TestPipelinedUnits:
    def test_pipelined_multiplier_throughput(self):
        """8 independent 3-cycle ops on 1 pipelined unit: start one per
        cycle, last result at 7 + 3 = 10; non-pipelined takes 24."""
        graph = _parallel_graph(8, latency=3)
        plain = list_schedule(graph, {"alu": 1})
        piped = list_schedule(graph, {"alu": 1}, pipelined=True)
        assert plain.makespan == 24
        assert piped.makespan == 10
        piped.verify(graph)

    def test_pipelining_cannot_beat_critical_path(self):
        graph = _chain_graph([3, 3, 3])   # pure dependence chain
        piped = list_schedule(graph, {"alu": 1}, pipelined=True)
        assert piped.makespan == graph.critical_path() == 9

    def test_pipelined_never_slower(self):
        graph = _balanced_tree(8)
        for allocation in ({"alu": 1, "mem": 1}, {"alu": 2, "mem": 2}):
            plain = list_schedule(graph, allocation)
            piped = list_schedule(graph, allocation, pipelined=True)
            assert piped.makespan <= plain.makespan
            piped.verify(graph)

    @given(st.lists(st.integers(min_value=1, max_value=4),
                    min_size=1, max_size=10),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_pipelined_bounds_property(self, latencies, units):
        graph = _chain_graph(latencies)
        piped = list_schedule(graph, {"alu": units}, pipelined=True)
        piped.verify(graph)
        assert piped.makespan >= graph.critical_path()
        assert piped.makespan <= graph.total_latency()
