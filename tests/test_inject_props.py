"""Faultload property suite (hypothesis): the (spec, seed) contract.

The dependability analyzer is only trustworthy if the faultload layer
underneath it is a pure function: the same ``(spec, seed)`` must
expand to byte-identical schedules wherever it is evaluated (the cache
keys and the golden report depend on it), different seeds must produce
structurally disjoint schedules (so sweeps never silently re-test the
same fault), and every generated injection must stay inside the fault
model it was drawn from.  A final non-hypothesis test expands the same
spec on freshly spawned campaign workers and compares hashes — the
cross-interpreter half of the determinism claim.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.batch.campaign import Campaign
from repro.batch.config import RunConfig
from repro.inject import (
    CHANNEL_KINDS,
    DEFAULT_KINDS,
    FaultSpec,
    Faultload,
    PROCESS_KINDS,
    SEGMENT_KINDS,
    generate_faultload,
    merged_windows,
)
from repro.inject.faultload import FS_PER_NS

_CHANNELS = ("ch.write", "ch.read", "out.write")
_PROCESSES = ("top.worker", "top.dut")

seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


@st.composite
def specs(draw):
    """Random-but-valid fault specs over a fixed structural universe."""
    kinds = tuple(draw(st.sets(st.sampled_from(DEFAULT_KINDS), min_size=1)))
    horizon_ns = draw(st.integers(min_value=2, max_value=100_000))
    window_ns = draw(st.integers(min_value=1, max_value=horizon_ns))
    delay_min = draw(st.integers(min_value=1, max_value=100))
    return FaultSpec(
        count=draw(st.integers(min_value=0, max_value=12)),
        kinds=kinds,
        channels=_CHANNELS,
        processes=_PROCESSES,
        horizon_ns=horizon_ns,
        window_ns=window_ns,
        max_ordinal=draw(st.integers(min_value=1, max_value=6)),
        bits=draw(st.integers(min_value=1, max_value=32)),
        delay_min_ns=delay_min,
        delay_max_ns=draw(st.integers(min_value=delay_min, max_value=500)),
    )


@given(specs(), seeds)
@settings(max_examples=80, deadline=None)
def test_same_spec_and_seed_expand_byte_identically(spec, seed):
    """In-process determinism: two expansions are byte-for-byte equal."""
    one = generate_faultload(spec, seed)
    two = generate_faultload(spec, seed)
    assert one.as_dict() == two.as_dict()
    assert one.hash() == two.hash()
    # ... and the schedule survives a serialization round-trip intact.
    assert Faultload.from_dict(one.as_dict()) == one


@given(specs(), seeds, seeds)
@settings(max_examples=60, deadline=None)
def test_distinct_seeds_produce_disjoint_schedules(spec, seed_a, seed_b):
    """No injection of one seed's schedule appears in another's."""
    if seed_a == seed_b:
        return
    load_a = generate_faultload(spec, seed_a)
    load_b = generate_faultload(spec, seed_b)

    def keys(load):
        return {json.dumps(inj.as_dict(), sort_keys=True)
                for inj in load.injections}

    keys_a, keys_b = keys(load_a), keys(load_b)
    assert not (keys_a & keys_b)
    if spec.count:
        assert load_a.hash() != load_b.hash()


@given(specs(), seeds)
@settings(max_examples=80, deadline=None)
def test_every_injection_stays_inside_the_fault_model(spec, seed):
    load = generate_faultload(spec, seed)
    assert len(load.injections) == spec.count
    horizon_fs = spec.horizon_ns * FS_PER_NS
    window_fs = spec.window_ns * FS_PER_NS
    for injection in load.injections:
        start, end = injection.window_fs
        assert end - start == window_fs
        assert 0 <= start < max(1, horizon_fs - window_fs)
        assert 0 <= injection.ordinal < spec.max_ordinal
        assert injection.kind in spec.kinds
        assert injection.seed == seed
        scheme, _, address = injection.target.partition(":")
        if injection.kind in CHANNEL_KINDS:
            assert scheme == "channel" and address in spec.channels
        elif injection.kind in SEGMENT_KINDS:
            assert scheme == "segment" and address in spec.processes
        else:
            assert injection.kind in PROCESS_KINDS
            assert scheme == "process" and address in spec.processes
        if injection.kind == "payload-bitflip":
            assert 0 <= injection.argument < spec.bits
        elif injection.kind == "payload-value":
            assert 0 <= injection.argument < (1 << spec.bits)
        elif injection.kind == "segment-time":
            assert spec.scale_min_ppm <= injection.argument < spec.scale_max_ppm
        elif injection.kind == "event-delay":
            assert (spec.delay_min_ns * FS_PER_NS <= injection.argument
                    <= spec.delay_max_ns * FS_PER_NS)
        else:
            assert injection.argument == 0


@given(specs(), seeds)
@settings(max_examples=60, deadline=None)
def test_merged_windows_cover_and_never_overlap(spec, seed):
    load = generate_faultload(spec, seed)
    merged = merged_windows(load.injections)
    for (a_start, a_end), (b_start, b_end) in zip(merged, merged[1:]):
        assert a_start <= a_end
        assert a_end < b_start      # sorted, gap between merged spans
    for injection in load.injections:
        start, end = injection.window_fs
        assert any(m_start <= start and end <= m_end
                   for m_start, m_end in merged)


def test_faultload_expansion_matches_on_spawned_workers():
    """Cross-interpreter determinism: spawn-pool workers expand the
    same (spec, seed) to the same hash and schedule the local
    interpreter computes — the property the campaign cache keys and
    the golden dependability report rely on."""
    spec = FaultSpec(count=8, channels=_CHANNELS, processes=_PROCESSES,
                     horizon_ns=5_000, window_ns=700)
    local = generate_faultload(spec, 42)
    configs = [
        RunConfig.of("faultload", "fl-a", spec=spec.as_dict(), seed=42),
        RunConfig.of("faultload", "fl-b", spec=spec.as_dict(), seed=42,
                     replica=1),
    ]
    results = Campaign(configs, workers=2, cache=None).run()
    assert all(result.ok for result in results)
    for result in results:
        assert result.payload["hash"] == local.hash()
        assert result.payload["faultload"] == local.as_dict()
