"""A racy model where shared state escapes through aliases.

``worker_a`` mutates the shared dict through an alias *returned* by a
helper (``buf = shared_buffer(stats)``); ``worker_b`` hands the dict to
a helper that mutates its *argument*.  Neither body writes the name
``stats`` itself, so the per-body scan is blind; the effect summaries
track both escape routes and `repro lint` flags RPR203
(aliased-shared-state-escape).
"""

from repro import SimTime, wait

ITERATIONS = 3


def bump(counters):
    counters["count"] = counters["count"] + 1


def shared_buffer(store):
    return store


def build(simulator):
    top = simulator.module("top")
    stats = {"count": 0}

    def worker_a():
        for _ in range(ITERATIONS):
            buf = shared_buffer(stats)
            seen = buf["count"]
            yield wait(SimTime.ns(10))
            buf["count"] = seen + 1

    def worker_b():
        for _ in range(ITERATIONS):
            yield wait(SimTime.ns(10))
            bump(stats)

    top.add_process(worker_a)
    top.add_process(worker_b)
    return stats
