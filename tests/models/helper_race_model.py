"""A cross-function racy model: the shared write hides in helpers.

Same lost-update cycle as :mod:`tests.models.racy_model`, but neither
worker touches ``stats`` directly — they go through ``fetch()`` and
``publish()``.  A name-based per-body scan sees nothing; the
interprocedural effect summaries propagate the helper's write back to
each caller, so `repro lint` flags this as RPR202 (race-via-helper).

The channel-mediated rewrite is :mod:`tests.models.helper_clean_model`.
"""

from repro import SimTime, wait

ITERATIONS = 3


def build(simulator):
    top = simulator.module("top")
    stats = {"count": 0}

    def fetch():
        return stats["count"]

    def publish(value):
        stats["count"] = value

    def worker_a():
        for _ in range(ITERATIONS):
            seen = fetch()
            yield wait(SimTime.ns(10))
            publish(seen + 1)

    def worker_b():
        for _ in range(ITERATIONS):
            seen = fetch()
            yield wait(SimTime.ns(10))
            publish(seen + 1)

    top.add_process(worker_a)
    top.add_process(worker_b)
    return stats
