"""Sibling-module helpers called across the file boundary."""


def scale(value):
    """Pure, charge-free on plain ints: a zero-verdict helper."""
    return value * 2
