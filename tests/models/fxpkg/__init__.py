"""Two-module fixture: a stage whose helper arrives through a
function-local import of a sibling module (the cross-file idiom the
effect analyzer must resolve without falling back to opaque)."""
