"""A process body using the function-local cross-file import idiom.

The helper is imported *inside* the generator, so it is invisible in
``__globals__`` and in the closure cells — only the analyzer's
same-package import resolution can classify the call.
"""

from repro import SimTime, wait


def make_body():
    def body():
        from fxpkg.helpers import scale
        total = 0
        yield wait(SimTime.ns(1))
        total = total + scale(3)
        yield wait(SimTime.ns(2))
    return body
