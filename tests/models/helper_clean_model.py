"""The clean control for the interprocedural race fixtures.

Both processes call a helper, but the helper is pure (no free-state
writes, no aliases escaping) and all cross-process state flows through
a fifo.  The effect summaries prove the helpers harmless, so `repro
lint` reports nothing — helper calls alone must never trip RPR202/203.
"""

from repro import SimTime, wait

ITERATIONS = 3


def next_value(current, step):
    return current + step


def build(simulator):
    top = simulator.module("top")
    ticks = simulator.fifo("ticks")
    totals = []

    def worker():
        value = 0
        for _ in range(ITERATIONS):
            value = next_value(value, 1)
            yield wait(SimTime.ns(10))
            yield from ticks.write(value)

    def collector():
        for _ in range(ITERATIONS):
            value = yield from ticks.read()
            totals.append(next_value(value, 0))

    top.add_process(worker)
    top.add_process(collector)
    return totals
