"""The fixed rewrite of :mod:`tests.models.racy_model`.

The shared counter becomes a single-writer accumulator process fed by a
fifo: workers emit increments as messages, one process owns the state.
No update can be lost and `repro lint` reports nothing.
"""

from repro import SimTime, wait

ITERATIONS = 3


def build(simulator):
    top = simulator.module("top")
    ticks = simulator.fifo("ticks")
    totals = []

    def worker_a():
        for _ in range(ITERATIONS):
            yield wait(SimTime.ns(10))
            yield from ticks.write(1)

    def worker_b():
        for _ in range(ITERATIONS):
            yield wait(SimTime.ns(10))
            yield from ticks.write(1)

    def accumulator():
        count = 0
        for _ in range(2 * ITERATIONS):
            count += yield from ticks.read()
            totals.append(count)

    top.add_process(worker_a)
    top.add_process(worker_b)
    top.add_process(accumulator)
    return totals
