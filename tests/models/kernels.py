"""Annotation-bypass fixture kernels for the model-lint tests.

``poly_bypass`` iterates with native ``range()``, so the per-iteration
loop bookkeeping (add + branch) is never charged to the cost context —
a real under-count of the segment cost.  ``poly_annotated`` is the same
computation through ``arange`` and charges fully.  `repro lint` flags
the bypass (RPR301) and stays silent on the annotated version.
"""

from repro.annotate import aint, arange


def poly_bypass(n):
    acc = aint(0)
    for i in range(n):
        acc = acc + i
    return acc


def poly_annotated(n):
    acc = aint(0)
    for i in arange(n):
        acc = acc + i
    return acc
