"""Stable two-process model behind the observability golden files.

Deliberately tiny and fully deterministic: a producer pushes a few
values through a capacity-2 fifo with a 10 ns gap, a consumer drains
them.  The golden Perfetto/VCD exports in ``tests/golden/`` are
rendered from this build — everything they contain (process names,
channel names, node details, timestamps) is position-independent, so
editing unrelated code must not invalidate them.

Run directly, it simulates once and prints the consumed values — which
also makes it a target for ``repro trace`` / ``repro lint --live``.
"""

from repro import SimTime, Simulator, wait

MESSAGES = 3
GAP_NS = 10


def build(simulator):
    """Attach the producer/consumer pair; returns the consumed-values list."""
    top = simulator.module("top")
    link = simulator.fifo("link", capacity=2)
    consumed = []

    def producer():
        for i in range(MESSAGES):
            yield from link.write(i * 7 + 1)
            yield wait(SimTime.ns(GAP_NS))

    def consumer():
        for _ in range(MESSAGES):
            value = yield from link.read()
            consumed.append(value)

    top.add_process(producer)
    top.add_process(consumer)
    return consumed


def main():
    simulator = Simulator()
    consumed = build(simulator)
    final = simulator.run()
    print(f"consumed {consumed} by {final}")
    return consumed


if __name__ == "__main__":
    main()
