"""A genuinely racy model: two processes share a plain Python dict.

Each worker does a read/wait/write cycle on ``stats["count"]`` — the
classic lost-update race.  Both workers read the same value at the same
instant, so half the increments vanish.  `repro lint` flags this as
RPR201 (shared-state-race): under the paper's §2 contract processes may
interact only through predefined channels.

The channel-mediated rewrite is :mod:`tests.models.channeled_model`.
"""

from repro import SimTime, wait

ITERATIONS = 3


def build(simulator):
    top = simulator.module("top")
    stats = {"count": 0}

    def worker_a():
        for _ in range(ITERATIONS):
            current = stats["count"]
            yield wait(SimTime.ns(10))
            stats["count"] = current + 1

    def worker_b():
        for _ in range(ITERATIONS):
            current = stats["count"]
            yield wait(SimTime.ns(10))
            stats["count"] = current + 1

    top.add_process(worker_a)
    top.add_process(worker_b)
    return stats
