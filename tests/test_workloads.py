"""Workload kernel tests: single-source equivalence across all backends.

For every Table 1/2 kernel: plain run == annotated run == compiled run,
plus functional correctness against independent references.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate import CostContext, MODE_SW, active, uniform_costs
from repro.iss import run_compiled
from repro.workloads import lcg_stream, run_annotated, wrap_args
from repro.workloads.array_ops import array_ops, make_array_inputs
from repro.workloads.compressor import (
    compress,
    decompress,
    make_compress_inputs,
)
from repro.workloads.euler import euler_oscillator, euler_reference, euler_segment
from repro.workloads.fibonacci import fib_benchmark, fib_iterative, fib_recursive
from repro.workloads.fir import (
    fir_filter,
    fir_reference,
    fir_sample,
    make_fir_inputs,
)
from repro.workloads.sorting import (
    bubble_sort,
    make_sort_inputs,
    quick_partition,
    quick_sort,
    quick_sort_checked,
)

CASES = [
    ("fir", (fir_filter,), lambda: make_fir_inputs(48, 8)),
    ("compress", (compress,), lambda: make_compress_inputs(160)),
    ("quick_sort", (quick_sort_checked, quick_sort, quick_partition),
     lambda: (make_sort_inputs(40)[0], 40)),
    ("bubble", (bubble_sort,), lambda: make_sort_inputs(32, seed=5)),
    ("fibonacci", (fib_benchmark, fib_recursive, fib_iterative),
     lambda: (10,)),
    ("array_ops", (array_ops,), lambda: make_array_inputs(48)),
    ("euler", (euler_oscillator,), lambda: (24, 4)),
]


@pytest.mark.parametrize("name,functions,make_args", CASES,
                         ids=[c[0] for c in CASES])
def test_three_backend_equivalence(name, functions, make_args):
    entry = functions[0]
    plain = int(entry(*make_args()))
    annotated, t_max, t_min = run_annotated(entry, make_args(),
                                            uniform_costs())
    compiled = run_compiled(list(functions), args=make_args(), entry=entry)
    assert plain == annotated == compiled.return_value
    assert t_max >= t_min >= 0.0
    assert t_max > 0.0, "annotated run must charge something"
    assert compiled.cycles > 0


class TestFir:
    def test_against_reference(self):
        x, h, y, n, taps = make_fir_inputs(32, 8)
        fir_filter(x, h, list(y), n, taps)
        expected = fir_reference(x, h, n, taps)
        out = [0] * n
        fir_filter(x, h, out, n, taps)
        assert out == expected

    def test_fir_sample_matches_first_output(self):
        x, h, _y, n, taps = make_fir_inputs(16, 8)
        assert int(fir_sample(x[:taps], h, taps)) == \
            fir_reference(x, h, 1, taps)[0]

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_impulse_response_recovers_taps(self, taps):
        """Filtering a unit impulse yields the (scaled) tap values."""
        from repro.workloads.fir import _lowpass_taps
        h = _lowpass_taps(taps)
        x = [256] + [0] * (2 * taps)
        out = [0] * taps
        fir_filter(x, h, out, taps, taps)
        assert out[0] == (h[0] * 256) >> 8


class TestCompress:
    def test_roundtrip(self):
        src, dst, mtf, n = make_compress_inputs(200)
        pairs = compress(list(src), dst, mtf, n) // 2
        out = [0] * n
        produced = decompress(dst, out, [0] * 256, pairs)
        assert produced == n
        assert out == src

    def test_compresses_runs(self):
        src = [7] * 100
        dst = [0] * 200
        words = compress(src, dst, [0] * 256, 100)
        assert words == 2  # one (run, rank) pair

    @given(st.lists(st.integers(min_value=0, max_value=20),
                    min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, src):
        n = len(src)
        dst = [0] * (2 * n)
        pairs = compress(list(src), dst, [0] * 256, n) // 2
        out = [0] * n
        assert decompress(dst, out, [0] * 256, pairs) == n
        assert out == src


class TestSorting:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_quick_sort_sorts(self, values):
        data = list(values)
        quick_sort(data, 0, len(data) - 1)
        assert data == sorted(values)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_bubble_sort_sorts(self, values):
        data = list(values)
        bubble_sort(data, len(data))
        assert data == sorted(values)

    def test_checksums_agree_across_algorithms(self):
        data, n = make_sort_inputs(50)
        quick_check = quick_sort_checked(list(data), n)
        bubble_check = bubble_sort(list(data), n)
        assert quick_check == bubble_check


class TestFibonacci:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (2, 1),
                                            (10, 55), (15, 610)])
    def test_values(self, n, expected):
        assert fib_iterative(n) == expected
        assert fib_recursive(n) == expected
        assert fib_benchmark(n) == expected


class TestEuler:
    def test_matches_reference(self):
        assert euler_oscillator(48, 4) == euler_reference(48, 4)

    def test_segment_is_four_steps(self):
        stepped = euler_segment(4096, 0, 4)
        y, v = 4096, 0
        for _ in range(4):
            ay = -y
            y = y + (v >> 4)
            v = v + (ay >> 4)
        assert int(stepped) == y + v

    def test_oscillator_oscillates(self):
        """Energy-preserving-ish: y must change sign within a period."""
        values = [euler_reference(steps, 4) for steps in range(0, 120, 8)]
        assert any(v < 0 for v in values)
        assert any(v > 0 for v in values)


class TestInputGenerators:
    def test_lcg_deterministic(self):
        assert lcg_stream(1, 10, 100) == lcg_stream(1, 10, 100)
        assert lcg_stream(1, 10, 100) != lcg_stream(2, 10, 100)

    def test_lcg_bounds(self):
        values = lcg_stream(3, 1000, 17)
        assert all(0 <= v < 17 for v in values)

    def test_lcg_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            lcg_stream(1, 1, 0)

    def test_wrap_args_copies(self):
        data = [1, 2, 3]
        wrapped = wrap_args((data, 5))
        wrapped[0][0] = 99
        assert data[0] == 1, "wrap_args must not alias the original"

    def test_wrap_args_rejects_unknown(self):
        with pytest.raises(TypeError):
            wrap_args(({"a": 1},))
