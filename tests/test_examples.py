"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "performance report" in out
    assert "per-segment detail" in out


def test_hw_design_space():
    out = _run("hw_design_space.py")
    assert "library bounds" in out
    assert "Pareto frontier" in out


def test_capture_verification():
    out = _run("capture_verification.py")
    assert "response-time analysis" in out
    assert "determinism check" in out


def test_realtime_energy():
    out = _run("realtime_energy.py")
    assert "RM response-time : schedulable" in out
    assert "energy report" in out
    assert "occupancy over" in out


@pytest.mark.slow
def test_vocoder_exploration():
    out = _run("vocoder_exploration.py", "1")
    assert "mapping A" in out
    assert "speedup C vs A" in out


def test_image_pipeline():
    out = _run("image_pipeline.py", "4")
    assert "DCT on HW" in out
    assert "faster" in out
