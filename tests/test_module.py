"""Module and port structure tests."""

import pytest

from repro import Module, Simulator, SimTime, wait
from repro.errors import ElaborationError


def test_module_registers_with_simulator():
    sim = Simulator()
    module = sim.module("dut")
    assert module in sim.modules


def test_duplicate_process_names_rejected():
    sim = Simulator()
    module = sim.module("dut")

    def body():
        yield wait(SimTime.ns(1))

    module.add_process(body, name="p")
    with pytest.raises(ElaborationError, match="already has a process"):
        module.add_process(body, name="p")


def test_process_full_name():
    sim = Simulator()
    module = sim.module("dut")

    def runner():
        yield wait(SimTime.ns(1))

    process = module.add_process(runner)
    assert process.full_name == "dut.runner"


def test_port_binding_and_delegation():
    sim = Simulator()
    fifo = sim.fifo("f")
    module = sim.module("dut")
    port = module.add_port("data_in", "in")
    port.bind(fifo)
    received = []

    def body():
        yield from port.write(5)
        received.append((yield from port.read()))

    module.add_process(body)
    sim.run()
    assert received == [5]


def test_unbound_port_fails_elaboration():
    sim = Simulator()
    module = sim.module("dut")
    module.add_port("dangling")

    def body():
        yield wait(SimTime.ns(1))

    module.add_process(body)
    with pytest.raises(ElaborationError, match="unbound"):
        sim.run()


def test_unbound_port_use_raises():
    sim = Simulator()
    module = sim.module("dut")
    port = module.add_port("p")
    with pytest.raises(ElaborationError, match="before binding"):
        port.channel


def test_rebinding_rejected():
    sim = Simulator()
    module = sim.module("dut")
    port = module.add_port("p")
    port.bind(sim.fifo("a"))
    with pytest.raises(ElaborationError, match="already bound"):
        port.bind(sim.fifo("b"))


def test_binding_non_channel_rejected():
    sim = Simulator()
    module = sim.module("dut")
    port = module.add_port("p")
    with pytest.raises(ElaborationError, match="must bind to a Channel"):
        port.bind("not a channel")


def test_duplicate_port_rejected():
    sim = Simulator()
    module = sim.module("dut")
    module.add_port("p")
    with pytest.raises(ElaborationError, match="already has port"):
        module.add_port("p")


def test_bad_port_direction_rejected():
    sim = Simulator()
    module = sim.module("dut")
    with pytest.raises(ValueError, match="direction"):
        module.add_port("p", "sideways")


def test_child_module_elaboration_recurses():
    sim = Simulator()
    parent = sim.module("parent")
    child = Module(sim, "child")
    parent.add_child(child)
    child.add_port("hole")
    with pytest.raises(ElaborationError, match="child"):
        parent.check_elaboration()
