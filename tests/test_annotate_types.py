"""Annotated type semantics: AInt/AFloat/ABool/AArray/Var.

The central invariant is single-source equivalence: any expression over
annotated values must produce exactly the value the same expression
produces over plain Python numbers, with or without an active context.
"""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate import (
    AArray,
    ABool,
    AFloat,
    AInt,
    CostContext,
    MODE_HW,
    MODE_SW,
    Var,
    active,
    arange,
    branch,
    annotated_function,
    make_array,
    uniform_costs,
    unwrap,
)
from repro.errors import AnnotationError

ints = st.integers(min_value=-10**9, max_value=10**9)
small_ints = st.integers(min_value=-100, max_value=100)

INT_BINOPS = [
    (operator.add, "add"), (operator.sub, "sub"), (operator.mul, "mul"),
    (operator.and_, "and"), (operator.or_, "or"), (operator.xor, "xor"),
]


class TestAIntSemantics:
    @given(ints, ints)
    def test_binary_ops_match_int(self, a, b):
        for op, _name in INT_BINOPS:
            assert int(op(AInt(a), AInt(b))) == op(a, b)
            assert int(op(AInt(a), b)) == op(a, b)     # mixed
            assert int(op(a, AInt(b))) == op(a, b)     # reflected

    @given(ints, ints.filter(lambda v: v != 0))
    def test_division_matches_python_floor(self, a, b):
        assert int(AInt(a) // AInt(b)) == a // b
        assert int(AInt(a) % AInt(b)) == a % b

    @given(ints, st.integers(min_value=0, max_value=40))
    def test_shifts(self, a, s):
        assert int(AInt(a) << s) == a << s
        assert int(AInt(a) >> s) == a >> s

    @given(ints)
    def test_unary(self, a):
        assert int(-AInt(a)) == -a
        assert int(~AInt(a)) == ~a
        assert int(abs(AInt(a))) == abs(a)
        assert int(+AInt(a)) == a

    @given(ints, ints)
    def test_comparisons(self, a, b):
        assert bool(AInt(a) < AInt(b)) == (a < b)
        assert bool(AInt(a) <= b) == (a <= b)
        assert bool(AInt(a) > AInt(b)) == (a > b)
        assert bool(AInt(a) >= b) == (a >= b)
        assert bool(AInt(a) == AInt(b)) == (a == b)
        assert bool(AInt(a) != AInt(b)) == (a != b)

    def test_interop(self):
        assert list(range(AInt(3))) == [0, 1, 2]
        assert float(AInt(2)) == 2.0
        assert bool(AInt(0)) is False
        assert bool(AInt(5)) is True

    def test_copy_construction(self):
        inner = AInt(5)
        assert AInt(inner).value == 5

    def test_rejects_non_int(self):
        with pytest.raises(AnnotationError):
            AInt(1.5)

    def test_true_division_promotes_to_float(self):
        result = AInt(7) / AInt(2)
        assert isinstance(result, AFloat)
        assert float(result) == 3.5


class TestAFloatSemantics:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_arithmetic(self, a, b):
        assert float(AFloat(a) + AFloat(b)) == a + b
        assert float(AFloat(a) - b) == a - b
        assert float(AFloat(a) * AFloat(b)) == a * b

    def test_division_by_nonzero(self):
        assert float(AFloat(7.0) / 2) == 3.5

    def test_promotion_from_aint(self):
        result = AFloat(1.5) + AInt(2)
        assert isinstance(result, AFloat)
        assert float(result) == 3.5

    def test_unary(self):
        assert float(-AFloat(2.5)) == -2.5
        assert float(abs(AFloat(-2.5))) == 2.5

    def test_comparisons(self):
        assert bool(AFloat(1.0) < 2.0)
        assert bool(AFloat(2.0) == 2.0)


class TestCharging:
    def test_sw_mode_sums_operations(self):
        ctx = CostContext(uniform_costs(cycles=2.0), MODE_SW)
        with active(ctx):
            _ = AInt(1) + AInt(2) * AInt(3)
        assert ctx.total_cycles == 4.0  # mul + add
        assert ctx.op_counts == {"add": 1, "mul": 1}

    def test_no_context_charges_nothing(self):
        ctx = CostContext(uniform_costs(), MODE_SW)
        _ = AInt(1) + AInt(2)
        assert ctx.total_cycles == 0.0

    def test_hw_mode_tracks_critical_path(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        with active(ctx):
            a, b, c, d = AInt(1), AInt(2), AInt(3), AInt(4)
            _ = (a + b) + (c + d)   # balanced tree: depth 2, 3 ops
        t_max, t_min = ctx.segment_totals()
        assert t_max == 3.0
        assert t_min == 2.0

    def test_hw_chain_critical_path_equals_sum(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        with active(ctx):
            acc = AInt(0)
            for k in range(5):
                acc = acc + k
        t_max, t_min = ctx.segment_totals()
        assert t_max == 5.0
        assert t_min == 5.0  # pure dependence chain

    def test_reset_clears_accumulation(self):
        ctx = CostContext(uniform_costs(), MODE_SW)
        with active(ctx):
            _ = AInt(1) + 1
            ctx.reset()
            _ = AInt(1) + 1 + 1
        assert ctx.total_cycles == 2.0

    def test_bool_of_comparison_charges_branch(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(ctx):
            if AInt(1) < AInt(2):
                pass
        assert ctx.op_counts == {"lt": 1, "branch": 1}

    def test_missing_cost_entry_raises(self):
        ctx = CostContext(uniform_costs(operations=("add",)), MODE_SW)
        with active(ctx):
            with pytest.raises(AnnotationError, match="no entry"):
                _ = AInt(1) * AInt(2)

    def test_bad_mode_rejected(self):
        with pytest.raises(AnnotationError):
            CostContext(uniform_costs(), mode="quantum")

    def test_active_restores_previous_context(self):
        outer = CostContext(uniform_costs(), MODE_SW)
        inner = CostContext(uniform_costs(), MODE_SW)
        with active(outer):
            with active(inner):
                _ = AInt(1) + 1
            _ = AInt(1) + 1
        assert inner.total_cycles == 1.0
        assert outer.total_cycles == 1.0


class TestAArray:
    def test_load_store_roundtrip(self):
        array = AArray([1, 2, 3])
        array[1] = AInt(20)
        assert int(array[1]) == 20
        assert array.to_list() == [1, 20, 3]

    def test_charges_load_and_store(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        array = AArray([0, 0])
        with active(ctx):
            array[0] = 5
            _ = array[0]
        assert ctx.op_counts == {"store": 1, "load": 1}

    def test_hw_write_read_dependency(self):
        """Critical path threads through memory slots."""
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        array = AArray([0])
        with active(ctx):
            array[0] = AInt(1) + AInt(2)   # add(1) -> store(2)
            _ = array[0] + 1               # load(3) -> add(4)
        _, t_min = ctx.segment_totals()
        assert t_min == 4.0

    def test_aint_index(self):
        array = AArray([10, 20, 30])
        assert int(array[AInt(2)]) == 30

    def test_zeros(self):
        assert AArray.zeros(4).to_list() == [0, 0, 0, 0]
        with pytest.raises(AnnotationError):
            AArray.zeros(-1)

    def test_iteration(self):
        assert [int(v) for v in AArray([1, 2])] == [1, 2]

    def test_rejects_non_numbers(self):
        with pytest.raises(AnnotationError):
            AArray(["text"])
        array = AArray([0])
        with pytest.raises(AnnotationError):
            array[0] = "text"
        with pytest.raises(AnnotationError):
            array["zero"]

    def test_float_elements(self):
        array = AArray([1.5])
        assert isinstance(array[0], AFloat)

    @given(st.lists(ints, min_size=1, max_size=20), st.data())
    @settings(max_examples=50)
    def test_matches_list_semantics(self, values, data):
        """Random load/store sequences agree with a plain list."""
        array = AArray(values)
        mirror = list(values)
        for _ in range(10):
            index = data.draw(st.integers(0, len(values) - 1))
            if data.draw(st.booleans()):
                value = data.draw(ints)
                array[index] = value
                mirror[index] = value
            else:
                assert int(array[index]) == mirror[index]


class TestHelpers:
    def test_var_assignment_charges(self):
        ctx = CostContext(uniform_costs(cycles=3.0), MODE_SW)
        v = Var(0)
        with active(ctx):
            v.assign(AInt(1) + 1)
        assert ctx.op_counts == {"add": 1, "assign": 1}
        assert v.value == 2
        assert int(v.get()) == 2

    def test_arange_plain_without_context(self):
        assert list(arange(3)) == [0, 1, 2]
        assert all(isinstance(i, int) for i in arange(3))

    def test_arange_annotated_with_context(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(ctx):
            indices = list(arange(1, 7, 2))
        assert [int(i) for i in indices] == [1, 3, 5]
        assert all(isinstance(i, AInt) for i in indices)
        assert ctx.op_counts == {"add": 3, "branch": 3}

    def test_arange_accepts_aint_bounds(self):
        assert list(arange(AInt(3))) == [0, 1, 2]

    def test_annotated_function_charges_call_and_args(self):
        @annotated_function
        def helper(a, b):
            return a + b

        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(ctx):
            result = helper(AInt(1), AInt(2))
        assert int(result) == 3
        assert ctx.op_counts == {"call": 1, "assign": 2, "add": 1}

    def test_branch_charges_once_for_abool(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(ctx):
            assert branch(AInt(1) < 2) is True
        assert ctx.op_counts == {"lt": 1, "branch": 1}

    def test_branch_charges_for_plain_bool(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_SW)
        with active(ctx):
            assert branch(True) is True
        assert ctx.op_counts == {"branch": 1}

    def test_aint_helper_is_context_aware(self):
        from repro.annotate import aint
        assert isinstance(aint(3), int)
        with active(CostContext(uniform_costs(), MODE_SW)):
            assert isinstance(aint(3), AInt)

    def test_make_array_is_context_aware(self):
        assert make_array(3) == [0, 0, 0]
        with active(CostContext(uniform_costs(), MODE_SW)):
            array = make_array(3)
            assert isinstance(array, AArray)
            assert len(array) == 3

    def test_unwrap(self):
        assert unwrap(AInt(3)) == 3
        assert unwrap(AFloat(1.5)) == 1.5
        assert unwrap(ABool(True)) is True
        assert unwrap(Var(7)) == 7
        assert unwrap(AArray([1])) == [1]
        assert unwrap("passthrough") == "passthrough"


class TestCrossSegmentReadyClock:
    def test_old_values_available_at_segment_start(self):
        """A value computed in segment 1 must not stretch segment 2's
        critical path (regression: the ready clock leaked across
        resets, producing critical paths longer than the op sum)."""
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        with active(ctx):
            carried = AInt(1)
            for _ in range(20):
                carried = carried + 1          # long chain in segment 1
            ctx.reset()                        # segment boundary
            fresh = carried + 1                # uses the old value
            t_max, t_min = ctx.segment_totals()
        assert t_max == 1.0
        assert t_min == 1.0                    # not 21!

    def test_critical_path_never_exceeds_sum_across_segments(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        with active(ctx):
            value = AInt(1)
            for segment in range(5):
                for _ in range(3):
                    value = value + 1
                t_max, t_min = ctx.segment_totals()
                assert t_min <= t_max + 1e-9, (segment, t_min, t_max)
                ctx.reset()

    def test_within_segment_chaining_still_tracked(self):
        ctx = CostContext(uniform_costs(cycles=1.0), MODE_HW)
        with active(ctx):
            ctx.reset()
            a, b, c, d = AInt(1), AInt(2), AInt(3), AInt(4)
            _ = (a + b) + (c + d)
            t_max, t_min = ctx.segment_totals()
        assert (t_max, t_min) == (3.0, 2.0)


class TestOperatorIdentity:
    """Generated operator methods must be introspectable and equivalent."""

    DUNDER_SETS = {
        AInt: ["__add__", "__radd__", "__sub__", "__rsub__", "__mul__",
               "__rmul__", "__floordiv__", "__rfloordiv__", "__mod__",
               "__rmod__", "__lshift__", "__rshift__", "__and__", "__or__",
               "__xor__", "__lt__", "__le__", "__gt__", "__ge__", "__eq__",
               "__ne__", "__neg__", "__invert__", "__abs__"],
        AFloat: ["__add__", "__radd__", "__sub__", "__rsub__", "__mul__",
                 "__rmul__", "__truediv__", "__rtruediv__", "__lt__",
                 "__le__", "__gt__", "__ge__", "__eq__", "__ne__",
                 "__neg__", "__abs__"],
    }

    def test_generated_methods_carry_their_dunder_names(self):
        # Reflected methods especially: a generic closure name garbles
        # profiler and flamegraph frames.
        for cls, dunders in self.DUNDER_SETS.items():
            for dunder in dunders:
                method = getattr(cls, dunder)
                assert method.__name__ == dunder, (cls.__name__, dunder)
                assert method.__qualname__ == f"{cls.__name__}.{dunder}", \
                    (cls.__name__, dunder)

    @given(a=ints, b=ints)
    @settings(max_examples=50, deadline=None)
    def test_fast_and_general_paths_charge_identically(self, a, b):
        costs = uniform_costs(cycles=2.0)
        fast = CostContext(costs, MODE_SW)
        general = CostContext(costs, MODE_SW, force_general=True)
        assert fast._fast and not general._fast

        def exercise(ctx):
            with active(ctx):
                x, y = AInt(a), AInt(b)
                r = (x + y) * 2 - (x | 3)
                if y:
                    r = r + (x < y)
                for i in arange(3):
                    r = r + i
                arr = AArray([1, 2, 3])
                arr[1] = arr[0] + arr[2]
                v = Var(0)
                v.assign(r)
            return unwrap(r), ctx.segment_totals(), dict(ctx.op_counts), \
                dict(ctx.lifetime_op_counts)

        assert exercise(fast) == exercise(general)

    def test_recorder_property_recomputes_fast_flag(self):
        from repro.annotate import OperationRecorder
        ctx = CostContext(uniform_costs(), MODE_SW)
        assert ctx._fast
        ctx.recorder = OperationRecorder()
        assert not ctx._fast
        ctx.recorder = None
        assert ctx._fast
