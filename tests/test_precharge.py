"""Segment fast-forward engine: static plans and runtime replay."""

from types import SimpleNamespace

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import AInt, CostContext, MODE_SW, uniform_costs
from repro.core import PerformanceLibrary
from repro.errors import AnnotationError
from repro.platform import Mapping, make_cpu, make_fabric
from repro.segments import FastForwardEngine, build_plan, plan_for
from repro.segments.precharge import (
    ENTRY_LINE,
    EXIT_LINE,
    _PURE,
    _ZERO,
    _ZERO_BUNDLE,
)

THREE = AInt(3)


# ---------------------------------------------------------------------------
# Static plan builder
# ---------------------------------------------------------------------------

class TestBuildPlan:
    def test_fixed_pipeline_is_fully_eligible(self):
        def body():
            acc = THREE
            for _ in range(8):
                acc = acc + THREE
                yield from ch.write(acc)
                yield wait(SimTime.ns(5))

        plan = build_plan(body)
        assert plan.ok
        total = sum(len(s) for s in plan.successors.values())
        assert len(plan.eligible) == total > 0
        assert all(plan.closed.values())
        # The write->wait hop, the loop-exit arc and the statically
        # possible entry->exit arc (loop skipped) charge nothing at all
        # (plain moves plus a range head) and are seeded statically.
        assert len(plan.zero_charge) == 3
        assert (ENTRY_LINE, EXIT_LINE) in plan.zero_charge
        assert plan.zero_charge < plan.eligible

    def test_data_dependent_branch_is_not_eligible(self):
        def body():
            flag = THREE
            for _ in range(4):
                yield wait(SimTime.ns(1))
                if flag:
                    flag = flag + flag
                yield wait(SimTime.ns(2))

        plan = build_plan(body)
        assert plan.ok
        total = sum(len(s) for s in plan.successors.values())
        # The siteless conditional makes the arc crossing it (first wait
        # to second wait) data-dependent; the others stay eligible.
        assert 0 < len(plan.eligible) < total
        assert not all(plan.closed.values())

    def test_sited_branches_stay_eligible(self):
        def body():
            for _ in range(4):
                value = yield from ch.read()
                if value:
                    yield from out.write(value)
                else:
                    yield wait(SimTime.ns(1))

        plan = build_plan(body)
        assert plan.ok
        total = sum(len(s) for s in plan.successors.values())
        # Every branch holds its own node site, so each individual arc
        # still charges a fixed multiset.
        assert len(plan.eligible) == total

    def test_nonliteral_sitefree_loop_is_not_eligible(self):
        def body(n):
            yield wait(SimTime.ns(1))
            total = THREE
            for _ in range(n):
                total = total + THREE
            yield wait(SimTime.ns(2))

        plan = build_plan(body)
        assert plan.ok
        # The charging loop's trip count is an argument, so the arc
        # through it has no fixed multiset.
        assert any(not plan.closed[line] for line in plan.closed)

    def test_literal_sitefree_loop_stays_eligible(self):
        def body():
            yield wait(SimTime.ns(1))
            total = THREE
            for _ in range(16):
                total = total + THREE
            yield wait(SimTime.ns(2))

        plan = build_plan(body)
        assert plan.ok
        total = sum(len(s) for s in plan.successors.values())
        assert len(plan.eligible) == total

    def test_single_site_helper_subgenerator_qualifies(self):
        def helper():
            yield wait(SimTime.ns(1))

        def body():
            yield wait(SimTime.ns(2))
            yield from helper()

        plan = build_plan(body)
        assert plan.ok, plan.reason
        # The helper surfaces one dynamic node at the call line; the
        # plan models it as a synthetic site, and the helper's own
        # charge-free flags keep every arc eligible and zero-charge.
        total = sum(len(s) for s in plan.successors.values())
        assert len(plan.eligible) == total
        assert len(plan.successors) == 3  # entry + wait site + helper site

    def test_charging_helper_arcs_are_eligible_but_not_zero(self):
        def helper():
            acc = THREE + THREE
            yield from ch.write(acc)

        def body():
            yield wait(SimTime.ns(1))
            yield from helper()

        plan = build_plan(body)
        assert plan.ok, plan.reason
        # The helper's add charges, so its combined flags are pure but
        # not zero-charge — applied to both arcs around its node.
        charging = [arc for arc in plan.eligible
                    if arc not in plan.zero_charge]
        assert charging, plan.describe()

    def test_multi_site_helper_disqualifies_process(self):
        def helper():
            yield wait(SimTime.ns(1))
            yield wait(SimTime.ns(2))

        def body():
            yield from helper()

        plan = build_plan(body)
        assert not plan.ok
        assert "unrecognized yield" in plan.reason

    def test_helper_with_arguments_disqualifies_process(self):
        def helper(ns):
            yield wait(SimTime.ns(ns))

        def body():
            yield from helper(1)

        plan = build_plan(body)
        assert not plan.ok
        assert "unrecognized yield" in plan.reason

    def test_helper_with_control_flow_disqualifies_process(self):
        def helper():
            if True:
                yield wait(SimTime.ns(1))

        def body():
            yield from helper()

        plan = build_plan(body)
        assert not plan.ok
        assert "unrecognized yield" in plan.reason

    def test_try_handler_arcs_are_modeled_but_impure(self):
        def body():
            yield wait(SimTime.ns(1))
            try:
                yield wait(SimTime.ns(2))
            except ValueError:
                yield wait(SimTime.ns(3))
            yield wait(SimTime.ns(4))

        plan = build_plan(body)
        assert plan.ok
        w1, w2, w3, w4 = sorted(
            line for line in plan.successors if line > ENTRY_LINE)
        # The exception-free path through the try charges
        # deterministically and stays eligible ...
        assert (w1, w2) in plan.eligible
        assert (w2, w4) in plan.eligible
        # ... while an exception may divert from before or after any
        # site inside the protected block into the handler: those arcs
        # are modeled (so suppression never meets a surprise successor)
        # but impure, keeping the body sites open.
        assert w3 in plan.successors[w1]
        assert w3 in plan.successors[w2]
        assert (w1, w3) not in plan.eligible
        assert (w2, w3) not in plan.eligible
        assert (w3, w4) not in plan.eligible
        assert not plan.closed[w1] and not plan.closed[w2]

    def test_nested_function_disqualifies_process(self):
        def body():
            def inner():
                return 1
            yield wait(SimTime.ns(inner()))

        plan = build_plan(body)
        assert not plan.ok
        assert "nested function" in plan.reason

    def test_duplicate_site_line_disqualifies_process(self):
        def body():
            yield wait(SimTime.ns(1)); yield wait(SimTime.ns(2))  # noqa: E702

        plan = build_plan(body)
        assert not plan.ok
        assert "share a source line" in plan.reason

    def test_unparsable_body_disqualifies_process(self):
        body = eval("lambda: iter(())")
        plan = build_plan(body)
        assert not plan.ok

    def test_boolean_test_position_is_never_zero_charge(self):
        def body():
            go = THREE
            yield wait(SimTime.ns(1))
            while go:
                yield wait(SimTime.ns(2))
                break

        plan = build_plan(body)
        assert plan.ok
        # A bare name in test position may hold an ABool whose implicit
        # __bool__ charges a branch: pure, but not zero-charge.
        arcs = {arc for arc in plan.eligible if arc not in plan.zero_charge}
        assert arcs, plan.describe()

    def test_plan_cache_shares_analysis_per_code_object(self):
        def body():
            yield wait(SimTime.ns(1))

        assert plan_for(body) is plan_for(body)

    def test_plan_cache_distinguishes_closure_contents(self):
        def make(helper):
            def body():
                yield wait(SimTime.ns(1))
                yield from helper()
            return body

        def single_site():
            yield wait(SimTime.ns(2))

        def double_site():
            yield wait(SimTime.ns(2))
            yield wait(SimTime.ns(3))

        # Both bodies share one code object but close over different
        # helpers; a code-keyed cache would reuse the first verdict.
        assert plan_for(make(single_site)).ok
        assert not plan_for(make(double_site)).ok


class TestVocoderPlans:
    def test_uniform_stages_gain_eligible_compute_arcs(self):
        from repro import Simulator
        from repro.workloads.vocoder import (
            STAGE_NAMES, build_vocoder, make_frames)

        sim = Simulator()
        design = build_vocoder(sim, make_frames(2), annotate=True)
        plans = {name: plan_for(design.processes[name].body)
                 for name in STAGE_NAMES}
        assert all(plan.ok for plan in plans.values()), {
            name: plan.reason for name, plan in plans.items()}

        def compute_arcs(plan):
            return [arc for arc in plan.eligible
                    if arc not in plan.zero_charge
                    and arc[0] > 0 and arc[1] > 0]

        # The ACB and LPC kernels' charge multisets are functions of the
        # steady frame shape only (uniform) and their stage wrappers are
        # transparent, so the read->compute->write arc fast-forwards.
        assert compute_arcs(plans["acb_search"])
        assert compute_arcs(plans["lpc_int"])
        # The other kernels charge data-dependently: their compute arcs
        # stay on the dynamic path (but the wrap arcs remain modeled).
        for name in ("lsp_estim", "icb_search", "post_proc"):
            assert not compute_arcs(plans[name]), name


# ---------------------------------------------------------------------------
# Engine unit behaviour (driven through stub processes)
# ---------------------------------------------------------------------------

def _stub_process(pid, body, line):
    frame = SimpleNamespace(f_lineno=line)
    return SimpleNamespace(pid=pid, body=body,
                           generator=SimpleNamespace(gi_frame=frame),
                           full_name=f"stub{pid}")


def _simple_body():
    acc = THREE
    acc = acc + THREE
    yield wait(SimTime.ns(1))


class TestEngineUnit:
    def _engine_with_stub(self, check):
        ctx = CostContext(uniform_costs(), MODE_SW)
        plan = plan_for(_simple_body)
        assert plan.ok
        site = next(line for line in plan.successors if line > ENTRY_LINE)
        engine = FastForwardEngine({1: ctx}, check=check)
        process = _stub_process(1, _simple_body, site)
        return engine, process, ctx, site

    def test_check_mode_raises_on_bundle_mismatch(self):
        engine, process, ctx, site = self._engine_with_stub(check=True)
        engine.on_process_start(process, SimTime.fs(0))
        engine.on_node_reached(process, object(), SimTime.fs(0), 0)
        arc = (ENTRY_LINE, site)
        assert (1, arc) in engine._bundles
        engine._bundles[(1, arc)] = (999.0, 999.0, engine._bundles[(1, arc)][2])
        engine._last[1] = ENTRY_LINE
        with pytest.raises(AnnotationError, match="check failed"):
            engine.on_node_reached(process, object(), SimTime.fs(0), 0)
        assert engine.checked == 1

    def test_suppressed_segment_without_bundle_raises(self):
        engine, process, ctx, site = self._engine_with_stub(check=False)
        engine.on_process_start(process, SimTime.fs(0))
        engine._suppressed.add(1)
        engine._bundles.clear()
        with pytest.raises(AnnotationError, match="uncharacterized"):
            engine.on_node_reached(process, object(), SimTime.fs(0), 0)

    def test_zero_charge_arcs_are_preseeded(self):
        engine, process, ctx, site = self._engine_with_stub(check=False)
        engine.on_process_start(process, SimTime.fs(0))
        plan = engine.plan_of(process)
        for arc in plan.zero_charge:
            assert engine._bundles[(1, arc)] == _ZERO_BUNDLE
        assert engine.preseeded == len(plan.zero_charge)

    def test_process_exit_clears_runtime_state(self):
        engine, process, ctx, site = self._engine_with_stub(check=False)
        engine.on_process_start(process, SimTime.fs(0))
        engine._pending.add(1)
        engine._suppressed.add(1)
        engine.on_process_exit(process, SimTime.fs(0))
        assert not engine._pending and not engine._suppressed
        assert not engine.is_suppressed(1)

    def test_lattice_values(self):
        # Only 0 / pure / pure|zero occur; zero implies pure.
        assert _ZERO & _PURE == 0 and (_PURE | _ZERO) & _PURE


# ---------------------------------------------------------------------------
# End-to-end: replayed runs are indistinguishable from charged runs
# ---------------------------------------------------------------------------

def _pipeline_design(simulator, iterations):
    ch = simulator.fifo("ch", capacity=2)
    top = simulator.module("top")

    def producer():
        acc = THREE
        for _ in range(iterations):
            acc = acc + THREE
            acc = acc * THREE
            yield from ch.write(acc)
            yield wait(SimTime.ns(5))

    def consumer():
        total = THREE
        for _ in range(iterations):
            value = yield from ch.read()
            total = total + value

    return top.add_process(producer, name="producer"), \
        top.add_process(consumer, name="consumer")


def _run_pipeline(iterations=12, hw=False, **library_kwargs):
    simulator = Simulator()
    producer, consumer = _pipeline_design(simulator, iterations)
    mapping = Mapping()
    if hw:
        mapping.assign(producer, make_fabric("hw0"))
    else:
        mapping.assign(producer, make_cpu("cpu0", costs=uniform_costs()))
    mapping.assign(consumer, make_cpu("cpu1", costs=uniform_costs()))
    perf = PerformanceLibrary(mapping, **library_kwargs)
    perf.attach(simulator)
    final = simulator.run()
    simulator.assert_quiescent()

    segments = {}
    for name, graph in perf.tracker.graphs.items():
        for (start, end), seg in graph.segments.items():
            segments[(name, str(start), str(end))] = (
                seg.executions, seg.total_cycles, seg.total_critical_path)
    ops = {pid: dict(ctx.lifetime_op_counts)
           for pid, ctx in perf.contexts.items()}
    fingerprint = {"final": final.femtoseconds, "segments": segments,
                   "ops": ops}
    return fingerprint, perf


class TestEngineEndToEnd:
    @pytest.mark.parametrize("hw", [False, True], ids=["sw", "hw"])
    def test_fastforward_matches_dynamic_charging(self, hw):
        plain, _ = _run_pipeline(hw=hw)
        fast, perf = _run_pipeline(hw=hw, fastforward=True)
        assert fast == plain
        assert perf.engine.replayed > 0, perf.engine.describe()
        assert perf.engine.characterized > 0

    def test_check_mode_verifies_without_suppressing(self):
        plain, _ = _run_pipeline()
        checked, perf = _run_pipeline(check_fastforward=True)
        assert checked == plain
        assert perf.engine.replayed == 0
        assert perf.engine.checked > 0, perf.engine.describe()

    def test_more_iterations_replay_more(self):
        _, short = _run_pipeline(iterations=6, fastforward=True)
        _, long = _run_pipeline(iterations=24, fastforward=True)
        assert long.engine.replayed > short.engine.replayed

    def test_describe_reports_counters(self):
        _, perf = _run_pipeline(fastforward=True)
        text = perf.engine.describe()
        assert "fast-forward" in text and "replayed" in text

    def test_stats_reports_plan_counters(self):
        _, perf = _run_pipeline(fastforward=True)
        stats = perf.engine.stats()
        assert stats["mode"] == "fast-forward"
        assert stats["plans"] == 2
        assert stats["eligible_arcs"] >= stats["eligible_compute_arcs"] >= 2
        assert stats["zero_charge_arcs"] == perf.engine.zero_charge_arcs
        assert stats["characterized"] == perf.engine.characterized
        assert stats["replayed"] == perf.engine.replayed
