"""Determinism property suite (hypothesis).

The batch result cache is only sound if simulation is a pure function
of its configuration: two runs with identical inputs must produce
byte-identical event traces and final times — in the same process and
in a freshly spawned worker.  These properties establish exactly that
invariant over randomized process/channel topologies; the paper's §6
makes the same observation in reverse (diverging runs expose a
non-deterministic specification).
"""

from __future__ import annotations

import hashlib

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SimTime, Simulator, wait
from repro.batch import Campaign, RunConfig, execute_config

#: Random-but-valid fifo-chain topology specs (always terminating:
#: every stage moves exactly ``messages`` items downstream).
topologies = st.fixed_dictionaries({
    "stages": st.integers(min_value=0, max_value=3),
    "messages": st.integers(min_value=1, max_value=8),
    "capacities": st.lists(st.integers(min_value=1, max_value=4),
                           min_size=1, max_size=4),
    "waits_ns": st.lists(st.integers(min_value=0, max_value=5),
                         min_size=1, max_size=4),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
})


def _trace_digest(simulator: Simulator) -> str:
    text = "\n".join(str(record) for record in simulator.trace.records)
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def _run_mixed_design(spec: dict):
    """Build and run a two-process design with fifo + signal + waits."""
    simulator = Simulator(trace=True)
    fifo = simulator.fifo("link", capacity=spec["capacity"])
    sign = simulator.signal("flag", initial=0)
    top = simulator.module("top")
    waits = spec["waits_ns"]
    count = spec["count"]

    def producer():
        for i in range(count):
            yield from fifo.write(i * spec["seed"] % 97)
            if waits:
                yield wait(SimTime.ns(waits[i % len(waits)]))
            yield from sign.write(i)

    def consumer():
        total = 0
        for i in range(count):
            value = yield from fifo.read()
            total += value + sign.value
            if waits:
                yield wait(SimTime.ns(waits[(i * 3 + 1) % len(waits)]))

    top.add_process(producer, name="producer")
    top.add_process(consumer, name="consumer")
    final = simulator.run()
    return final.femtoseconds, _trace_digest(simulator)


@settings(max_examples=40, deadline=None)
@given(spec=topologies)
def test_topology_reruns_are_byte_identical(spec):
    """Property 1: same inputs, same process => identical trace + time."""
    config = RunConfig.of("topology", "prop", **spec)
    first = execute_config(config)
    second = execute_config(config)
    assert first == second
    assert first["trace_sha256"] == second["trace_sha256"]
    assert first["final_fs"] == second["final_fs"]


@settings(max_examples=40, deadline=None)
@given(spec=st.fixed_dictionaries({
    "capacity": st.integers(min_value=1, max_value=3),
    "count": st.integers(min_value=1, max_value=10),
    "waits_ns": st.lists(st.integers(min_value=0, max_value=7), max_size=3),
    "seed": st.integers(min_value=1, max_value=1000),
}))
def test_mixed_channel_design_is_deterministic(spec):
    """Property 2: fifo + signal + timed waits replay identically."""
    assert _run_mixed_design(spec) == _run_mixed_design(spec)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=topologies)
def test_spawned_worker_reproduces_in_process_run(spec):
    """Property 3: a fresh spawned interpreter yields the same bytes.

    This is the exact invariant the cross-process batch cache relies
    on: a payload computed by any worker equals the in-process result.
    """
    config = RunConfig.of("topology", "spawned", **spec)
    local = execute_config(config)
    campaign = Campaign([config], workers=2, cache=None, retries=0,
                        start_method="spawn")
    remote = campaign.run()[0]
    assert remote.ok
    assert remote.payload == local


@settings(max_examples=40, deadline=None)
@given(spec=topologies, other=topologies)
def test_cache_keys_are_stable_and_injective_on_params(spec, other):
    """Property 4: key is a pure function of (kind, params, version)."""
    config = RunConfig.of("topology", "a", **spec)
    relabeled = RunConfig.of("topology", "b", **spec)
    assert config.cache_key() == relabeled.cache_key()
    twin = RunConfig.of("topology", "c", **other)
    if spec == other:
        assert config.cache_key() == twin.cache_key()
    else:
        assert config.cache_key() != twin.cache_key()
