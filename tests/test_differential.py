"""Differential backend tests over the full workload registry.

The paper's single-source claim: one specification runs unchanged as a
plain functional model, under annotated types (estimation), and through
the ISS compiler (reference measurement), and all three agree on the
functional results.  The original suite spot-checked this on reduced
inputs; here every registry workload is swept at its canonical size on
all three backends — the same ``workload`` runner the batch campaigns
fan out — and compared point-wise, including the post-run contents of
in-place-mutated arrays.
"""

from __future__ import annotations

import pytest

from repro.batch import RunConfig, WORKLOAD_BACKENDS, execute_config
from repro.workloads import registry

WORKLOADS = sorted(registry())


def _payloads(workload: str) -> dict:
    return {
        backend: execute_config(
            RunConfig.of("workload", f"{workload}/{backend}",
                         workload=workload, backend=backend))
        for backend in WORKLOAD_BACKENDS
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_backends_agree_functionally(workload):
    payloads = _payloads(workload)
    plain, annotated, iss = (payloads[b] for b in WORKLOAD_BACKENDS)

    assert plain["result"] == annotated["result"], \
        f"{workload}: annotated result diverges from plain run"
    assert plain["result"] == iss["result"], \
        f"{workload}: ISS result diverges from plain run"

    # In-place algorithms (sorting, compress buffers, ...) must leave
    # identical array contents behind on every backend.
    assert plain["arrays"] == annotated["arrays"], \
        f"{workload}: annotated run mutated arrays differently"
    assert plain["arrays"] == iss["arrays"], \
        f"{workload}: ISS run mutated arrays differently"


@pytest.mark.parametrize("workload", WORKLOADS)
def test_annotation_yields_positive_estimates(workload):
    annotated = execute_config(
        RunConfig.of("workload", workload=workload, backend="annotated"))
    assert annotated["cycles_max"] > 0
    assert 0 < annotated["cycles_min"] <= annotated["cycles_max"]


def test_registry_covers_the_paper_benchmarks():
    # Table 1's six sequential benchmarks must stay in the grid.
    for name in ("fir", "compress", "quicksort", "bubble", "fibonacci",
                 "array"):
        assert name in WORKLOADS


# ---------------------------------------------------------------------------
# Charging-path differential: fast path + fast-forward vs dynamic charging
# ---------------------------------------------------------------------------

def _node_key(node):
    return str(node)


def _run_workload_design(workload: str, fastforward: bool = False,
                         check_fastforward: bool = False,
                         force_general: bool = False):
    """Run one registry workload inside a kernel design; return a
    fingerprint of everything the estimation produces."""
    from repro import SimTime, Simulator, wait
    from repro.core import PerformanceLibrary
    from repro.platform import Mapping, OPENRISC_SW_COSTS, make_cpu
    from repro.workloads import wrap_args

    functions, make_args = registry()[workload]
    args = wrap_args(make_args())

    simulator = Simulator()
    top = simulator.module("top")

    def body():
        functions[0](*args)
        yield wait(SimTime.fs(0))

    process = top.add_process(body, name="kernel")
    cpu = make_cpu("cpu0", costs=OPENRISC_SW_COSTS)
    mapping = Mapping()
    mapping.assign(process, cpu)
    perf = PerformanceLibrary(mapping, fastforward=fastforward,
                              check_fastforward=check_fastforward)
    perf.attach(simulator)
    if force_general:
        # The pre-fast-path dynamic charging baseline: every operation
        # goes through the general charge_id path.
        for context in perf.contexts.values():
            context._force_general = True
            context._fast = False
    final = simulator.run()
    simulator.assert_quiescent()

    segments = {}
    for name, graph in perf.tracker.graphs.items():
        for (start, end), seg in graph.segments.items():
            segments[(name, _node_key(start), _node_key(end))] = (
                seg.executions, seg.total_cycles, seg.total_critical_path)
    op_counts = {pid: dict(ctx.lifetime_op_counts)
                 for pid, ctx in perf.contexts.items()}
    stats = {name: s.busy_time.femtoseconds for name, s in perf.stats.items()}
    return {
        "final_fs": final.femtoseconds,
        "segments": segments,
        "op_counts": op_counts,
        "stats": stats,
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fast_path_and_fastforward_match_dynamic_charging(workload):
    """The tentpole differential: segment totals, op counts and final
    simulated time are identical whether operations charge through the
    slim fast path with the fast-forward engine active, through the
    check-mode engine (dynamic charging plus bundle verification), or
    through the fully general pre-fast-path charge path."""
    dynamic = _run_workload_design(workload, force_general=True)
    fast = _run_workload_design(workload, fastforward=True)
    checked = _run_workload_design(workload, check_fastforward=True)
    assert fast == dynamic, f"{workload}: fast path diverges from dynamic"
    assert checked == dynamic, f"{workload}: check mode diverges"
