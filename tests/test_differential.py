"""Differential backend tests over the full workload registry.

The paper's single-source claim: one specification runs unchanged as a
plain functional model, under annotated types (estimation), and through
the ISS compiler (reference measurement), and all three agree on the
functional results.  The original suite spot-checked this on reduced
inputs; here every registry workload is swept at its canonical size on
all three backends — the same ``workload`` runner the batch campaigns
fan out — and compared point-wise, including the post-run contents of
in-place-mutated arrays.
"""

from __future__ import annotations

import pytest

from repro.batch import RunConfig, WORKLOAD_BACKENDS, execute_config
from repro.workloads import registry

WORKLOADS = sorted(registry())


def _payloads(workload: str) -> dict:
    return {
        backend: execute_config(
            RunConfig.of("workload", f"{workload}/{backend}",
                         workload=workload, backend=backend))
        for backend in WORKLOAD_BACKENDS
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_backends_agree_functionally(workload):
    payloads = _payloads(workload)
    plain, annotated, iss = (payloads[b] for b in WORKLOAD_BACKENDS)

    assert plain["result"] == annotated["result"], \
        f"{workload}: annotated result diverges from plain run"
    assert plain["result"] == iss["result"], \
        f"{workload}: ISS result diverges from plain run"

    # In-place algorithms (sorting, compress buffers, ...) must leave
    # identical array contents behind on every backend.
    assert plain["arrays"] == annotated["arrays"], \
        f"{workload}: annotated run mutated arrays differently"
    assert plain["arrays"] == iss["arrays"], \
        f"{workload}: ISS run mutated arrays differently"


@pytest.mark.parametrize("workload", WORKLOADS)
def test_annotation_yields_positive_estimates(workload):
    annotated = execute_config(
        RunConfig.of("workload", workload=workload, backend="annotated"))
    assert annotated["cycles_max"] > 0
    assert 0 < annotated["cycles_min"] <= annotated["cycles_max"]


def test_registry_covers_the_paper_benchmarks():
    # Table 1's six sequential benchmarks must stay in the grid.
    for name in ("fir", "compress", "quicksort", "bubble", "fibonacci",
                 "array"):
        assert name in WORKLOADS
