"""Segment tracking, process graphs and the static scanner."""

import pytest

from repro import SimTime, Simulator, wait
from repro.kernel import Mark
from repro.segments import (
    NodeId,
    ProcessGraph,
    SegmentTracker,
    annotate_listing,
    scan_process,
)


def _paper_example(simulator, iterations=4):
    """The Fig. 1 process plus an environment that serves it."""
    ch1 = simulator.fifo("ch1")
    ch2 = simulator.fifo("ch2")
    top = simulator.module("top")

    def process():
        for i in range(iterations):
            value = yield from ch1.read()          # N1
            if value % 2 == 0:
                yield from ch2.write(value)        # N2
            yield wait(SimTime.ns(10))             # N3
            yield from ch2.write(0)                # N4

    def environment():
        for i in range(iterations):
            yield from ch1.write(i)
            if i % 2 == 0:
                yield from ch2.read()
            yield from ch2.read()

    top.add_process(process)
    top.add_process(environment)
    return process


class TestProcessGraph:
    def test_labels_follow_first_appearance(self):
        graph = ProcessGraph("p")
        n1 = NodeId("channel", "a.read", 10)
        n2 = NodeId("wait", "", 12)
        graph.touch_node(n1)
        graph.touch_node(n2)
        assert graph.nodes[n1].label == "N1"
        assert graph.nodes[n2].label == "N2"
        assert graph.nodes[graph.entry].label == "N0"

    def test_segments_identified_by_endpoint_pair(self):
        graph = ProcessGraph("p")
        n1 = NodeId("channel", "a.read", 10)
        graph.touch_node(n1)
        graph.touch_segment(graph.entry, n1, cycles=5.0)
        graph.touch_segment(graph.entry, n1, cycles=7.0)
        stats = graph.segment("N0", "N1")
        assert stats.executions == 2
        assert stats.total_cycles == 12.0
        assert stats.min_cycles == 5.0
        assert stats.max_cycles == 7.0
        assert stats.mean_cycles == 6.0
        assert stats.label == "S0-1"

    def test_to_networkx(self):
        graph = ProcessGraph("p")
        n1 = NodeId("channel", "a.read", 10)
        graph.touch_node(n1)
        graph.touch_segment(graph.entry, n1)
        nx_graph = graph.to_networkx()
        assert nx_graph.has_edge("N0", "N1")

    def test_to_dot(self):
        graph = ProcessGraph("p")
        n1 = NodeId("wait", "", 3)
        graph.touch_node(n1)
        graph.touch_segment(graph.entry, n1)
        dot = graph.to_dot()
        assert "digraph" in dot and "N0 -> N1" in dot


class TestTracker:
    def test_reconstructs_paper_graph(self):
        sim = Simulator()
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        _paper_example(sim)
        sim.run()
        sim.assert_quiescent()

        graph = tracker.graph_of("top.process")
        labels = {s.label for s in graph.segments.values()}
        for expected in ("S0-1", "S1-2", "S1-3", "S2-3", "S3-4", "S4-1"):
            assert expected in labels

    def test_counts_segment_executions(self):
        sim = Simulator()
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        _paper_example(sim, iterations=4)
        sim.run()
        graph = tracker.graph_of("top.process")
        # conditional write taken for even values: 2 of 4 iterations
        assert graph.segment("N1", "N2").executions == 2
        assert graph.segment("N1", "N3").executions == 2
        assert graph.segment("N3", "N4").executions == 4

    def test_instantaneous_records(self):
        sim = Simulator()
        tracker = SegmentTracker(record_instantaneous=True)
        sim.add_observer(tracker)
        _paper_example(sim, iterations=2)
        sim.run()
        records = tracker.instantaneous["top.process"]
        assert records, "instantaneous list should not be empty"
        assert all(len(r) == 3 for r in records)

    def test_marks_attach_to_enclosing_segment(self):
        sim = Simulator()
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        top = sim.module("top")

        def body():
            yield Mark("setup")
            yield wait(SimTime.ns(1))

        top.add_process(body)
        sim.run()
        graph = tracker.graph_of("top.body")
        first = graph.segment("N0", "N1")
        assert first.marks == ["setup"]

    def test_report_lines_render(self):
        sim = Simulator()
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        _paper_example(sim, iterations=2)
        sim.run()
        report = "\n".join(tracker.report_lines())
        assert "top.process" in report
        assert "S0-1" in report


class TestStaticScanner:
    def test_finds_all_node_sites(self):
        sim = Simulator()
        body = _paper_example(sim)
        sites = scan_process(body)
        kinds = [s.kind for s in sites]
        assert kinds == ["channel", "channel", "wait", "channel"]
        details = [s.detail for s in sites]
        assert details[0] == "ch1.read"
        assert details[1] == "ch2.write"

    def test_annotated_listing_marks_lines(self):
        sim = Simulator()
        body = _paper_example(sim)
        listing = annotate_listing(body)
        assert "# <- N1" in listing
        assert "# <- N4" in listing

    def test_unscannable_function_raises(self):
        from repro.errors import ReproError
        exec_namespace = {}
        exec("def synthetic():\n    yield None\n", exec_namespace)
        with pytest.raises(ReproError, match="cannot obtain source"):
            scan_process(exec_namespace["synthetic"])

    def test_lambda_body_rejected(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="lambda"):
            scan_process(lambda: None)

    def test_aliased_channel_access_resolved(self):
        def body(out):
            ch = out
            yield from ch.write(1)
            yield from ch.read()

        sites = scan_process(body)
        assert [s.detail for s in sites] == ["out.write", "out.read"]

    def test_attribute_alias_resolved(self):
        def body(self):
            port = self.out
            yield from port.write(0)

        sites = scan_process(body)
        assert [s.detail for s in sites] == ["self.out.write"]

    def test_reassigned_alias_invalidated(self):
        def body(out):
            ch = out
            ch = compute()  # noqa: F821 — alias clobbered, stop resolving
            yield from ch.write(1)

        sites = scan_process(body)
        assert [s.detail for s in sites] == ["ch.write"]

    def test_sites_inside_try_finally_and_with(self):
        def body(self, lock):
            try:
                yield from self.inp.read()
            finally:
                with lock:
                    yield from self.out.write(0)

        sites = scan_process(body)
        assert [s.detail for s in sites] == ["self.inp.read", "self.out.write"]

    def test_decorated_body_scans_original_source(self):
        import functools

        def logged(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                return fn(*args, **kwargs)
            return wrapper

        @logged
        def body(self):
            yield from self.inp.read()
            yield wait(SimTime.ns(1))

        sites = scan_process(body)
        assert [s.kind for s in sites] == ["channel", "wait"]

    def test_nested_definition_dedents_and_keeps_lines(self):
        import inspect

        def make():
            def body(self):
                yield from self.inp.read()
            return body

        body = make()
        sites = scan_process(body)
        first_line = inspect.getsourcelines(body)[1]
        assert [s.detail for s in sites] == ["self.inp.read"]
        assert sites[0].lineno == first_line + 1  # the read, one line in

    def test_annotate_listing_numbering_on_nested_body(self):
        def make():
            def body(self):
                yield from self.inp.read()
                yield wait(SimTime.ns(2))
                yield from self.out.write(1)
            return body

        listing = annotate_listing(make())
        lines = listing.splitlines()
        assert lines[1].endswith("# <- N1")
        assert lines[2].endswith("# <- N2")
        assert lines[3].endswith("# <- N3")
        assert "# <-" not in lines[0]


class TestConfidenceIntervals:
    def _stats_with(self, samples):
        from repro.segments import NodeId, ProcessGraph
        graph = ProcessGraph("p")
        node = NodeId("wait", "", 1)
        graph.touch_node(node)
        for value in samples:
            graph.touch_segment(graph.entry, node, cycles=value)
        return graph.segment("N0", "N1")

    def test_single_observation_collapses(self):
        stats = self._stats_with([10.0])
        assert stats.confidence_interval() == (10.0, 10.0)
        assert stats.variance_cycles == 0.0

    def test_constant_samples_zero_width(self):
        stats = self._stats_with([5.0] * 10)
        low, high = stats.confidence_interval()
        assert low == high == 5.0

    def test_interval_contains_mean(self):
        stats = self._stats_with([10.0, 20.0, 30.0, 40.0])
        low, high = stats.confidence_interval()
        assert low < stats.mean_cycles < high
        assert stats.variance_cycles == pytest.approx(125.0)

    def test_width_shrinks_with_samples(self):
        few = self._stats_with([10.0, 20.0] * 2)
        many = self._stats_with([10.0, 20.0] * 50)
        few_width = few.confidence_interval()[1] - few.confidence_interval()[0]
        many_width = many.confidence_interval()[1] - many.confidence_interval()[0]
        assert many_width < few_width

    def test_z_scaling(self):
        stats = self._stats_with([1.0, 2.0, 3.0])
        narrow = stats.confidence_interval(z=1.0)
        wide = stats.confidence_interval(z=3.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestCoverage:
    def _run_with_condition(self, take_branch: bool):
        from repro.segments import SegmentTracker, coverage_report
        sim = Simulator()
        tracker = SegmentTracker()
        sim.add_observer(tracker)
        ch1 = sim.fifo("ch1")
        ch2 = sim.fifo("ch2")
        top = sim.module("top")

        def process():
            value = yield from ch1.read()
            if value > 0:
                yield from ch2.write(value)
            yield wait(SimTime.ns(1))

        def environment():
            yield from ch1.write(1 if take_branch else -1)
            if take_branch:
                yield from ch2.read()

        top.add_process(process)
        top.add_process(environment)
        sim.run()
        return coverage_report(process, tracker.graph_of("top.process"))

    def test_full_coverage_when_branch_taken(self):
        report = self._run_with_condition(take_branch=True)
        assert report.complete
        assert report.ratio == 1.0
        assert "3/3" in report.describe()

    def test_missed_site_reported(self):
        report = self._run_with_condition(take_branch=False)
        assert not report.complete
        assert len(report.missed) == 1
        assert report.missed[0].detail == "ch2.write"
        assert "MISSED" in report.describe()
