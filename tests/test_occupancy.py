"""Occupancy analysis and Gantt rendering tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimTime, Simulator, wait
from repro.annotate import AInt
from repro.core import (
    PerformanceLibrary,
    assert_serialized,
    merge_intervals,
    overlap_fs,
    render_gantt,
    total_busy_fs,
)
from repro.errors import ReproError
from repro.platform import Mapping, make_cpu, make_fabric

interval = st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
    lambda pair: (min(pair), max(pair) + 1)
)


class TestIntervalAlgebra:
    def test_merge_coalesces(self):
        assert merge_intervals([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_total_busy(self):
        assert total_busy_fs([(0, 5), (3, 8)]) == 8

    def test_overlap(self):
        assert overlap_fs([(0, 10)], [(5, 15)]) == 5
        assert overlap_fs([(0, 5)], [(5, 10)]) == 0
        assert overlap_fs([(0, 2), (4, 6)], [(1, 5)]) == 2

    @given(st.lists(interval, max_size=15))
    @settings(max_examples=50)
    def test_merge_invariants(self, intervals):
        merged = merge_intervals(intervals)
        # sorted, disjoint, same coverage
        assert merged == sorted(merged)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        assert total_busy_fs(intervals) == sum(e - s for s, e in merged)

    @given(st.lists(interval, max_size=10), st.lists(interval, max_size=10))
    @settings(max_examples=50)
    def test_overlap_symmetric_and_bounded(self, a, b):
        ab = overlap_fs(a, b)
        assert ab == overlap_fs(b, a)
        assert ab <= min(total_busy_fs(a) or 0, total_busy_fs(b) or 0) \
            if a and b else ab == 0


def _two_process_design(calibrated_costs, shared_cpu: bool):
    sim = Simulator()
    top = sim.module("top")

    def make(name, iterations):
        def body():
            acc = AInt(0)
            for k in range(iterations):
                acc = acc + k
            yield wait(SimTime.fs(0))
        body.__name__ = name
        return top.add_process(body, name=name)

    p1 = make("p1", 80)
    p2 = make("p2", 120)
    mapping = Mapping()
    if shared_cpu:
        cpu = make_cpu("cpu0", costs=calibrated_costs)
        mapping.assign(p1, cpu)
        mapping.assign(p2, cpu)
    else:
        mapping.assign(p1, make_fabric("hw1"))
        mapping.assign(p2, make_fabric("hw2"))
    perf = PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    return perf, final


class TestSimulationOccupancy:
    def test_sw_processes_never_overlap(self, calibrated_costs):
        perf, _ = _two_process_design(calibrated_costs, shared_cpu=True)
        assert_serialized(perf, ["top.p1", "top.p2"])
        assert overlap_fs(perf.stats["top.p1"].intervals,
                          perf.stats["top.p2"].intervals) == 0

    def test_hw_processes_do_overlap(self, calibrated_costs):
        perf, _ = _two_process_design(calibrated_costs, shared_cpu=False)
        assert overlap_fs(perf.stats["top.p1"].intervals,
                          perf.stats["top.p2"].intervals) > 0
        with pytest.raises(ReproError, match="overlap"):
            assert_serialized(perf, ["top.p1", "top.p2"])

    def test_intervals_sum_to_busy_time(self, calibrated_costs):
        perf, _ = _two_process_design(calibrated_costs, shared_cpu=True)
        for stats in perf.stats.values():
            assert total_busy_fs(stats.intervals) == \
                stats.busy_time.femtoseconds

    def test_gantt_renders(self, calibrated_costs):
        perf, final = _two_process_design(calibrated_costs, shared_cpu=True)
        chart = render_gantt(perf, final, width=40)
        assert "top.p1" in chart and "top.p2" in chart
        assert "#" in chart
        lines = chart.splitlines()[1:]
        assert all("|" in line for line in lines)

    def test_gantt_empty_run_rejected(self, calibrated_costs):
        perf, _ = _two_process_design(calibrated_costs, shared_cpu=True)
        with pytest.raises(ReproError):
            render_gantt(perf, SimTime(0))
