"""Property-based invariants of the strict-timed transformation.

Hypothesis generates random pipeline topologies and workloads; for every
one the timed simulation must (a) compute exactly what the untimed
specification computes, (b) keep each sequential resource's busy time
within the simulated span, and (c) keep per-process busy time equal to
the sum of its occupancy intervals.
"""

from hypothesis import given, settings, strategies as st

from repro import SimTime, Simulator, wait
from repro.annotate import AInt
from repro.core import PerformanceLibrary, overlap_fs, total_busy_fs
from repro.platform import Mapping, make_cpu, make_fabric
from repro.annotate import uniform_costs


def _build_pipeline(stage_work, items, mapping_plan, costs):
    """A linear pipeline: source values flow through compute stages."""
    sim = Simulator()
    top = sim.module("top")
    links = [sim.fifo(f"l{i}", capacity=2) for i in range(len(stage_work) + 1)]
    outputs = []

    def source():
        for i in range(items):
            yield from links[0].write(i + 1)

    def stage(index, work):
        def body():
            for _ in range(items):
                value = yield from links[index].read()
                acc = AInt(int(value))
                for k in range(work):
                    acc = acc * 3 + k
                    acc = acc & 0xFFFFF
                yield from links[index + 1].write(int(acc))
        body.__name__ = f"stage{index}"
        return body

    def sink():
        for _ in range(items):
            outputs.append((yield from links[-1].read()))

    processes = [top.add_process(source)]
    for index, work in enumerate(stage_work):
        processes.append(top.add_process(stage(index, work),
                                         name=f"stage{index}"))
    processes.append(top.add_process(sink))

    perf = None
    resources = {}
    if mapping_plan is not None:
        mapping = Mapping()
        from repro.platform import EnvironmentResource
        env = EnvironmentResource("tb")
        mapping.assign(processes[0], env)
        mapping.assign(processes[-1], env)
        for process, choice in zip(processes[1:-1], mapping_plan):
            if choice not in resources:
                if choice.startswith("cpu"):
                    resources[choice] = make_cpu(choice, costs=costs,
                                                 rtos=None)
                else:
                    resources[choice] = make_fabric(choice)
            mapping.assign(process, resources[choice])
        perf = PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    sim.assert_quiescent()
    return outputs, perf, resources, final


@given(
    stage_work=st.lists(st.integers(min_value=1, max_value=30),
                        min_size=1, max_size=4),
    items=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_timed_pipeline_invariants(stage_work, items, data):
    costs = uniform_costs()
    choices = ["cpu0", "cpu1", "hw0"]
    mapping_plan = [data.draw(st.sampled_from(choices))
                    for _ in stage_work]

    untimed_out, _, _, _ = _build_pipeline(stage_work, items, None, costs)
    timed_out, perf, resources, final = _build_pipeline(
        stage_work, items, mapping_plan, costs)

    # (a) functional invariance
    assert timed_out == untimed_out

    # (b) wall-clock bounds per sequential resource
    for name, resource in resources.items():
        if name.startswith("cpu"):
            assert resource.busy_time.femtoseconds <= final.femtoseconds

    # (c) stats consistency + (d) serialization on shared CPUs
    by_resource = {}
    for process_name, stats in perf.stats.items():
        assert total_busy_fs(stats.intervals) == stats.busy_time.femtoseconds
        by_resource.setdefault(stats.resource, []).append(stats)
    for name, stats_list in by_resource.items():
        if not name.startswith("cpu"):
            continue
        for i, first in enumerate(stats_list):
            for second in stats_list[i + 1:]:
                assert overlap_fs(first.intervals, second.intervals) == 0
