"""Evolutionary design-space exploration: the golden acceptance suite.

The subsystem's contract has three load-bearing claims, each asserted
the hard way here:

* **Golden optimum** — the seeded search over the Fig. 4 allocation
  space finds the exhaustive grid's known MCDM optimum within 25% of
  the grid's evaluations, and its canonical outcome matches
  ``tests/golden/dse_fig4_front.json`` byte for byte.
* **Cached fitness** — every fitness evaluation goes through the
  campaign's content-addressed result cache: a cold search simulates
  exactly its unique genomes, survivor re-evaluations are cache hits,
  and a warm re-run of the whole search performs *zero* simulations.
* **Determinism** — the same seed yields the same canonical payload
  regardless of cache warmth (the spawned-pool half lives in
  ``test_dse_props.py``, fault tolerance in ``test_dse_faults.py``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.batch import Campaign, ResultCache
from repro.dse import (
    DseError,
    DseObserver,
    DseSettings,
    Evolution,
    Gene,
    SearchSpace,
    canonical_payload,
    fig4_space,
    parse_objectives,
    ranked_front,
    render_json,
    resolve_space,
    screening_genomes,
    write_report,
)
from repro.dse.objectives import objective_vector

HERE = pathlib.Path(__file__).resolve().parent
GOLDEN = HERE / "golden"

#: The golden scenario: seed 0 over the 64-point fig4 grid, capped at
#: 16 unique evaluations — 25% of what the exhaustive sweep costs.
GOLDEN_SETTINGS = DseSettings(seed=0, population=8, generations=6,
                              budget=16)


def _fig4():
    return fig4_space(max_units_per_class=4)


def _objectives():
    return parse_objectives("time,power,cost")


def _search(space=None, objectives=None, settings=GOLDEN_SETTINGS, **kwargs):
    return Evolution(space if space is not None else _fig4(),
                     objectives if objectives is not None else _objectives(),
                     settings, **kwargs)


# ---------------------------------------------------------------------------
# Golden optimum
# ---------------------------------------------------------------------------

class TestGoldenOptimum:
    def test_grid_optimum_is_the_known_point(self):
        # The ground truth the search must recover: exhaustively
        # evaluate the whole grid, rank its front.  The minimal
        # allocation wins under equal (time, power, cost) weights.
        space, objectives = _fig4(), _objectives()
        genomes = list(space.all_genomes())
        results = Campaign([space.decode(g) for g in genomes],
                           workers=0).run()
        assert all(r.ok for r in results)
        entries = sorted((g, objective_vector(r.payload, objectives))
                         for g, r in zip(genomes, results))
        front = ranked_front(entries)
        assert front[0].genome == (1, 1, 1)
        # ... with a real margin, so the decision is not a tie-break.
        assert front[1].score - front[0].score > 0.01

    def test_search_finds_optimum_within_quarter_budget(self):
        space = _fig4()
        result = _search(space).run()
        assert result.best.genome == (1, 1, 1)
        assert result.evaluations <= space.size() // 4
        assert result.grid_size == 64

    def test_canonical_payload_matches_golden(self):
        result = _search().run()
        golden = (GOLDEN / "dse_fig4_front.json").read_text()
        assert render_json(canonical_payload(result)) == golden

    def test_golden_front_is_pareto_consistent(self):
        # The committed golden front must itself be sound: ranks are
        # 1..n by ascending score, and no member dominates another.
        payload = json.loads((GOLDEN / "dse_fig4_front.json").read_text())
        front = payload["front"]
        assert [p["rank"] for p in front] == list(range(1, len(front) + 1))
        scores = [p["score"] for p in front]
        assert scores == sorted(scores)
        names = [o["name"] for o in payload["objectives"]]
        vectors = [tuple(p["objectives"][n] for n in names) for p in front]
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not (all(x <= y for x, y in zip(a, b))
                                and any(x < y for x, y in zip(a, b)))
        assert payload["best"]["point"] == {"alu": 1, "mem": 1, "mul": 1}


# ---------------------------------------------------------------------------
# Cached fitness: re-evaluations are free and provably so
# ---------------------------------------------------------------------------

class TestCachedFitness:
    def test_cold_search_simulates_exactly_its_unique_genomes(self, tmp_path):
        result = _search(cache=tmp_path / "cache").run()
        totals = result.totals()
        assert totals["simulated"] == result.evaluations
        # Elites and re-discovered individuals were re-submitted, and
        # every one of those re-submissions hit the cache.
        assert result.submitted > result.evaluations
        assert totals["cache_hits"] == result.submitted - result.evaluations

    def test_warm_rerun_performs_zero_new_simulations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = _search(cache=cache).run()
        warm = _search(cache=cache).run()
        totals = warm.totals()
        assert totals["simulated"] == 0
        assert totals["cache_hits"] == warm.submitted
        assert render_json(canonical_payload(warm)) == \
            render_json(canonical_payload(cold))

    def test_every_generation_after_first_reuses_survivors(self, tmp_path):
        result = _search(cache=tmp_path / "cache").run()
        assert len(result.generation_metrics) > 1
        for metrics in result.generation_metrics[1:]:
            # Each later generation re-submits at least its elite, and
            # all its previously-seen genomes come back as cache hits.
            assert metrics["cache_hits"] == \
                metrics["submitted"] - metrics["new_evaluations"]
            assert metrics["cache_hits"] >= 1

    def test_cacheless_search_same_outcome_more_simulations(self):
        result = _search(cache=None).run()
        totals = result.totals()
        assert totals["cache_hits"] == 0
        assert totals["simulated"] == result.submitted
        golden = (GOLDEN / "dse_fig4_front.json").read_text()
        assert render_json(canonical_payload(result)) == golden


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------

def _probe_space(n=6, name="probe-line"):
    """A tiny deterministic space over the probe runner (fast)."""
    return SearchSpace(name, "probe",
                       [Gene.int_range("value", 0, n - 1)],
                       base_params={"behavior": "ok"})


class TestEngine:
    def test_small_space_is_searched_exhaustively(self):
        space = _probe_space(4)
        result = Evolution(space, parse_objectives("value=value"),
                           DseSettings(seed=1, population=8,
                                       generations=5)).run()
        assert result.evaluations == space.size() == 4
        assert len(result.trajectory) == 1     # one exhaustive generation
        assert result.best.genome == (0,)

    def test_budget_is_a_hard_cap_on_unique_evaluations(self):
        result = _search(settings=DseSettings(seed=0, population=8,
                                              generations=10,
                                              budget=10)).run()
        assert result.evaluations <= 10

    def test_generations_never_submit_duplicate_configs(self):
        result = _search().run()
        for record in result.trajectory:
            genomes = [tuple(p["genome"]) for p in record.population]
            assert len(genomes) == len(set(genomes))

    def test_observer_generation_hooks_fire_in_order(self):
        calls = []

        class Spy(DseObserver):
            def on_generation_start(self, generation, genomes):
                calls.append(("start", generation, len(genomes)))

            def on_generation_end(self, generation, entries, metrics):
                calls.append(("end", generation, len(entries)))

            def on_search_end(self, result):
                calls.append(("done", result.evaluations))

        result = _search(observers=[Spy()]).run()
        starts = [c for c in calls if c[0] == "start"]
        ends = [c for c in calls if c[0] == "end"]
        assert len(starts) == len(ends) == len(result.trajectory)
        assert calls[-1] == ("done", result.evaluations)
        assert [c[1] for c in starts] == list(range(len(starts)))

    def test_screening_seeds_center_and_corners(self):
        space = _fig4()
        genomes = screening_genomes(space)
        assert genomes[0] == (2, 2, 2)          # center (lower middle of 1..4)
        assert set(genomes[1:]) == {(a, m, u) for a in (1, 4)
                                    for m in (1, 4) for u in (1, 4)}
        limited = screening_genomes(space, limit=5)
        assert len(limited) == 5
        assert limited[0] == (2, 2, 2)
        assert set(limited) <= set(genomes)

    def test_failed_evaluation_raises_dse_error(self):
        space = SearchSpace("probe-fail", "probe",
                            [Gene.int_range("value", 0, 3)],
                            base_params={"behavior": "fail"})
        with pytest.raises(DseError, match="failed after retries"):
            Evolution(space, parse_objectives("value=value"),
                      DseSettings(seed=0, population=4, generations=1),
                      retries=0).run()

    def test_settings_validation(self):
        with pytest.raises(DseError):
            DseSettings(population=1).validated()
        with pytest.raises(DseError):
            DseSettings(budget=0).validated()
        with pytest.raises(DseError):
            DseSettings(elites=8, population=8).validated()
        with pytest.raises(DseError):
            Evolution(_probe_space(), parse_objectives("value=value"),
                      DseSettings(), weights=(1.0, 2.0), workers=0)


# ---------------------------------------------------------------------------
# Report and CLI
# ---------------------------------------------------------------------------

class TestReportAndCli:
    def test_report_separates_canonical_from_execution(self, tmp_path):
        result = _search().run()
        payload = write_report(result, tmp_path / "report.json")
        on_disk = json.loads((tmp_path / "report.json").read_text())
        assert on_disk == payload
        execution = payload.pop("execution")
        assert payload == canonical_payload(result)
        # Cacheless run: every submission simulated, nothing hit.
        assert execution["totals"]["simulated"] == result.submitted

    def test_cli_dse_runs_golden_search(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "front.json"
        code = main(["dse", "--space", "fig4", "--seed", "0",
                     "--budget", "16", "--serial", "--no-cache",
                     "--quiet", "--output", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "alu=1,mem=1,mul=1" in text
        payload = json.loads(out.read_text())
        assert payload["best"]["genome"] == [1, 1, 1]
        # The CLI's canonical half is the same golden contract.
        payload.pop("execution")
        golden = json.loads((GOLDEN / "dse_fig4_front.json").read_text())
        assert payload == golden

    def test_cli_rejects_unknown_space_and_bad_weights(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown space"):
            main(["dse", "--space", "nope", "--no-cache"])
        with pytest.raises(SystemExit, match="weights"):
            main(["dse", "--space", "fig4", "--weights", "a,b",
                  "--no-cache"])

    def test_space_spec_file_round_trip(self, tmp_path):
        space = _fig4()
        spec_path = tmp_path / "space.json"
        spec_path.write_text(json.dumps(space.to_spec()))
        loaded = resolve_space(str(spec_path))
        assert loaded.to_spec() == space.to_spec()
        assert [loaded.decode(g).cache_key() for g in loaded.all_genomes()] \
            == [space.decode(g).cache_key() for g in space.all_genomes()]
