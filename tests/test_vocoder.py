"""Vocoder pipeline tests: stage correctness and backend agreement."""

import pytest

from repro import Simulator
from repro.iss.machine import Machine
from repro.iss.runtime import prepare_program, run_program
from repro.workloads.vocoder import (
    MAX_LAG,
    MIN_LAG,
    ORDER,
    STAGE_NAMES,
    SUBFRAME,
    acb_search,
    annotated_executor,
    build_vocoder,
    icb_search,
    lpc_interpolate,
    lsp_estimate,
    make_frames,
    make_stages,
    plain_executor,
    postprocess,
    run_reference,
)
from repro.workloads.vocoder.lsp import autocorrelation, levinson_durbin


class TestKernels:
    def test_autocorrelation_peak_at_zero_lag(self):
        x = [((i * 31) % 64) - 32 for i in range(80)]
        r = [0] * (ORDER + 1)
        autocorrelation(x, r, len(x), ORDER)
        assert r[0] >= max(abs(v) for v in r[1:])

    def test_autocorrelation_detects_period(self):
        period = 8
        x = [100 if i % period == 0 else 0 for i in range(120)]
        r = [0] * (period + 1)
        autocorrelation(x, r, len(x), period)
        assert r[period] > r[period - 1]

    def test_levinson_stable_coefficients(self):
        x = [((i * 13) % 50) - 25 for i in range(160)]
        r = [0] * (ORDER + 1)
        a = [0] * (ORDER + 1)
        tmp = [0] * (ORDER + 1)
        autocorrelation(x, r, len(x), ORDER)
        levinson_durbin(r, a, tmp, ORDER)
        assert a[0] == 4096
        assert all(abs(v) < 4096 for v in a[1:])

    def test_levinson_degenerate_frame(self):
        """An all-zero frame must not divide by zero."""
        r = [0] * (ORDER + 1)
        a = [0] * (ORDER + 1)
        levinson_durbin(r, a, [0] * (ORDER + 1), ORDER)
        assert a[1:] == [0] * ORDER

    def test_lpc_interpolation_endpoints(self):
        a_prev = [4096] + [100] * ORDER
        a_new = [4096] + [500] * ORDER
        a_sub = [0] * (4 * (ORDER + 1))
        lpc_interpolate(a_prev, a_new, a_sub, ORDER, 4)
        # last subframe uses the new coefficients exactly
        last = a_sub[3 * (ORDER + 1): 4 * (ORDER + 1)]
        assert last == a_new
        # earlier subframes lie between the two sets
        first = a_sub[1: ORDER + 1]
        assert all(100 <= v <= 500 for v in first)

    def test_acb_finds_planted_period(self):
        lag = 40
        n = SUBFRAME
        pattern = [200 if i % lag == 0 else -10 for i in range(MAX_LAG + n)]
        target = pattern[MAX_LAG:MAX_LAG + n]
        found = acb_search(pattern, target, n, MIN_LAG, MAX_LAG)
        assert int(found) % lag == 0

    def test_icb_picks_peak_positions(self):
        target = [0] * SUBFRAME
        target[5] = -900   # track 1
        target[10] = 700   # track 2
        pulses = [0] * 4
        icb_search(target, pulses, SUBFRAME, 4)
        assert pulses[1] == 5
        assert pulses[2] == 10

    def test_postprocess_removes_dc(self):
        x = [1000] * 200   # pure DC
        y = [0] * 200
        postprocess(x, y, 200, [0, 0])
        assert abs(y[-1]) < abs(y[0])

    def test_postprocess_saturates(self):
        x = [100000, -100000] * 10
        y = [0] * 20
        postprocess(x, y, 20, [0, 0])
        assert max(y) <= 32767 and min(y) >= -32768

    def test_postprocess_state_carries_across_frames(self):
        x = [((i * 7) % 100) - 50 for i in range(80)]
        # one 80-sample call == two 40-sample calls with shared state
        y_once = [0] * 80
        postprocess(list(x), y_once, 80, [0, 0])
        y_split = [0] * 80
        state = [0, 0]
        a, b = [0] * 40, [0] * 40
        postprocess(x[:40], a, 40, state)
        postprocess(x[40:], b, 40, state)
        y_split = a + b
        assert y_split == y_once


class TestPipeline:
    def test_concurrent_matches_sequential_reference(self):
        frames = make_frames(4)
        reference = run_reference(frames)
        sim = Simulator()
        design = build_vocoder(sim, frames, annotate=False)
        sim.run()
        sim.assert_quiescent()
        assert len(design.results) == 4
        for got, expected in zip(design.results, reference):
            assert got["check"] == expected["check"]
            assert got["lags"] == expected["lags"]
            assert got["pulses"] == expected["pulses"]
            assert got["output"] == expected["output"]

    def test_annotated_pipeline_matches_plain(self):
        frames = make_frames(2)
        sim_a = Simulator()
        design_a = build_vocoder(sim_a, frames, annotate=True)
        sim_a.run()
        sim_b = Simulator()
        design_b = build_vocoder(sim_b, frames, annotate=False)
        sim_b.run()
        assert [p["check"] for p in design_a.results] == \
            [p["check"] for p in design_b.results]

    def test_executors_agree(self):
        frames = make_frames(2)
        plain = run_reference(frames, execute=plain_executor)
        annotated = run_reference(frames, execute=annotated_executor)
        assert [p["check"] for p in plain] == [p["check"] for p in annotated]
        assert [p["output"] for p in plain] == [p["output"] for p in annotated]

    def test_iss_executor_agrees(self):
        frames = make_frames(1)
        machine = Machine(memory_words=1 << 16)
        programs = {}
        for stage in make_stages():
            programs[stage.kernels[0].__name__] = (
                prepare_program(list(stage.kernels), entry=stage.kernels[0]),
                stage.kernels[0].__name__,
            )

        def iss_execute(fn, args):
            program, entry = programs[fn.__name__]
            return run_program(program, entry, args, machine=machine).return_value

        compiled = run_reference(frames, execute=iss_execute)
        plain = run_reference(frames)
        assert [p["check"] for p in compiled] == [p["check"] for p in plain]
        assert [p["lags"] for p in compiled] == [p["lags"] for p in plain]

    def test_stage_names_cover_table3(self):
        assert STAGE_NAMES == ("lsp_estim", "lpc_int", "acb_search",
                               "icb_search", "post_proc")
        assert [s.name for s in make_stages()] == list(STAGE_NAMES)

    def test_frames_shape(self):
        frames = make_frames(3, frame_length=160)
        assert len(frames) == 3
        assert all(len(f) == 160 for f in frames)
        flat = [v for f in frames for v in f]
        assert max(flat) < 8192 and min(flat) > -8192  # 13-bit-ish
