"""End-to-end integration tests exercising the full stack together.

These mirror the paper's flows at reduced scale: estimation accuracy on
a sequential benchmark against the ISS, the strict-timed vocoder, and
functional invariance of the timed transformation.
"""

import pytest

from repro import SimTime, Simulator, wait
from repro.capture import CaptureBoard, mean_period_ns, response_times_ns
from repro.core import PerformanceLibrary
from repro.iss import run_compiled
from repro.platform import (
    EnvironmentResource,
    Mapping,
    make_cpu,
    make_fabric,
)
from repro.workloads import wrap_args
from repro.workloads.fir import fir_filter, make_fir_inputs
from repro.workloads.vocoder import STAGE_NAMES, build_vocoder, make_frames


def test_mini_table1_flow(calibrated_costs):
    """A one-process design estimated by the library vs the ISS."""
    sim = Simulator()
    top = sim.module("top")
    args = make_fir_inputs(64, 8)

    def kernel():
        fir_filter(*wrap_args(args))
        yield wait(SimTime.fs(0))

    process = top.add_process(kernel)
    cpu = make_cpu("cpu0", costs=calibrated_costs, rtos=None)
    mapping = Mapping()
    mapping.assign(process, cpu)
    perf = PerformanceLibrary(mapping).attach(sim)
    final = sim.run()

    estimated = perf.stats["top.kernel"].cycles
    iss = run_compiled([fir_filter], args=make_fir_inputs(64, 8))
    error = abs(estimated - iss.cycles) / iss.cycles
    assert error < 0.15, f"error {100 * error:.1f}%"

    # the strict-timed simulation's final time reflects the estimate
    expected_time = cpu.clock.cycles_to_time(estimated)
    assert final.femtoseconds == pytest.approx(
        expected_time.femtoseconds, rel=1e-6)


def test_vocoder_strict_timed_run(calibrated_costs):
    """The full concurrent vocoder under the performance library."""
    frames = make_frames(2)
    sim = Simulator()
    design = build_vocoder(sim, frames, annotate=True)
    cpu = make_cpu("cpu0", costs=calibrated_costs)
    hw = make_fabric("hw0")
    env = EnvironmentResource("tb")
    mapping = Mapping()
    for name, process in design.processes.items():
        if name == "post_proc":
            mapping.assign(process, hw)
        elif name in STAGE_NAMES:
            mapping.assign(process, cpu)
        else:
            mapping.assign(process, env)
    perf = PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    sim.assert_quiescent()

    # functional output identical to the plain pipeline
    sim_plain = Simulator()
    design_plain = build_vocoder(sim_plain, frames, annotate=False)
    sim_plain.run()
    assert [p["check"] for p in design.results] == \
        [p["check"] for p in design_plain.results]

    # time advanced and every SW stage accumulated cycles
    assert final.femtoseconds > 0
    for stage in STAGE_NAMES:
        assert perf.stats[f"vocoder.{stage}"].cycles > 0
    # HW-mapped postproc ran on the fabric
    assert perf.stats["vocoder.post_proc"].resource == "hw0"
    assert hw.busy_time.femtoseconds > 0
    # the CPU serialized the four SW stages
    sw_busy = sum(perf.stats[f"vocoder.{s}"].busy_time.femtoseconds
                  for s in STAGE_NAMES if s != "post_proc")
    assert cpu.busy_time.femtoseconds == sw_busy


def test_capture_points_in_timed_pipeline(calibrated_costs):
    """Capture points measure throughput/latency of a timed pipeline."""
    sim = Simulator()
    board = CaptureBoard(sim)
    enq = board.point("enqueue")
    deq = board.point("dequeue")
    fifo = sim.fifo("link", capacity=2)
    top = sim.module("top")
    items = 5

    def producer():
        from repro.annotate import AInt
        for i in range(items):
            value = AInt(i)
            for _ in range(50):
                value = value + 1
            enq.hit(int(value))
            yield from fifo.write(int(value))

    def consumer():
        from repro.annotate import AInt
        for _ in range(items):
            value = yield from fifo.read()
            acc = AInt(value)
            for _ in range(100):
                acc = acc + 1
            deq.hit(int(acc))

    p1 = top.add_process(producer)
    p2 = top.add_process(consumer)
    cpu1 = make_cpu("cpu1", costs=calibrated_costs)
    cpu2 = make_cpu("cpu2", costs=calibrated_costs)
    mapping = Mapping()
    mapping.assign(p1, cpu1)
    mapping.assign(p2, cpu2)
    PerformanceLibrary(mapping).attach(sim)
    sim.run()
    sim.assert_quiescent()

    assert len(enq) == len(deq) == items
    latencies = response_times_ns(enq, deq)
    assert all(l > 0 for l in latencies)
    assert mean_period_ns(deq) > 0
    # steady state: the slower consumer paces the pipeline
    assert mean_period_ns(deq) >= mean_period_ns(enq) * 0.99


def test_timed_transformation_preserves_fifo_functionality(calibrated_costs):
    """Random-ish producer/consumer data is identical untimed vs timed."""
    def run(timed: bool):
        sim = Simulator()
        fifo = sim.fifo("f", capacity=3)
        top = sim.module("top")
        out = []

        def producer():
            from repro.annotate import AInt
            value = AInt(1)
            for i in range(20):
                value = value * 3 + i
                value = value % 10007
                yield from fifo.write(int(value))

        def consumer():
            for _ in range(20):
                out.append((yield from fifo.read()))

        p1 = top.add_process(producer)
        p2 = top.add_process(consumer)
        if timed:
            cpu = make_cpu("cpu", costs=calibrated_costs)
            mapping = Mapping()
            mapping.assign(p1, cpu)
            mapping.assign(p2, cpu)
            PerformanceLibrary(mapping).attach(sim)
        sim.run()
        sim.assert_quiescent()
        return out

    assert run(timed=False) == run(timed=True)


def test_resource_utilization_bounded(calibrated_costs):
    """A sequential resource can never be busier than the wall clock."""
    sim = Simulator()
    top = sim.module("top")

    def spin(n):
        def body():
            from repro.annotate import AInt
            acc = AInt(0)
            for _ in range(n):
                acc = acc + 1
            yield wait(SimTime.fs(0))
        return body

    cpu = make_cpu("cpu", costs=calibrated_costs)
    mapping = Mapping()
    for i, n in enumerate((50, 80, 120)):
        body = spin(n)
        body.__name__ = f"p{i}"
        mapping.assign(top.add_process(body, name=f"p{i}"), cpu)
    PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    assert cpu.busy_time.femtoseconds <= final.femtoseconds


def test_backpressure_paces_producer(calibrated_costs):
    """A slow consumer behind a capacity-1 FIFO throttles the producer:
    the producer's write completions space out at the consumer's rate."""
    sim = Simulator()
    fifo = sim.fifo("narrow", capacity=1)
    top = sim.module("top")
    from repro.capture import CaptureBoard, inter_arrival_ns
    board = CaptureBoard(sim)
    wrote = board.point("wrote")

    def producer():
        from repro.annotate import AInt
        for i in range(6):
            value = AInt(i)
            for _ in range(10):          # cheap producer work
                value = value + 1
            yield from fifo.write(int(value))
            wrote.hit()

    def consumer():
        from repro.annotate import AInt
        for _ in range(6):
            value = yield from fifo.read()
            acc = AInt(value)
            for _ in range(500):         # expensive consumer work
                acc = acc + 1

    p1 = top.add_process(producer)
    p2 = top.add_process(consumer)
    cpu1 = make_cpu("cpu1", costs=calibrated_costs, rtos=None)
    cpu2 = make_cpu("cpu2", costs=calibrated_costs, rtos=None)
    mapping = Mapping()
    mapping.assign(p1, cpu1)
    mapping.assign(p2, cpu2)
    perf = PerformanceLibrary(mapping).attach(sim)
    sim.run()
    sim.assert_quiescent()

    gaps = inter_arrival_ns(wrote)
    consumer_segment_ns = (
        perf.stats["top.consumer"].busy_time.to_ns() / 7  # 6 reads + exit
    )
    # steady-state writes are spaced at least one consumer segment apart
    assert all(gap >= consumer_segment_ns * 0.5 for gap in gaps[2:]), gaps


def test_rendezvous_under_timing(calibrated_costs):
    """CSP rendezvous: both parties meet at the later of their arrival
    times, in strict-timed mode too."""
    sim = Simulator()
    channel = sim.rendezvous("sync")
    top = sim.module("top")
    meet = {}

    def fast_writer():
        from repro.annotate import AInt
        value = AInt(1)
        for _ in range(5):
            value = value + 1
        yield from channel.write(int(value))
        meet["writer_done"] = sim.now

    def slow_reader():
        from repro.annotate import AInt
        acc = AInt(0)
        for _ in range(400):
            acc = acc + 1
        value = yield from channel.read()
        meet["reader_got"] = sim.now
        assert value == 6

    p1 = top.add_process(fast_writer)
    p2 = top.add_process(slow_reader)
    cpu1 = make_cpu("c1", costs=calibrated_costs, rtos=None)
    cpu2 = make_cpu("c2", costs=calibrated_costs, rtos=None)
    mapping = Mapping()
    mapping.assign(p1, cpu1)
    mapping.assign(p2, cpu2)
    perf = PerformanceLibrary(mapping).attach(sim)
    sim.run()
    sim.assert_quiescent()

    reader_segment = perf.stats["top.slow_reader"].busy_time
    # the rendezvous completed no earlier than the slow side's segment
    assert meet["reader_got"].femtoseconds >= reader_segment.femtoseconds / 2
    assert meet["writer_done"].femtoseconds >= \
        meet["reader_got"].femtoseconds * 0.99
