"""Hypothesis equivalence suite for the bytecode compile tier.

Property: for every kernel in the compiler's subset and every input,
the compiled program and the interpreted annotated run agree on the
return value, the final array contents, the charged cycle total and
the full per-operation count vector.  Kernels cover arithmetic,
branch and loop mixes, array traffic, mirrored comparisons, and
data-dependent branches that force the flag-gated dynamic fallback.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotate import aint, arange, make_array, uniform_costs
from repro.compilebc import (
    arg_shapes_of, compile_kernel, run_compiled, run_interpreted,
)
from repro.platform import DSP_SW_COSTS, OPENRISC_SW_COSTS

small = st.integers(min_value=-40, max_value=40)
tiny = st.integers(min_value=0, max_value=12)
values = st.lists(st.integers(min_value=-100, max_value=100),
                  min_size=1, max_size=12)

#: dsp-sw has the 0.5-cycle branch — the half-grid acid test.
TABLES = [OPENRISC_SW_COSTS, DSP_SW_COSTS,
          uniform_costs(cycles=2.5, name="prop-grid")]


def assert_equivalent(kernel, args):
    shapes = arg_shapes_of(list(args))
    program = compile_kernel(kernel, shapes)
    for costs in TABLES:
        i_result, i_cycles, i_counts, i_arrays = run_interpreted(
            kernel, [list(a) if isinstance(a, list) else a for a in args],
            costs)
        c_result, c_cycles, c_counts, c_arrays = run_compiled(
            program,
            [list(a) if isinstance(a, list) else a for a in args],
            costs)
        assert int(c_result) == int(i_result), costs.name
        assert c_arrays == i_arrays, costs.name
        assert c_cycles == i_cycles, costs.name
        assert c_counts == i_counts, costs.name


# --- kernels ---------------------------------------------------------------

def p_arith(a, b):
    x = a + b * 3 - (a ^ b)
    y = (x << 1) | (b & 7)
    z = y - (x >> 2) + (a % 5) + (b // 3) * 2
    return z + (0 - a)


def p_compare_mirror(a, b):
    # Mirrored comparisons: plain < annotated dispatches the reflected
    # dunder, which charges the *mirrored* op name.
    hits = 0
    if a < b:
        hits = hits + 1
    if 3 < b:
        hits = hits + 2
    if a >= 0:
        hits = hits + 4
    if 10 != b:
        hits = hits + 8
    return hits


def p_loops(a, n):
    total = 0
    for i in arange(0, n):
        for j in arange(0, 3):
            total = total + a + i * j
    k = 0
    while k < n:
        total = total - 1
        k = k + 1
    return total


def p_array(src, n):
    out = make_array(n)
    total = 0
    for i in arange(0, n):
        out[i] = src[i] + i
        total = total + out[i]
    for i in arange(0, n):
        src[i] = out[i]  # in-place mutation, write-back visible
    return total


def p_data_dependent(a, n):
    # v is PLAIN on some paths and ANNOT on others -> EITHER kind:
    # every charge involving v is flag-gated at runtime.
    v = 0
    best = 0
    for i in arange(0, n):
        if i > a:
            v = a
        else:
            v = v + 1
        if v > best:
            best = v
    return best + v


def p_abs_neg(a, b):
    x = a - b
    if x < 0:
        x = 0 - x
    return abs(x - 5) + (~a) + abs(b)


def p_aint_seed(a, n):
    acc = aint(0)
    for i in arange(0, n):
        acc = acc + (a & i)
    return acc


# --- properties ------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(a=small, b=small)
def test_arith_equivalence(a, b):
    assert_equivalent(p_arith, (a, b))


@settings(max_examples=30, deadline=None)
@given(a=small, b=small)
def test_compare_mirror_equivalence(a, b):
    assert_equivalent(p_compare_mirror, (a, b))


@settings(max_examples=25, deadline=None)
@given(a=small, n=tiny)
def test_loop_equivalence(a, n):
    assert_equivalent(p_loops, (a, n))


@settings(max_examples=25, deadline=None)
@given(src=values)
def test_array_equivalence(src):
    assert_equivalent(p_array, (src, len(src)))


@settings(max_examples=30, deadline=None)
@given(a=tiny, n=tiny)
def test_data_dependent_fallback_equivalence(a, n):
    assert_equivalent(p_data_dependent, (a, n))


@settings(max_examples=30, deadline=None)
@given(a=small, b=small)
def test_abs_neg_equivalence(a, b):
    assert_equivalent(p_abs_neg, (a, b))


@settings(max_examples=25, deadline=None)
@given(a=small, n=tiny)
def test_aint_seed_equivalence(a, n):
    assert_equivalent(p_aint_seed, (a, n))


def test_division_by_zero_matches_interpreted():
    def p_div(a, b):
        return a // b + a % b

    with pytest.raises(ZeroDivisionError):
        run_interpreted(p_div, [7, 0], OPENRISC_SW_COSTS)
    program = compile_kernel(p_div, ("int", "int"))
    with pytest.raises(ZeroDivisionError):
        run_compiled(program, [7, 0], OPENRISC_SW_COSTS)
