"""Batch subsystem: configs, cache, campaign orchestration, worker pool.

Pool tests run under the ``spawn`` start method (pinned session-wide in
``conftest.py``) so every worker is a fresh interpreter — the same
regime the determinism property suite certifies.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.batch import (
    BatchError,
    Campaign,
    CampaignObserver,
    ResultCache,
    RunConfig,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    WorkerPool,
    chunk_size,
    execute_config,
    fig4_sweep_configs,
    runner_kinds,
    workload_sweep_configs,
)

TOPOLOGY = dict(stages=2, messages=4, capacities=[1, 2], waits_ns=[0, 3],
                seed=7)


# -- RunConfig / cache keys ----------------------------------------------


def test_cache_key_ignores_label_and_kwarg_order():
    a = RunConfig.of("topology", "first", **TOPOLOGY)
    b = RunConfig.of("topology", "second",
                     **dict(reversed(list(TOPOLOGY.items()))))
    assert a.cache_key() == b.cache_key()


def test_cache_key_separates_params_and_kinds():
    base = RunConfig.of("topology", **TOPOLOGY)
    changed = dict(TOPOLOGY, messages=5)
    assert base.cache_key() != RunConfig.of("topology", **changed).cache_key()
    assert base.cache_key() != RunConfig.of("probe", **TOPOLOGY).cache_key()


def test_params_round_trip_through_freezing():
    config = RunConfig.of("hw-point", allocation={"alu": 2, "mem": 1},
                          taps=12, evaluate_system=False)
    params = config.params_dict()
    assert params["allocation"] == {"alu": 2, "mem": 1}
    assert params["taps"] == 12
    assert params["evaluate_system"] is False


def test_unkeyable_param_rejected():
    with pytest.raises(BatchError):
        RunConfig.of("probe", fn=object())


def test_builtin_runner_kinds_registered():
    kinds = runner_kinds()
    for kind in ("workload", "hw-point", "topology", "probe"):
        assert kind in kinds
    with pytest.raises(BatchError):
        execute_config(RunConfig.of("no-such-kind"))


# -- ResultCache ----------------------------------------------------------


def test_cache_round_trip_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("ab" * 32) is None
    cache.put("ab" * 32, {"x": 1}, describe="t")
    assert cache.get("ab" * 32) == {"x": 1}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get("ab" * 32) is None


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" * 32
    cache.put(key, {"x": 2})
    cache.path_for(key).write_text("{ truncated", encoding="utf-8")
    assert cache.get(key) is None


# -- inline campaigns ------------------------------------------------------


def test_inline_campaign_matches_direct_execution(tmp_path):
    configs = fig4_sweep_configs(max_units_per_class=2)
    campaign = Campaign(configs, workers=0, cache=tmp_path / "c")
    results = campaign.run()
    assert [r.config for r in results] == configs
    assert all(r.ok and not r.cached and r.attempts == 1 for r in results)
    direct = execute_config(configs[0])
    assert results[0].payload == direct


def test_second_campaign_is_pure_cache_hits(tmp_path):
    configs = fig4_sweep_configs(max_units_per_class=2)
    first = Campaign(configs, workers=0, cache=tmp_path / "c").run()
    rerun = Campaign(configs, workers=0, cache=tmp_path / "c")
    second = rerun.run()
    assert rerun.metrics.cache_hits == len(configs)
    assert all(r.cached and r.attempts == 0 for r in second)
    assert [r.payload for r in first] == [r.payload for r in second]


def test_retry_recovers_from_transient_failure(worker_tmp_path):
    marker = worker_tmp_path / "marker"
    config = RunConfig.of("probe", "flaky", behavior="fail-until-marker",
                          marker=str(marker))
    campaign = Campaign([config], workers=0, cache=None, retries=2)
    result = campaign.run()[0]
    assert result.status == STATUS_OK
    assert result.attempts == 2
    assert campaign.metrics.retries == 1


def test_failure_reported_after_retries_exhausted():
    config = RunConfig.of("probe", "broken", behavior="fail")
    campaign = Campaign([config], workers=0, cache=None, retries=1)
    result = campaign.run()[0]
    assert result.status == STATUS_FAILED
    assert result.attempts == 2
    assert "probe asked to fail" in result.error
    assert result.payload is None
    assert campaign.metrics.failed == 1


def test_failed_runs_are_not_cached(tmp_path):
    config = RunConfig.of("probe", "broken", behavior="fail")
    cache = ResultCache(tmp_path)
    Campaign([config], workers=0, cache=cache, retries=0).run()
    assert len(cache) == 0


def test_observer_receives_lifecycle_events(tmp_path):
    events = []

    class Recorder(CampaignObserver):
        def on_campaign_start(self, total):
            events.append(("start", total))

        def on_run_started(self, config, attempt):
            events.append(("run", config.name, attempt))

        def on_run_finished(self, result):
            events.append(("done", result.config.name, result.cached))

        def on_cache_hit(self, result):
            events.append(("hit", result.config.name))

        def on_campaign_end(self, metrics):
            events.append(("end", metrics.completed))

    config = RunConfig.of("probe", "p", behavior="ok", value=3)
    Campaign([config], workers=0, cache=tmp_path,
             observers=[Recorder()]).run()
    assert events == [("start", 1), ("run", "p", 1), ("done", "p", False),
                      ("end", 1)]
    events.clear()
    Campaign([config], workers=0, cache=tmp_path,
             observers=[Recorder()]).run()
    assert events == [("start", 1), ("hit", "p"), ("done", "p", True),
                      ("end", 1)]


# -- pooled campaigns (spawn workers) -------------------------------------


def test_pool_results_match_inline(tmp_path):
    configs = [
        RunConfig.of("topology", f"t{seed}", **dict(TOPOLOGY, seed=seed))
        for seed in range(5)
    ]
    inline = [r.payload for r in Campaign(configs, workers=0,
                                          cache=None).run()]
    pooled = Campaign(configs, workers=2, cache=tmp_path)
    results = pooled.run()
    assert pooled.start_method == "spawn"
    assert [r.payload for r in results] == inline
    assert all(r.ok for r in results)


def test_pool_worker_crash_is_retried_and_isolated(worker_tmp_path):
    marker = worker_tmp_path / "crash-marker"
    configs = [
        RunConfig.of("probe", "ok-1", behavior="ok", value=1),
        RunConfig.of("probe", "flaky", behavior="fail-until-marker",
                     marker=str(marker)),
        RunConfig.of("probe", "ok-2", behavior="ok", value=2),
    ]
    campaign = Campaign(configs, workers=2, cache=None, retries=2)
    results = campaign.run()
    assert [r.status for r in results] == [STATUS_OK] * 3
    assert results[1].attempts == 2


def test_pool_timeout_kills_and_reports():
    configs = [RunConfig.of("probe", "hang", behavior="sleep", seconds=60)]
    campaign = Campaign(configs, workers=2, cache=None, retries=0,
                        timeout_s=3.0)
    started = time.perf_counter()
    result = campaign.run()[0]
    elapsed = time.perf_counter() - started
    assert result.status == STATUS_TIMEOUT
    assert elapsed < 30.0


def test_pool_overlaps_sleeping_runs():
    """Four concurrent workers drain sleep-bound points ~in parallel.

    Sleeping probes measure orchestration concurrency without needing
    multiple CPUs, so this holds on single-core CI too.
    """
    naps = 8
    per_nap_s = 0.5
    configs = [RunConfig.of("probe", f"nap{i}", behavior="sleep",
                            seconds=per_nap_s, value=i)
               for i in range(naps)]
    campaign = Campaign(configs, workers=4, cache=None, retries=0)
    started = time.perf_counter()
    results = campaign.run()
    elapsed = time.perf_counter() - started
    assert all(r.ok for r in results)
    serial_floor = naps * per_nap_s
    assert elapsed < 0.75 * serial_floor, (
        f"pool took {elapsed:.2f}s vs {serial_floor:.2f}s serial floor"
    )
    # Distinct worker processes actually participated.
    pids = {r.payload["pid"] for r in results}
    assert len(pids) > 1
    assert os.getpid() not in pids


# -- persistent WorkerPool across campaigns --------------------------------


def test_warm_pool_survives_across_campaigns():
    """One pool serves two campaigns with the same worker processes."""
    configs = [RunConfig.of("probe", f"w{i}", behavior="warmth", value=i)
               for i in range(6)]
    with WorkerPool(2) as pool:
        first = Campaign(configs, workers=2, cache=None, pool=pool).run()
        second = Campaign(configs, workers=2, cache=None, pool=pool).run()
        assert pool.spawned == 2, "warm campaigns must not respawn workers"
    assert all(r.ok for r in first + second)
    # The exact same processes served both campaigns...
    assert {r.payload["pid"] for r in first} == \
        {r.payload["pid"] for r in second}
    # ...and their in-process served counters kept climbing, which a
    # fresh-per-campaign pool could never show.
    assert max(r.payload["served"] for r in second) > \
        max(r.payload["served"] for r in first)


def test_pool_campaign_matches_owned_pool_results(tmp_path):
    configs = [
        RunConfig.of("topology", f"t{seed}", **dict(TOPOLOGY, seed=seed))
        for seed in range(4)
    ]
    inline = [r.payload for r in Campaign(configs, workers=0,
                                          cache=None).run()]
    with WorkerPool(2) as pool:
        shared = Campaign(configs, workers=2, cache=None, pool=pool).run()
    assert [r.payload for r in shared] == inline


def test_cache_hits_never_reach_the_pool(tmp_path):
    configs = fig4_sweep_configs(max_units_per_class=2)
    Campaign(configs, workers=0, cache=tmp_path / "c").run()
    with WorkerPool(2) as pool:
        rerun = Campaign(configs, workers=2, cache=tmp_path / "c", pool=pool)
        results = rerun.run()
        assert rerun.metrics.cache_hits == len(configs)
        assert all(r.cached for r in results)
        # The parent answered every hit itself: no worker was ever needed.
        assert pool.spawned == 0


def test_pool_start_method_conflict_rejected():
    with WorkerPool(1, start_method="spawn") as pool:
        with pytest.raises(BatchError):
            Campaign([RunConfig.of("probe", behavior="ok")],
                     cache=None, pool=pool, start_method="fork")


def test_shutdown_pool_rejects_further_use():
    pool = WorkerPool(1)
    pool.shutdown()
    with pytest.raises(BatchError):
        pool.ensure(1)


# -- chunked dispatch ------------------------------------------------------


def test_chunk_size_heuristics():
    # Short queues keep per-task dispatch (maximum overlap)...
    assert chunk_size(1, 4) == 1
    assert chunk_size(7, 2) == 1
    # ...deep queues amortise messages, capped so workers stay balanced.
    assert chunk_size(80, 2) == 10
    assert chunk_size(10_000, 2) == 16
    assert chunk_size(0, 4) == 1


def test_chunked_dispatch_matches_inline(tmp_path):
    """A queue deep enough to force chunks > 1 stays byte-identical."""
    configs = [
        RunConfig.of("topology", f"t{seed}", **dict(TOPOLOGY, seed=seed))
        for seed in range(24)
    ]
    assert chunk_size(len(configs), 2) > 1
    inline = [r.payload for r in Campaign(configs, workers=0,
                                          cache=None).run()]
    pooled = Campaign(configs, workers=2, cache=None).run()
    assert [r.payload for r in pooled] == inline


def test_mid_chunk_death_charges_only_the_head(worker_tmp_path):
    """A worker dying on a chunk's head requeues the rest attempt-free."""
    marker = worker_tmp_path / "die-once"
    configs = [RunConfig.of("probe", "dies", behavior="die",
                            marker=str(marker))]
    configs += [RunConfig.of("probe", f"ok{i}", behavior="ok", value=i)
                for i in range(7)]
    with WorkerPool(1) as pool:
        campaign = Campaign(configs, workers=1, cache=None, retries=1,
                            pool=pool)
        assert chunk_size(len(configs), 1) > 1
        results = campaign.run()
    assert [r.status for r in results] == [STATUS_OK] * len(configs)
    # Only the head of the torn chunk was charged an attempt.
    assert results[0].attempts == 2
    assert all(r.attempts == 1 for r in results[1:])
    assert campaign.metrics.worker_replacements == 1


def test_mid_chunk_timeout_requeues_the_rest(worker_tmp_path):
    configs = [RunConfig.of("probe", "hang", behavior="sleep", seconds=60)]
    configs += [RunConfig.of("probe", f"ok{i}", behavior="ok", value=i)
                for i in range(7)]
    with WorkerPool(1) as pool:
        campaign = Campaign(configs, workers=1, cache=None, retries=0,
                            timeout_s=3.0, pool=pool)
        assert chunk_size(len(configs), 1) > 1
        results = campaign.run()
    assert results[0].status == STATUS_TIMEOUT
    assert [r.status for r in results[1:]] == [STATUS_OK] * 7
    assert all(r.attempts == 1 for r in results[1:])


def test_workload_sweep_config_grid():
    configs = workload_sweep_configs(workloads=["fir", "euler"])
    assert [c.params_dict()["backend"] for c in configs] == \
        ["plain", "annotated", "iss"] * 2
    assert len({c.cache_key() for c in configs}) == len(configs)


# ---------------------------------------------------------------------------
# Per-run trace artifacts (repro.observe integration)
# ---------------------------------------------------------------------------

def test_trace_dir_writes_artifact_keyed_by_cache_hash(tmp_path):
    config = RunConfig.of("topology", **TOPOLOGY)
    campaign = Campaign([config], workers=0, cache=None,
                        trace_dir=tmp_path / "traces")
    (result,) = campaign.run()
    assert result.ok
    expected = tmp_path / "traces" / f"{config.cache_key()}.jsonl"
    assert result.payload["trace"] == str(expected)
    assert expected.exists()

    from repro.observe import read_jsonl
    records = read_jsonl(expected)
    assert records
    processes = {r.process for r in records}
    assert "top.producer" in processes and "top.consumer" in processes


def test_trace_artifact_does_not_change_the_cache_key(tmp_path):
    config = RunConfig.of("topology", **TOPOLOGY)
    untraced = Campaign([config], workers=0, cache=None).run()[0]
    traced = Campaign([config], workers=0, cache=None,
                      trace_dir=tmp_path / "traces").run()[0]
    # The simulation outcome is identical; only the artifact pointers
    # are added to the traced payload.
    payload = dict(traced.payload)
    trace = payload.pop("trace")
    assert trace
    assert payload.pop("trace_artifacts") == [trace]
    assert payload == untraced.payload


def test_without_trace_dir_no_artifacts_appear(tmp_path):
    config = RunConfig.of("topology", **TOPOLOGY)
    (result,) = Campaign([config], workers=0, cache=None).run()
    assert result.ok
    assert "trace" not in result.payload
