"""Real-time analysis extension tests."""

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import AInt
from repro.capture import CaptureBoard
from repro.core import PerformanceLibrary
from repro.errors import ReproError
from repro.platform import Mapping, make_cpu
from repro.rt import (
    Task,
    edf_test,
    response_time_analysis,
    rm_utilization_bound,
    rm_utilization_test,
    schedulability_report,
    task_from_measurements,
    total_utilization,
)


def us(value: float) -> float:
    return value * 1e3  # ns


class TestTaskModel:
    def test_utilization(self):
        task = Task("t", execution_ns=us(2), period_ns=us(10))
        assert task.utilization == pytest.approx(0.2)
        assert task.effective_deadline_ns == us(10)

    def test_explicit_deadline(self):
        task = Task("t", us(2), us(10), deadline_ns=us(5))
        assert task.effective_deadline_ns == us(5)

    def test_invalid_tasks_rejected(self):
        with pytest.raises(ReproError):
            Task("t", 0, us(10))
        with pytest.raises(ReproError):
            Task("t", us(1), 0)
        with pytest.raises(ReproError):
            Task("t", us(11), us(10))


class TestUtilizationTests:
    def test_ll_bound_values(self):
        assert rm_utilization_bound(1) == pytest.approx(1.0)
        assert rm_utilization_bound(2) == pytest.approx(0.8284, abs=1e-3)
        # asymptote ln 2
        assert rm_utilization_bound(1000) == pytest.approx(0.6934, abs=1e-3)

    def test_rm_test(self):
        light = [Task("a", us(1), us(10)), Task("b", us(2), us(20))]
        assert rm_utilization_test(light)
        heavy = [Task("a", us(9), us(10)), Task("b", us(2), us(20))]
        assert not rm_utilization_test(heavy)

    def test_edf_boundary(self):
        exact = [Task("a", us(5), us(10)), Task("b", us(10), us(20))]
        assert edf_test(exact)                      # U == 1.0 exactly
        over = [Task("a", us(6), us(10)), Task("b", us(10), us(20))]
        assert not edf_test(over)

    def test_edf_rejects_constrained_deadlines(self):
        tasks = [Task("a", us(1), us(10), deadline_ns=us(5))]
        with pytest.raises(ReproError, match="implicit deadlines"):
            edf_test(tasks)

    def test_empty_sets_rejected(self):
        with pytest.raises(ReproError):
            rm_utilization_test([])
        with pytest.raises(ReproError):
            edf_test([])
        with pytest.raises(ReproError):
            response_time_analysis([])


class TestResponseTimeAnalysis:
    def test_textbook_example(self):
        """Classic RTA example: C=(1,2,3), T=(4,6,10)."""
        tasks = [
            Task("t1", us(1), us(4)),
            Task("t2", us(2), us(6)),
            Task("t3", us(3), us(10)),
        ]
        result = response_time_analysis(tasks)
        assert result.schedulable
        assert result.response_ns["t1"] == pytest.approx(us(1))
        assert result.response_ns["t2"] == pytest.approx(us(3))
        # t3: R = 3 + ceil(R/4)*1 + ceil(R/6)*2 -> fixed point at 10
        assert result.response_ns["t3"] == pytest.approx(us(10))

    def test_detects_unschedulable(self):
        tasks = [
            Task("fast", us(3), us(5)),
            Task("slow", us(5), us(10)),
        ]
        result = response_time_analysis(tasks)
        assert not result.schedulable
        assert result.failing_task == "slow"

    def test_rta_beats_ll_bound(self):
        """A set over the LL bound can still be RTA-schedulable
        (harmonic periods)."""
        tasks = [Task("a", us(5), us(10)), Task("b", us(10), us(20))]
        assert not rm_utilization_test(tasks)   # U = 1.0 > 0.828
        assert response_time_analysis(tasks).schedulable

    def test_margin(self):
        tasks = [Task("a", us(2), us(10))]
        result = response_time_analysis(tasks)
        assert result.margin_ns(tasks[0]) == pytest.approx(us(8))

    def test_report_renders(self):
        tasks = [Task("a", us(1), us(4)), Task("b", us(2), us(6))]
        text = schedulability_report(tasks)
        assert "RM response-time : schedulable" in text
        assert "EDF utilization  : schedulable" in text


class TestExtractionFromSimulation:
    def test_task_from_measurements(self, calibrated_costs):
        sim = Simulator()
        board = CaptureBoard(sim)
        releases = board.point("releases")
        top = sim.module("top")
        period = SimTime.us(100)
        jobs = 6

        def periodic():
            for _ in range(jobs):
                releases.hit()
                acc = AInt(0)
                for k in range(120):
                    acc = acc + k
                yield wait(period)

        process = top.add_process(periodic)
        cpu = make_cpu("cpu0", costs=calibrated_costs, rtos=None)
        mapping = Mapping()
        mapping.assign(process, cpu)
        perf = PerformanceLibrary(mapping).attach(sim)
        sim.run()

        task = task_from_measurements("periodic", perf, "top.periodic",
                                      releases)
        # period = explicit wait + the job's own execution time
        assert task.period_ns >= period.to_ns()
        assert task.period_ns < period.to_ns() * 1.2
        assert task.execution_ns > 0
        assert task.utilization < 0.2
        assert total_utilization([task]) == task.utilization

        hard = task_from_measurements("periodic", perf, "top.periodic",
                                      releases, hard=True)
        assert hard.execution_ns >= task.execution_ns

    def test_unknown_process_rejected(self, calibrated_costs):
        sim = Simulator()
        board = CaptureBoard(sim)
        perf = PerformanceLibrary(Mapping())
        with pytest.raises(ReproError, match="no analysed process"):
            task_from_measurements("x", perf, "ghost", board.point("p"))
