"""Unit and integration tests for repro.compilebc — the bytecode tier.

The contract under test is *totals-exact equivalence*: a compiled
kernel must return the same value, perform the same array write-backs,
and charge the same cycle total and per-operation count vector as the
interpreted annotated run — on every cost table whose latencies live on
the half-integral grid.  Everything outside the compiler's subset must
degrade to the interpreted run, never to a wrong answer.
"""

import pytest

from repro.annotate import (
    MODE_SW,
    CostContext,
    OperationCosts,
    aint,
    annotated_function,
    arange,
    make_array,
    set_current,
    uniform_costs,
)
from repro.compilebc import (
    CompileCheckError,
    CompileTier,
    Unsupported,
    arg_shapes_of,
    check_entry,
    check_registry,
    compile_kernel,
    current_tier,
    run_compiled,
    run_interpreted,
    set_tier,
)
from repro.compilebc.program import NULL_CHARGER
from repro.platform import DSP_SW_COSTS, OPENRISC_SW_COSTS

COST_TABLES = [OPENRISC_SW_COSTS, DSP_SW_COSTS,
               uniform_costs(cycles=1.5, name="half-grid")]


# --- kernels under test ----------------------------------------------------

def k_arith(a, b):
    x = a + b * 3
    y = (a - b) ^ (a & b)
    z = (x << 2) | (y & 15)
    return z - (x >> 1)


def k_branch_loop(a, b):
    r = 0
    if a > b:
        r = a - b
    elif a == b:
        r = a * 2
    else:
        r = b - a
    while r > 10:
        r = r - 7
    return r


def k_array(src, n):
    dst = make_array(n)
    total = 0
    for i in arange(0, n):
        dst[i] = src[i] * 2
        total = total + dst[i]
    return total & 1048575


def k_either(a, n):
    # v joins PLAIN and ANNOT: its charges are data-dependent, so the
    # compiled code gates them behind a runtime flag (dynamic fallback).
    v = 0
    acc = 0
    for i in arange(0, n):
        if i > a:
            v = a
        acc = acc + v
    return acc


@annotated_function
def helper_sq(x):
    return x * x


def k_mixed_call(a, n):
    v = 0
    for i in arange(0, n):
        if i > a:
            v = a
    return helper_sq(v)  # EITHER-kind argument: outside the subset


def k_either_bound(a, n):
    # v is EITHER; the flag-gated charge for the loop bound `v + 1`
    # must land once before the loop, not per iteration (the body has
    # an `if`, so the loop is not hoistable and drains inside).
    v = 0
    for i in arange(0, n):
        if i > a:
            v = a
    acc = 0
    for j in range(v + 1):
        if j > 0:
            acc = acc + j
        acc = acc + 1
    return acc


def helper_fill(arr, a, n):
    # ends without a return: a pending flag-gated bound charge would be
    # dropped at the implicit function end if emit_for did not drain it
    v = 0
    for i in arange(0, n):
        if i > a:
            v = a
    for j in range(v + 1):
        arr[j] = arr[j] + 1


def k_bound_in_helper(arr, a, n):
    helper_fill(arr, a, n)
    return arr[0]


G_GAIN = 3


def k_global_gain(a):
    return a * G_GAIN


def k_float_real(a):
    return a * 1.5


def k_predicate(src, n, fast):
    # bool entry arg steering a branch per element: the shape kernels
    # toggle between quality modes with (fir's decimate flag idiom)
    total = 0
    for i in arange(0, n):
        v = src[i]
        if fast:
            total = total + v
        else:
            total = total + v * 3
    return total


def k_predicate_not(a, flag):
    r = a
    if not flag:
        r = r + 11
    while r > 10:
        r = r - 3
    return r


def k_bool_arith(flag):
    return flag + 1  # arithmetic on a predicate: outside the subset


def differential(kernel, args, costs):
    """Compiled vs interpreted on identical inputs; returns cycles."""
    program = compile_kernel(kernel, arg_shapes_of(list(args)))
    i_result, i_cycles, i_counts, i_arrays = run_interpreted(
        kernel, list(args), costs)
    c_result, c_cycles, c_counts, c_arrays = run_compiled(
        program, list(args), costs)
    assert int(c_result) == int(i_result)
    assert c_arrays == i_arrays
    assert c_cycles == i_cycles
    assert c_counts == i_counts
    return i_cycles


# --- equivalence -----------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_arith(self, costs):
        assert differential(k_arith, (9, 4), costs) > 0

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_branch_loop(self, costs):
        for args in ((40, 2), (3, 3), (1, 30)):
            differential(k_branch_loop, args, costs)

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_array_writebacks(self, costs):
        differential(k_array, ([3, 1, 4, 1, 5, 9, 2, 6], 8), costs)

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_data_dependent_flags(self, costs):
        for a in (0, 3, 7, 12):
            differential(k_either, (a, 10), costs)

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_either_bound_charged_once_before_loop(self, costs):
        # regression: flag-gated bound charges drained into the body
        # were charged once per iteration (a=3 takes the annotated
        # path; a=12 keeps v plain so the gate stays closed)
        for a in (3, 12):
            differential(k_either_bound, (a, 10), costs)

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_either_bound_not_dropped_at_implicit_return(self, costs):
        # regression: with a hoistable loop body the pending bound
        # charge was dropped at the helper's implicit function end
        for a in (3, 12):
            differential(k_bound_in_helper, ([0] * 16, a, 10), costs)

    @pytest.mark.parametrize("costs", COST_TABLES, ids=lambda c: c.name)
    def test_bool_entry_args_compile_and_charge_identically(self, costs):
        # Both flag values, on every table: the compiled SH_BOOL truth
        # test must charge exactly like ABool.__bool__ does interpreted.
        src = [3, 1, 4, 1, 5, 9, 2, 6]
        for flag in (True, False):
            differential(k_predicate, (src, 8, flag), costs)
            differential(k_predicate_not, (37, flag), costs)

    def test_half_cycle_totals_stay_exact(self):
        # dsp-sw charges 0.5 per branch: the folded block sums must sit
        # on the same 0.5 grid as one-at-a-time charging.
        cycles = differential(k_branch_loop, (40, 2), DSP_SW_COSTS)
        assert cycles == int(2 * cycles) / 2.0


# --- the registry differential (the check_compile acceptance) --------------

class TestRegistry:
    @pytest.mark.parametrize("costs", [OPENRISC_SW_COSTS, DSP_SW_COSTS],
                             ids=lambda c: c.name)
    def test_all_function_workloads_cycle_identical(self, costs):
        reports = check_registry(costs)
        assert len(reports) >= 10
        assert all(r["compiled"] for r in reports), reports

    def test_vocoder_kernels_cycle_identical(self):
        from repro.workloads.vocoder import (
            lpc_interpolate, lsp_estimate, postprocess)
        frame = [(i * 37) % 256 - 128 for i in range(160)]
        order = 10
        cases = [
            (lsp_estimate, lambda: (list(frame), [0] * (order + 1),
                                    [0] * (order + 1), [0] * (order + 1),
                                    len(frame), order)),
            (lpc_interpolate, lambda: ([4096] + [0] * order,
                                       [4096] + [7] * order,
                                       [0] * (4 * (order + 1)), order, 4)),
            (postprocess, lambda: (list(frame), [0] * len(frame),
                                   len(frame), [0, 0])),
        ]
        for costs in (OPENRISC_SW_COSTS, DSP_SW_COSTS):
            for kernel, make_args in cases:
                report = check_entry(kernel, make_args, costs)
                assert report["compiled"], report


# --- rejection and fallback ------------------------------------------------

class TestFallback:
    def test_float_literal_rejected(self):
        with pytest.raises(Unsupported):
            compile_kernel(k_float_real, ("int",))

    def test_either_call_argument_rejected(self):
        with pytest.raises(Unsupported):
            compile_kernel(k_mixed_call, ("int", "int"))

    def test_tier_falls_back_on_rejection(self):
        tier = CompileTier()
        handled, _ = tier.run_kernel(k_float_real, [3], None)
        assert not handled
        assert tier.stats["rejected"] == 1
        assert "k_float_real" in tier.rejections
        # Cached: a second call must not re-analyze.
        handled, _ = tier.run_kernel(k_float_real, [3], None)
        assert not handled
        assert tier.stats["rejected"] == 1

    def test_non_half_integral_table_refuses_to_bind(self):
        rough = uniform_costs(cycles=0.3, name="rough")
        program = compile_kernel(k_arith, ("int", "int"))
        assert program.bind(rough) is None
        ctx = CostContext(rough, MODE_SW)
        assert program.make_charger(ctx) is None

    def test_recorder_context_falls_back(self):
        from repro.annotate import OperationRecorder
        ctx = CostContext(OPENRISC_SW_COSTS, MODE_SW,
                          recorder=OperationRecorder())
        program = compile_kernel(k_arith, ("int", "int"))
        assert program.make_charger(ctx) is None

    def test_null_charger_without_context(self):
        def k_scale_in_place(a, n):
            for i in arange(0, n):
                a[i] = a[i] * 2
            return n

        program = compile_kernel(k_scale_in_place, ("arr", "int"))
        assert program.make_charger(None) is NULL_CHARGER
        src = [3, 1, 4, 1, 5, 9, 2, 6]
        result, writebacks = program.run([src, 8], NULL_CHARGER)
        assert int(result) == 8
        ((orig, copy),) = writebacks
        # The kernel ran on a copy; applying the write-back is the
        # caller's decision, so the original is still untouched here.
        assert orig is src and src == [3, 1, 4, 1, 5, 9, 2, 6]
        assert copy == [6, 2, 8, 2, 10, 18, 4, 12]

    def test_rebound_module_global_triggers_recompile(self):
        # Module-level ints are snapshotted as compile-time constants;
        # the tier must notice a rebinding and recompile instead of
        # serving the stale cached program.
        global G_GAIN
        tier = CompileTier()
        try:
            handled, result = tier.run_kernel(k_global_gain, [5], None)
            assert handled and result == 15
            G_GAIN = 4
            handled, result = tier.run_kernel(k_global_gain, [5], None)
            assert handled and result == 20
            assert tier.stats["recompiled"] == 1
            assert tier.stats["compiled"] == 2
            # unchanged globals keep hitting the cache
            handled, result = tier.run_kernel(k_global_gain, [5], None)
            assert handled and result == 20
            assert tier.stats["compiled"] == 2
        finally:
            G_GAIN = 3

    def test_unsupported_entry_argument_types(self):
        with pytest.raises(Unsupported):
            arg_shapes_of([1.5])

    def test_bool_entry_args_have_their_own_shape(self):
        # bool is an int subclass: it must classify as "bool" (checked
        # first), never silently widen to "int".
        assert arg_shapes_of([True, 1, [2]]) == ("bool", "int", "arr")

    def test_bool_arithmetic_rejected_falls_back(self):
        with pytest.raises(Unsupported):
            compile_kernel(k_bool_arith, ("bool",))
        tier = CompileTier()
        from repro.workloads.vocoder.pipeline import _interpreted_executor
        handled, _ = tier.run_kernel(k_bool_arith, [True],
                                     _interpreted_executor)
        assert not handled
        assert tier.stats["rejected"] == 1


# --- the check-mode differential at tier level -----------------------------

class TestTierCheckMode:
    def _interpreted(self, fn, args):
        from repro.workloads.vocoder.pipeline import _interpreted_executor
        return _interpreted_executor(fn, args)

    def test_checked_call_passes_and_charges_once(self):
        tier = CompileTier(check=True)
        ctx = CostContext(OPENRISC_SW_COSTS, MODE_SW)
        set_current(ctx)
        try:
            handled, result = tier.run_kernel(k_arith, [9, 4],
                                              self._interpreted)
        finally:
            set_current(None)
        assert handled and result == k_arith(9, 4)
        assert tier.stats["checked"] == 1
        # The context carries exactly the interpreted charge (the
        # compiled re-run happened on scratch state).
        _, cycles, _, _ = run_interpreted(k_arith, [9, 4],
                                          OPENRISC_SW_COSTS)
        assert ctx.total_cycles == cycles

    def test_corrupted_block_table_is_detected(self):
        tier = CompileTier(check=True)
        program = tier.program_for(k_arith, [9, 4])
        table = program.bind(OPENRISC_SW_COSTS)
        cycles, ids, counts = table.triples[0]
        table.triples[0] = (cycles + 1.0, ids, counts)
        ctx = CostContext(OPENRISC_SW_COSTS, MODE_SW)
        set_current(ctx)
        try:
            with pytest.raises(CompileCheckError, match="cycles"):
                tier.run_kernel(k_arith, [9, 4], self._interpreted)
        finally:
            set_current(None)


# --- executor and library wiring -------------------------------------------

class TestWiring:
    def test_executor_consults_the_tier(self):
        from repro.workloads.vocoder.pipeline import annotated_executor
        tier = CompileTier()
        previous = set_tier(tier)
        try:
            src = [3, 1, 4, 1, 5, 9, 2, 6]
            result = annotated_executor(k_array, (src, 8))
            assert result == sum(v * 2 for v in src)
            assert tier.stats["runs"] == 1
            # Rejected kernels silently take the interpreted path.
            assert annotated_executor(k_mixed_call, (4, 10)) == 16
            assert tier.stats["rejected"] == 1
        finally:
            set_tier(previous)

    def test_library_scopes_the_slot_to_process_execution(self):
        from repro.core import PerformanceLibrary
        from repro.kernel.simulator import Simulator
        from repro.platform import EnvironmentResource, Mapping, make_cpu
        from repro.workloads.vocoder import STAGE_NAMES, build_vocoder

        def build(**kwargs):
            simulator = Simulator()
            frames = [[(j * 11) % 64 - 32 for j in range(160)]]
            design = build_vocoder(simulator, frames, annotate=True)
            mapping = Mapping()
            cpu = make_cpu()
            env = EnvironmentResource("tb")
            for name, process in design.processes.items():
                mapping.assign(process, cpu if name in STAGE_NAMES else env)
            perf = PerformanceLibrary(mapping, **kwargs).attach(simulator)
            simulator.run()
            return design, perf

        try:
            design, perf = build(compile=True)
            # The slot is scoped to process execution: after the run it
            # is clear, but the tier did serve the kernel calls.
            assert current_tier() is None
            assert perf.compile_tier.stats["runs"] > 0
            compiled_total = sum(s.total_cycles
                                 for s in perf.stats.values())
            # A plain library leaves the slot clear too.
            design2, perf2 = build()
            assert current_tier() is None and perf2.compile_tier is None
            baseline_total = sum(s.total_cycles
                                 for s in perf2.stats.values())
            assert compiled_total == baseline_total
            assert ([p["check"] for p in design.results]
                    == [p["check"] for p in design2.results])
        finally:
            set_tier(None)

    def test_bench_payload_reports_the_tier(self):
        from repro.bench import run_bench
        payload = run_bench(workloads=["fir", "euler"], repeats=1,
                            include_iss=False, compile=True)
        assert payload["compile"] and not payload["check_compile"]
        for entry in payload["workloads"].values():
            assert entry["compiled"] is True
