"""Model-level fault injection: taxonomy, adapters, analyzer, CLI.

The suite mirrors the subsystem's layering.  Adapter tests run tiny
purpose-built simulations and assert the *observable* consequence of
each fault kind (a corrupted payload, a truncated pipeline, a shifted
finish time) plus its provenance record — never internal state.  The
analyzer tests drive the real campaign pool serially against a
``tmp_path`` cache and check the two contracts the subsystem sells:
byte-stable canonical reports and a warm-cache sweep.  Import-order
tests run fresh interpreters because the batch↔inject bridge is only
honest if each package imports cleanly first.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import SimTime, Simulator, wait
from repro.annotate import AInt, uniform_costs
from repro.batch.campaign import RunResult, STATUS_FAILED, STATUS_OK
from repro.batch.config import RunConfig
from repro.cli import main
from repro.core import PerformanceLibrary
from repro.errors import InjectError
from repro.inject import (
    DependabilityAnalysis,
    FAULT_KINDS,
    FaultRecord,
    FaultSpec,
    Injection,
    Injector,
    INFRA_KINDS,
    LAYER_INFRA,
    LAYER_MODEL,
    MODEL_KINDS,
    OUTCOME_DETECTED,
    OUTCOME_FAILED,
    OUTCOME_SILENT,
    behavior_kind,
    classify_run,
    fault_kind,
    generate_faultload,
    merged_windows,
    run_scenario,
)
from repro.platform import Mapping, make_cpu

HERE = pathlib.Path(__file__).parent
GOLDEN = HERE / "golden"

WIDE = (0, 10 ** 18)        # a window covering any simulation end


def _injection(kind, target, window=WIDE, ordinal=0, argument=0,
               index=0, seed=0):
    return Injection(index=index, kind=kind, target=target,
                     window_fs=(int(window[0]), int(window[1])),
                     ordinal=ordinal, argument=argument, seed=seed)


# ---------------------------------------------------------------------------
# Vocabulary
# ---------------------------------------------------------------------------

class TestVocabulary:
    def test_registry_is_total_and_layered(self):
        for name, kind in FAULT_KINDS.items():
            assert fault_kind(name) is kind
            assert kind.layer in (LAYER_MODEL, LAYER_INFRA)
        assert all(fault_kind(k).layer == LAYER_MODEL for k in MODEL_KINDS)
        assert all(fault_kind(k).layer == LAYER_INFRA for k in INFRA_KINDS)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_kind("gamma-ray")

    def test_probe_behaviors_map_back_to_kinds(self):
        # Every infra kind modeling a probe behavior is reachable from
        # the behavior string the runner uses — no ad-hoc strings left.
        behaviors = {fault_kind(k).probe_behavior for k in INFRA_KINDS
                     if fault_kind(k).probe_behavior}
        assert behaviors  # the bridge exists
        for behavior in behaviors:
            assert behavior_kind(behavior).probe_behavior == behavior
        # Model kinds are applied by the injector, not a probe runner.
        assert all(not fault_kind(k).probe_behavior for k in MODEL_KINDS)

    def test_fault_record_round_trips(self):
        record = FaultRecord(kind="payload-bitflip",
                             target="channel:stim.write",
                             time_fs=123, detail="write: 1 -> 5")
        assert FaultRecord.from_dict(record.as_dict()) == record


# ---------------------------------------------------------------------------
# Faultload generation
# ---------------------------------------------------------------------------

_SPEC = dict(channels=("ch.write", "ch.read"), processes=("top.worker",))


class TestFaultload:
    def test_same_inputs_reproduce_byte_identical_schedules(self):
        spec = FaultSpec(count=12, **_SPEC)
        one = generate_faultload(spec, 7)
        two = generate_faultload(spec, 7)
        assert one.as_dict() == two.as_dict()
        assert one.hash() == two.hash()

    def test_round_trip_and_hash_stability(self):
        from repro.inject import Faultload
        load = generate_faultload(FaultSpec(count=5, **_SPEC), 3)
        again = Faultload.from_dict(load.as_dict())
        assert again == load
        assert again.hash() == load.hash()

    def test_targets_match_kind_schemes(self):
        load = generate_faultload(FaultSpec(count=30, **_SPEC), 11)
        for injection in load.injections:
            scheme = injection.target.split(":", 1)[0]
            if injection.kind.startswith("payload-"):
                assert scheme == "channel"
            elif injection.kind == "segment-time":
                assert scheme == "segment"
            else:
                assert scheme == "process"

    def test_spec_rejects_infra_kinds_and_missing_addresses(self):
        with pytest.raises(ValueError, match="model-level kinds only"):
            FaultSpec(count=1, kinds=("worker-death",), **_SPEC)
        with pytest.raises(ValueError, match="channels list"):
            FaultSpec(count=1, kinds=("payload-bitflip",))
        with pytest.raises(ValueError, match="processes list"):
            FaultSpec(count=1, kinds=("process-kill",))

    def test_merged_windows_merge_overlaps(self):
        injections = [
            _injection("process-kill", "process:top.worker", (0, 10)),
            _injection("process-kill", "process:top.worker", (5, 20)),
            _injection("process-kill", "process:top.worker", (40, 50)),
        ]
        assert merged_windows(injections) == ((0, 20), (40, 50))


# ---------------------------------------------------------------------------
# Adapters: channel payload faults
# ---------------------------------------------------------------------------

def _run_channel_sim(injections, values=(1, 2, 3)):
    simulator = Simulator()
    ch = simulator.fifo("ch", capacity=1)
    top = simulator.module("top")
    seen = []

    def producer():
        for value in values:
            yield from ch.write(value)

    def consumer():
        for _ in values:
            seen.append((yield from ch.read()))

    top.add_process(producer, name="producer")
    top.add_process(consumer, name="consumer")
    injector = Injector(injections).attach(simulator)
    simulator.run()
    return seen, injector


class TestPayloadFaults:
    def test_bitflip_hits_the_ordinal_th_write(self):
        injection = _injection("payload-bitflip", "channel:ch.write",
                               ordinal=1, argument=2)
        seen, injector = _run_channel_sim([injection])
        assert seen == [1, 2 ^ 4, 3]
        [applied] = injector.applied
        assert applied.record.kind == "payload-bitflip"
        assert "2 -> 6" in applied.record.detail

    def test_value_corruption_on_read(self):
        injection = _injection("payload-value", "channel:ch.read",
                               ordinal=0, argument=99)
        seen, injector = _run_channel_sim([injection])
        assert seen == [99, 2, 3]
        assert injector.applied[0].record.target == "channel:ch.read"

    def test_fault_outside_window_never_fires(self):
        injection = _injection("payload-bitflip", "channel:ch.write",
                               window=(10 ** 15, 10 ** 15 + 1), argument=0)
        seen, injector = _run_channel_sim([injection])
        assert seen == [1, 2, 3]
        assert injector.applied == []

    def test_unknown_channel_fails_fast(self):
        injection = _injection("payload-bitflip", "channel:nope.write")
        with pytest.raises(InjectError, match="unknown channel"):
            _run_channel_sim([injection])


# ---------------------------------------------------------------------------
# Adapters: process and event faults
# ---------------------------------------------------------------------------

def _run_timed_worker(injections, beats=3):
    simulator = Simulator()
    top = simulator.module("top")
    ticks = []

    def worker():
        for beat in range(beats):
            yield wait(SimTime.ns(10))
            ticks.append(beat)

    process = top.add_process(worker, name="worker")
    injector = Injector(injections).attach(simulator)
    final = simulator.run()
    return final, ticks, process, injector


class TestProcessAndEventFaults:
    def test_kill_truncates_the_process(self):
        injection = _injection("process-kill", "process:top.worker",
                               window=(SimTime.ns(15).femtoseconds, 10 ** 18))
        final, ticks, process, injector = _run_timed_worker([injection])
        assert ticks == [0]          # killed between beat 0 and beat 1
        assert process.done          # a killed process is finalized
        assert injector.applied[0].record.detail == "killed"

    def test_stuck_process_stays_resident_but_silent(self):
        injection = _injection("process-stuck", "process:top.worker",
                               window=(SimTime.ns(15).femtoseconds, 10 ** 18))
        final, ticks, process, injector = _run_timed_worker([injection])
        assert ticks == [0]
        assert not process.done      # stuck-at keeps the process alive
        assert injector.applied[0].record.detail == "stalled"

    def test_event_delay_shifts_the_finish_time(self):
        delay_fs = SimTime.ns(7).femtoseconds
        injection = _injection("event-delay", "process:top.worker",
                               ordinal=1, argument=delay_fs)
        final, ticks, _, injector = _run_timed_worker([injection])
        assert ticks == [0, 1, 2]
        assert final == SimTime.ns(37)
        assert "delayed" in injector.applied[0].record.detail

    def test_event_drop_starves_the_process(self):
        injection = _injection("event-drop", "process:top.worker", ordinal=1)
        final, ticks, process, injector = _run_timed_worker([injection])
        assert ticks == [0]
        assert not process.done
        assert final == SimTime.ns(10)

    def test_unknown_process_fails_fast(self):
        injection = _injection("process-kill", "process:top.ghost")
        with pytest.raises(InjectError, match="unknown process"):
            _run_timed_worker([injection])

    def test_segment_fault_requires_a_library(self):
        injection = _injection("segment-time", "segment:top.worker")
        with pytest.raises(InjectError, match="performance"):
            _run_timed_worker([injection])


# ---------------------------------------------------------------------------
# Adapters: segment-time faults and the fast-forward gate
# ---------------------------------------------------------------------------

def _run_ff_pipeline(injections=None, iterations=12):
    simulator = Simulator()
    ch = simulator.fifo("ch", capacity=2)
    top = simulator.module("top")
    three = AInt(3)

    def producer():
        acc = three
        for _ in range(iterations):
            acc = acc + three
            acc = acc * three
            yield from ch.write(acc)
            yield wait(SimTime.ns(5))

    def consumer():
        for _ in range(iterations):
            yield from ch.read()

    prod = top.add_process(producer, name="producer")
    cons = top.add_process(consumer, name="consumer")
    mapping = Mapping()
    mapping.assign(prod, make_cpu("cpu0", costs=uniform_costs()))
    mapping.assign(cons, make_cpu("cpu1", costs=uniform_costs()))
    perf = PerformanceLibrary(mapping, fastforward=True)
    perf.attach(simulator)
    if injections is not None:
        Injector(injections).attach(simulator, library=perf)
    final = simulator.run()
    return final, perf


#: Resolvable at attach but inert at runtime: the ordinal is far past
#: any opportunity count, so only the window gate has an effect.
def _inert(window):
    return _injection("payload-bitflip", "channel:ch.write",
                      window=window, ordinal=10 ** 6)


class TestFastForwardGate:
    def test_gate_disables_fastforward_inside_the_faulted_window(self):
        baseline_final, baseline = _run_ff_pipeline()
        assert baseline.engine.replayed > 0

        gated_final, gated = _run_ff_pipeline([_inert(WIDE)])
        assert gated.engine.replayed == 0
        assert gated.engine.characterized == 0
        # Dynamic charging inside the window reproduces the exact timing.
        assert gated_final == baseline_final

    def test_fastforward_resumes_outside_the_window(self):
        baseline_final, baseline = _run_ff_pipeline()
        narrow = (0, SimTime.ns(1).femtoseconds)
        final, perf = _run_ff_pipeline([_inert(narrow)])
        assert perf.engine.replayed > 0
        assert final == baseline_final


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------

class TestScenario:
    def test_golden_run_is_deterministic(self):
        params = {"workload": "fir", "frames": 2, "stim_seed": 1}
        one = run_scenario(dict(params))
        two = run_scenario(dict(params))
        assert one == two
        assert one["completed"] and one["frames_completed"] == 2
        assert one["applied"] == []

    def test_unknown_workload_raises(self):
        with pytest.raises(InjectError, match="unknown workload"):
            run_scenario({"workload": "doom"})

    def test_segment_fault_perturbs_the_timing(self):
        golden = run_scenario({"frames": 2})
        perturbed = []
        for ordinal in range(4):
            injection = _injection("segment-time", "segment:top.dut",
                                   ordinal=ordinal, argument=5_000_000)
            payload = run_scenario({"frames": 2,
                                    "injection": injection.as_dict()})
            if payload["applied"]:
                perturbed.append(payload)
        assert perturbed, "no ordinal landed on a dut segment"
        # At least one struck segment carries real charge: scaling it
        # 5x must move the simulated end (the values stay golden).
        assert any(p["end_fs"] > golden["end_fs"] for p in perturbed)
        assert all(p["checksum"] == golden["checksum"] for p in perturbed)


# ---------------------------------------------------------------------------
# Classifier and analyzer
# ---------------------------------------------------------------------------

def _result(payload, status=STATUS_OK, cached=False):
    config = RunConfig.of("inject", "x")
    return RunResult(config=config, key=config.cache_key(), status=status,
                     payload=payload, cached=cached)


_GOLDEN = {"end_fs": 1000, "checksum": 42, "frames_completed": 2,
           "out_events": [[400, 7], [900, 8]], "completed": True}


class TestClassifier:
    def test_crashed_run_is_failed(self):
        injection = _injection("process-kill", "process:top.dut")
        verdict = classify_run(_GOLDEN, _result(None, status=STATUS_FAILED),
                               injection)
        assert verdict.outcome == OUTCOME_FAILED

    def test_identical_run_is_silent(self):
        payload = dict(_GOLDEN, applied=[])
        verdict = classify_run(_GOLDEN, _result(payload),
                               _injection("payload-value", "channel:ch.read"))
        assert verdict.outcome == OUTCOME_SILENT
        assert not verdict.activated

    def test_divergent_run_is_detected_with_latency(self):
        payload = dict(_GOLDEN, out_events=[[400, 7], [950, 9]],
                       applied=[{"kind": "event-delay", "time_fs": 600,
                                 "target": "process:top.dut",
                                 "detail": "", "injection": 0}])
        verdict = classify_run(_GOLDEN, _result(payload),
                               _injection("event-delay", "process:top.dut"))
        assert verdict.outcome == OUTCOME_DETECTED
        assert verdict.first_divergence_fs == 950
        assert verdict.detection_latency_fs == 350

    def test_truncated_pipeline_is_failed(self):
        payload = dict(_GOLDEN, frames_completed=1, completed=False,
                       out_events=[[400, 7]], checksum=None,
                       applied=[{"kind": "process-kill", "time_fs": 500,
                                 "target": "process:top.dut",
                                 "detail": "killed", "injection": 0}])
        verdict = classify_run(_GOLDEN, _result(payload),
                               _injection("process-kill", "process:top.dut"))
        assert verdict.outcome == OUTCOME_FAILED
        assert verdict.activated


class TestAnalyzer:
    def _analysis(self, cache):
        # Seed 5 is pinned because it exercises all three outcome
        # classes (silent, detected, failed) over a 6-fault schedule.
        return DependabilityAnalysis(count=6, seed=5, frames=2,
                                     cache=cache, workers=0)

    def test_sweep_classifies_every_injection(self, tmp_path):
        report = self._analysis(tmp_path).run()
        metrics = report["metrics"]
        assert metrics["runs"] == 6
        assert (metrics["silent"] + metrics["detected"]
                + metrics["failed"]) == 6
        assert len(report["runs"]) == 6
        assert report["spec"]["count"] == 6
        if metrics["failed"]:
            assert metrics["mttf_ns"] > 0

    def test_warm_rerun_resolves_from_cache_and_is_canonical(self, tmp_path):
        cold = self._analysis(tmp_path).run()
        warm = self._analysis(tmp_path).run()
        execution = warm["execution"]
        hits = (execution["golden"]["cache_hits"]
                + execution["sweep"]["cache_hits"])
        assert hits / 7 >= 0.9       # acceptance: >=90% cache resolution
        assert execution["sweep"]["simulated"] == 0

        def canonical(report):
            return {k: v for k, v in report.items() if k != "execution"}

        assert (json.dumps(canonical(cold), sort_keys=True)
                == json.dumps(canonical(warm), sort_keys=True))

    def test_report_matches_golden(self, tmp_path):
        report = self._analysis(tmp_path).run()
        report.pop("execution")
        golden = json.loads(
            (GOLDEN / "inject_fir_dependability.json").read_text())
        _assert_close(report, golden)


def _assert_close(actual, expected, path="report"):
    """Structural equality with float tolerance (latency statistics)."""
    if isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-9), path
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and sorted(actual) == sorted(expected), path
        for key in expected:
            _assert_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), path
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_close(a, e, f"{path}[{i}]")
    else:
        assert actual == expected, path


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_inject_is_bit_deterministic_across_invocations(
            self, tmp_path, capsys):
        base = ["inject", "--faults", "4", "--seed", "7", "--frames", "2",
                "--serial", "--quiet",
                "--cache-dir", str(tmp_path / "cache")]
        first = tmp_path / "r1.json"
        second = tmp_path / "r2.json"
        assert main(base + ["-o", str(first)]) == 0
        assert main(base + ["-o", str(second)]) == 0
        out = capsys.readouterr().out
        assert "dependability report" in out

        one = json.loads(first.read_text())
        two = json.loads(second.read_text())
        execution = two.pop("execution")
        one.pop("execution")
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))
        assert execution["sweep"]["cache_hits"] == 4
        assert execution["sweep"]["simulated"] == 0

    def test_inject_rejects_unknown_kinds(self):
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main(["inject", "--kinds", "gamma-ray", "--no-cache"])

    def test_cache_verify_jobs_matches_serial(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["inject", "--faults", "3", "--seed", "1", "--frames",
                     "2", "--serial", "--quiet",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        serial = capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", cache_dir,
                     "--jobs", "4"]) == 0
        threaded = capsys.readouterr().out
        assert threaded == serial
        assert "coherent" in serial


def test_scan_entries_jobs_preserves_order(tmp_path):
    from repro.batch import ResultCache
    from repro.batch.maintenance import scan_entries

    cache = ResultCache(tmp_path)
    for i in range(8):
        config = RunConfig.of("probe", f"p{i}", value=i)
        cache.put(config.cache_key(), {"value": i}, describe=str(config))
    serial = scan_entries(cache)
    threaded = scan_entries(cache, jobs=4)
    assert threaded == serial
    assert len(serial) == 8


# ---------------------------------------------------------------------------
# Import order (fresh interpreters)
# ---------------------------------------------------------------------------

_ORDER_SNIPPET = """\
import {first}
import {second}
import tempfile
from repro.batch.faults import CacheFault, FaultingCache
from repro.inject.vocabulary import CACHE_IO_GET
cache = FaultingCache(tempfile.mkdtemp(), fail_first_gets=1)
try:
    cache.get("0" * 64)
except CacheFault as exc:
    assert exc.kind == CACHE_IO_GET.name
assert cache.faults_by_kind() == {{CACHE_IO_GET.name: 1}}
print("OK")
"""


@pytest.mark.parametrize("first,second", [
    ("repro.batch", "repro.inject"),
    ("repro.inject", "repro.batch"),
])
def test_batch_inject_import_order_is_safe(first, second):
    code = _ORDER_SNIPPET.format(first=first, second=second)
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True, timeout=120,
                            env=dict(os.environ))
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "OK"
