"""Kernel scheduler tests: delta semantics, waits, observers, guards."""

import pytest

from repro import SimTime, Simulator, wait
from repro.errors import SimulationError
from repro.kernel import Mark, Process, Scheduler, SchedulerObserver
from repro.kernel.commands import WaitEvent


def test_timed_waits_advance_time():
    sim = Simulator()
    top = sim.module("top")
    seen = []

    def body():
        yield wait(SimTime.ns(5))
        seen.append(sim.now.to_ns())
        yield wait(SimTime.ns(7))
        seen.append(sim.now.to_ns())

    top.add_process(body)
    final = sim.run()
    assert seen == [5.0, 12.0]
    assert final == SimTime.ns(12)


def test_zero_wait_takes_one_delta():
    sim = Simulator()
    top = sim.module("top")
    deltas = []

    def body():
        deltas.append(sim.scheduler.delta)
        yield wait(SimTime.fs(0))
        deltas.append(sim.scheduler.delta)
        yield wait(SimTime.fs(0))
        deltas.append(sim.scheduler.delta)

    top.add_process(body)
    sim.run()
    assert deltas == [0, 1, 2]
    assert sim.now == SimTime(0)


def test_run_until_stops_before_future_events():
    sim = Simulator()
    top = sim.module("top")
    seen = []

    def body():
        yield wait(SimTime.ns(5))
        seen.append("early")
        yield wait(SimTime.ns(100))
        seen.append("late")

    top.add_process(body)
    final = sim.run(until=SimTime.ns(10))
    assert seen == ["early"]
    assert final == SimTime.ns(10)
    # resuming continues the same simulation
    final = sim.run()
    assert seen == ["early", "late"]
    assert final == SimTime.ns(105)


def test_processes_interleave_per_delta():
    sim = Simulator()
    top = sim.module("top")
    order = []

    def make(name):
        def body():
            for step in range(3):
                order.append((name, step))
                yield wait(SimTime.fs(0))
        body.__name__ = name
        return body

    top.add_process(make("a"))
    top.add_process(make("b"))
    sim.run()
    # within each delta, both processes execute before the next delta
    assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]


def test_yielding_garbage_raises():
    sim = Simulator()
    top = sim.module("top")

    def body():
        yield 42

    top.add_process(body)
    with pytest.raises(SimulationError, match="not a kernel command"):
        sim.run()


def test_non_generator_process_rejected():
    scheduler = Scheduler()
    with pytest.raises(TypeError, match="generator"):
        Process("p", (lambda: None)())


def test_register_after_start_rejected():
    sim = Simulator()
    top = sim.module("top")

    def body():
        yield wait(SimTime.ns(1))

    top.add_process(body)
    sim.run()
    with pytest.raises(SimulationError, match="after simulation start"):
        top.add_process(body, name="late")


def test_delta_loop_guard():
    sim = Simulator(max_deltas_per_instant=50)
    top = sim.module("top")

    def spinner():
        while True:
            yield wait(SimTime.fs(0))

    top.add_process(spinner)
    with pytest.raises(SimulationError, match="delta cycles"):
        sim.run()


def test_blocked_process_reported():
    sim = Simulator()
    fifo = sim.fifo("never")
    top = sim.module("top")

    def reader():
        yield from fifo.read()

    top.add_process(reader)
    sim.run()
    blocked = sim.scheduler.blocked_processes()
    assert [p.name for p in blocked] == ["reader"]
    with pytest.raises(Exception, match="blocked"):
        sim.assert_quiescent()


def test_mark_reaches_observers():
    sim = Simulator()
    top = sim.module("top")
    marks = []

    class Collector(SchedulerObserver):
        def on_mark(self, process, label, now, delta):
            marks.append((process.name, label))

    sim.add_observer(Collector())

    def body():
        yield Mark("phase-one")
        yield wait(SimTime.ns(1))
        yield Mark("phase-two")

    top.add_process(body)
    sim.run()
    assert marks == [("body", "phase-one"), ("body", "phase-two")]


def test_observer_callbacks_fire_in_order():
    sim = Simulator()
    top = sim.module("top")
    events = []

    class Recorder(SchedulerObserver):
        def on_process_start(self, process, now):
            events.append("start")

        def on_process_resume(self, process, now):
            events.append("resume")

        def on_process_suspend(self, process, now):
            events.append("suspend")

        def on_node_reached(self, process, command, now, delta):
            events.append("node")

        def on_process_exit(self, process, now):
            events.append("exit")

        def on_time_advance(self, previous, current):
            events.append("advance")

    sim.add_observer(Recorder())

    def body():
        yield wait(SimTime.ns(1))

    top.add_process(body)
    sim.run()
    assert events == ["start", "resume", "node", "suspend",
                      "advance", "resume", "node", "exit", "suspend"]


def test_process_exit_time_recorded():
    sim = Simulator()
    top = sim.module("top")

    def body():
        yield wait(SimTime.ns(3))

    process = top.add_process(body)
    sim.run()
    assert process.done
    assert process.exit_time == SimTime.ns(3)
    assert process.node_count == 2  # the wait + the exit node


def test_event_timed_notify():
    sim = Simulator()
    top = sim.module("top")
    event = sim.scheduler.make_event("e")
    seen = []

    def waiter():
        yield WaitEvent(event)
        seen.append(sim.now.to_ns())

    def notifier():
        yield wait(SimTime.ns(2))
        event.notify(SimTime.ns(3))

    top.add_process(waiter)
    top.add_process(notifier)
    sim.run()
    assert seen == [5.0]
    assert event.notify_count == 1
