"""Stress tests: many processes, mixed resources, RTOS, random waits.

Not performance tests — these shake out scheduler/agent interactions
that only appear with crowded resources and interleaved waits.
"""

from repro import SimTime, Simulator, wait
from repro.annotate import AInt
from repro.core import PerformanceLibrary, overlap_fs
from repro.platform import DEFAULT_RTOS, Mapping, make_cpu, make_fabric
from repro.workloads import lcg_stream
from repro.annotate import uniform_costs


def test_sixteen_processes_two_cpus_one_fabric():
    sim = Simulator()
    top = sim.module("top")
    fifo = sim.fifo("funnel", capacity=4)
    done = []
    process_count = 15
    randoms = lcg_stream(99, process_count * 4, 50)

    def worker(index):
        def body():
            work = 10 + randoms[index * 4]
            acc = AInt(0)
            for k in range(work):
                acc = acc + k
            yield wait(SimTime.ns(randoms[index * 4 + 1] * 10))
            acc = acc + 1
            for k in range(randoms[index * 4 + 2]):
                acc = acc * 2 + 1
                acc = acc & 0xFFFF
            yield from fifo.write((index, int(acc)))
        body.__name__ = f"w{index}"
        return body

    def collector():
        for _ in range(process_count):
            done.append((yield from fifo.read()))

    cpu_a = make_cpu("cpu_a", costs=uniform_costs(), rtos=DEFAULT_RTOS)
    cpu_b = make_cpu("cpu_b", costs=uniform_costs(), rtos=None,
                     policy="priority")
    hw = make_fabric("hw", k_factor=0.7)
    resources = [cpu_a, cpu_b, hw]
    mapping = Mapping()
    for index in range(process_count):
        process = top.add_process(worker(index), name=f"w{index}",
                                  priority=index % 5)
        mapping.assign(process, resources[index % 3])
    from repro.platform import EnvironmentResource
    mapping.assign(top.add_process(collector), EnvironmentResource("tb"))

    perf = PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    sim.assert_quiescent()

    # everyone completed, exactly once
    assert sorted(index for index, _ in done) == list(range(process_count))
    # wall-clock bounds on both CPUs
    for cpu in (cpu_a, cpu_b):
        assert cpu.busy_time.femtoseconds <= final.femtoseconds
    # serialization within each CPU
    for cpu_name in ("cpu_a", "cpu_b"):
        intervals = [stats.intervals for stats in perf.stats.values()
                     if stats.resource == cpu_name]
        for i, first in enumerate(intervals):
            for second in intervals[i + 1:]:
                assert overlap_fs(first, second) == 0
    # every analysed process charged something
    assert all(stats.cycles > 0 for stats in perf.stats.values())


def test_long_chain_of_dependent_waits():
    """100 sequential hops through rendezvous channels, strict-timed."""
    sim = Simulator()
    top = sim.module("top")
    hops = 40
    channels = [sim.rendezvous(f"hop{i}") for i in range(hops)]

    def head():
        value = AInt(1)
        for _ in range(25):
            value = value + 1
        yield from channels[0].write(int(value))

    def relay(index):
        def body():
            value = yield from channels[index].read()
            acc = AInt(value)
            for _ in range(5):
                acc = acc + 1
            yield from channels[index + 1].write(int(acc))
        body.__name__ = f"relay{index}"
        return body

    result = {}

    def tail():
        result["value"] = yield from channels[-1].read()

    cpu = make_cpu("cpu", costs=uniform_costs())
    mapping = Mapping()
    mapping.assign(top.add_process(head), cpu)
    for index in range(hops - 1):
        mapping.assign(top.add_process(relay(index), name=f"relay{index}"),
                       cpu)
    from repro.platform import EnvironmentResource
    mapping.assign(top.add_process(tail), EnvironmentResource("tb"))
    PerformanceLibrary(mapping).attach(sim)
    final = sim.run()
    sim.assert_quiescent()
    assert result["value"] == 26 + 5 * (hops - 1)
    assert final.femtoseconds > 0
