"""Capture points, metrics and export."""

import pytest

from repro import SimTime, Simulator, wait
from repro.capture import (
    CaptureBoard,
    CapturePoint,
    deadline_violations,
    inter_arrival_ns,
    jitter_ns,
    mean_period_ns,
    response_times_ns,
    summarize_ns,
    throughput_per_us,
    to_csv_text,
    to_matlab_text,
)
from repro.errors import CaptureError


def _periodic_design(period_ns=10, hits=5, latency_ns=3):
    sim = Simulator()
    top = sim.module("top")
    board = CaptureBoard(sim)
    stimulus = board.point("stimulus")
    response = board.point("response")

    def body():
        for i in range(hits):
            stimulus.hit(i)
            yield wait(SimTime.ns(latency_ns))
            response.hit(i * 10)
            yield wait(SimTime.ns(period_ns - latency_ns))

    top.add_process(body)
    sim.run()
    return board, stimulus, response


class TestCapturePoint:
    def test_records_time_and_value(self):
        _, stimulus, _ = _periodic_design()
        assert len(stimulus) == 5
        assert stimulus.values() == [0, 1, 2, 3, 4]
        assert stimulus.times_ns() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_conditional_capture(self):
        sim = Simulator()
        top = sim.module("top")
        point = CapturePoint(sim, "evens", condition=lambda v: v % 2 == 0)

        def body():
            for i in range(6):
                point.hit(i)
                yield wait(SimTime.ns(1))

        top.add_process(body)
        sim.run()
        assert point.values() == [0, 2, 4]

    def test_callable_shorthand(self):
        sim = Simulator()
        point = CapturePoint(sim, "p")
        point(42)
        assert point.values() == [42]

    def test_clear(self):
        sim = Simulator()
        point = CapturePoint(sim, "p")
        point.hit()
        point.clear()
        assert len(point) == 0

    def test_delta_recorded(self):
        sim = Simulator()
        top = sim.module("top")
        point = CapturePoint(sim, "p")

        def body():
            point.hit("d0")
            yield wait(SimTime.fs(0))
            point.hit("d1")

        top.add_process(body)
        sim.run()
        assert [e.delta for e in point.events] == [0, 1]


class TestCaptureBoard:
    def test_point_is_idempotent(self):
        sim = Simulator()
        board = CaptureBoard(sim)
        assert board.point("x") is board.point("x")
        assert len(board) == 1

    def test_conflicting_condition_rejected(self):
        sim = Simulator()
        board = CaptureBoard(sim)
        board.point("x")
        with pytest.raises(CaptureError, match="different condition"):
            board.point("x", condition=lambda v: True)

    def test_unknown_point_lookup(self):
        sim = Simulator()
        board = CaptureBoard(sim)
        with pytest.raises(CaptureError, match="no capture point"):
            board["ghost"]


class TestMetrics:
    def test_response_times(self):
        _, stimulus, response = _periodic_design(latency_ns=3)
        latencies = response_times_ns(stimulus, response)
        assert latencies == [3.0] * 5

    def test_response_precedes_stimulus_rejected(self):
        _, stimulus, response = _periodic_design()
        with pytest.raises(CaptureError, match="precedes"):
            response_times_ns(response, stimulus)

    def test_more_responses_than_stimuli_rejected(self):
        sim = Simulator()
        a = CapturePoint(sim, "a")
        b = CapturePoint(sim, "b")
        a.hit()
        b.hit()
        b.hit()
        with pytest.raises(CaptureError, match="more responses"):
            response_times_ns(a, b)

    def test_inter_arrival_and_period(self):
        _, stimulus, _ = _periodic_design(period_ns=10)
        assert inter_arrival_ns(stimulus) == [10.0] * 4
        assert mean_period_ns(stimulus) == 10.0
        assert jitter_ns(stimulus) == 0.0

    def test_throughput(self):
        _, stimulus, _ = _periodic_design(period_ns=10, hits=5)
        # 4 intervals over 40 ns = 0.04 us -> 100 hits/us
        assert throughput_per_us(stimulus) == pytest.approx(100.0)

    def test_deadline_violations(self):
        _, stimulus, response = _periodic_design(latency_ns=3)
        assert deadline_violations(stimulus, response, SimTime.ns(5)) == []
        assert deadline_violations(stimulus, response, SimTime.ns(2)) == [0, 1, 2, 3, 4]

    def test_summary(self):
        summary = summarize_ns([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean_ns == 2.0
        assert summary.min_ns == 1.0
        assert summary.max_ns == 3.0
        assert "n=3" in str(summary)

    def test_empty_inputs_rejected(self):
        with pytest.raises(CaptureError):
            summarize_ns([])
        sim = Simulator()
        lone = CapturePoint(sim, "x")
        lone.hit()
        with pytest.raises(CaptureError):
            mean_period_ns(lone)
        with pytest.raises(CaptureError):
            throughput_per_us(lone)


class TestExport:
    def test_csv_format(self):
        board, _, _ = _periodic_design(hits=2)
        text = to_csv_text(board)
        lines = text.strip().splitlines()
        assert lines[0] == "point,time_ns,delta,value"
        assert len(lines) == 1 + 4  # 2 points x 2 hits
        assert lines[1].startswith("stimulus,0.000000,")

    def test_matlab_format(self):
        board, _, _ = _periodic_design(hits=2)
        text = to_matlab_text(board)
        assert "stimulus_t = [" in text
        assert "stimulus_v = [" in text
        assert "response_t = [" in text

    def test_matlab_identifier_sanitized(self):
        sim = Simulator()
        point = CapturePoint(sim, "1-odd name!")
        point.hit(1)
        text = to_matlab_text([point])
        assert "p_1_odd_name__t" in text

    def test_matlab_non_numeric_values_become_nan(self):
        sim = Simulator()
        point = CapturePoint(sim, "p")
        point.hit("text")
        point.hit(None)
        point.hit(True)
        text = to_matlab_text([point])
        assert text.count("NaN") == 2
        assert "1" in text

    def test_file_roundtrip(self, tmp_path):
        from repro.capture import to_csv, to_matlab
        board, _, _ = _periodic_design(hits=2)
        csv_path = tmp_path / "events.csv"
        m_path = tmp_path / "events.m"
        to_csv(board, str(csv_path))
        to_matlab(board, str(m_path))
        assert csv_path.read_text().startswith("point,")
        assert "stimulus_t" in m_path.read_text()
