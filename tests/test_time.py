"""Unit tests for SimTime and Clock."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.time import Clock, SimTime, ZERO, time_from

fs_values = st.integers(min_value=0, max_value=10**18)


class TestConstruction:
    def test_unit_constructors_scale(self):
        assert SimTime.ns(1) == SimTime.ps(1000) == SimTime.fs(10**6)
        assert SimTime.us(1) == SimTime.ns(1000)
        assert SimTime.ms(1) == SimTime.us(1000)
        assert SimTime.s(1) == SimTime.ms(1000)

    def test_fractional_values_round(self):
        assert SimTime.ns(2.5) == SimTime.ps(2500)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimTime(-1)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            SimTime(1.5)

    def test_time_from(self):
        assert time_from(3, "us") == SimTime.us(3)
        with pytest.raises(ValueError):
            time_from(1, "lightyears")

    def test_immutability(self):
        t = SimTime.ns(5)
        with pytest.raises(AttributeError):
            t._fs = 7


class TestArithmetic:
    def test_add_sub(self):
        assert SimTime.ns(3) + SimTime.ns(4) == SimTime.ns(7)
        assert SimTime.ns(7) - SimTime.ns(4) == SimTime.ns(3)

    def test_sub_below_zero_rejected(self):
        with pytest.raises(ValueError):
            SimTime.ns(1) - SimTime.ns(2)

    def test_scalar_multiply(self):
        assert SimTime.ns(3) * 4 == SimTime.ns(12)
        assert 0.5 * SimTime.ns(4) == SimTime.ns(2)

    def test_time_by_time_multiply_rejected(self):
        with pytest.raises(TypeError):
            SimTime.ns(1) * SimTime.ns(1)

    def test_division(self):
        assert SimTime.ns(10) / SimTime.ns(4) == 2.5
        assert SimTime.ns(10) // SimTime.ns(4) == 2
        assert SimTime.ns(10) // 2 == SimTime.ns(5)
        with pytest.raises(ZeroDivisionError):
            SimTime.ns(1) / ZERO

    def test_modulo(self):
        assert SimTime.ns(10) % SimTime.ns(4) == SimTime.ns(2)

    @given(fs_values, fs_values)
    def test_addition_commutes(self, a, b):
        assert SimTime(a) + SimTime(b) == SimTime(b) + SimTime(a)

    @given(fs_values, fs_values, fs_values)
    def test_addition_associates(self, a, b, c):
        left = (SimTime(a) + SimTime(b)) + SimTime(c)
        right = SimTime(a) + (SimTime(b) + SimTime(c))
        assert left == right

    @given(fs_values)
    def test_zero_is_identity(self, a):
        assert SimTime(a) + ZERO == SimTime(a)

    @given(fs_values, fs_values)
    def test_ordering_consistent_with_fs(self, a, b):
        assert (SimTime(a) < SimTime(b)) == (a < b)
        assert (SimTime(a) == SimTime(b)) == (a == b)


class TestPresentation:
    def test_str_picks_clean_unit(self):
        assert str(SimTime.ns(10)) == "10 ns"
        assert str(SimTime.us(3)) == "3 us"

    def test_bool(self):
        assert not ZERO
        assert SimTime.fs(1)

    def test_conversions(self):
        t = SimTime.us(1)
        assert t.to_ns() == 1000.0
        assert t.to_us() == 1.0
        assert t.to_fs() == 10**9

    def test_hashable(self):
        assert len({SimTime.ns(1), SimTime.ps(1000), SimTime.ns(2)}) == 2


class TestClock:
    def test_from_frequency(self):
        clock = Clock.from_frequency_mhz(100.0)
        assert clock.period == SimTime.ns(10)

    def test_cycles_to_time(self):
        clock = Clock.from_frequency_mhz(100.0)
        assert clock.cycles_to_time(3) == SimTime.ns(30)
        assert clock.cycles_to_time(2.5) == SimTime.ns(25)

    def test_time_to_cycles_roundtrip(self):
        clock = Clock.from_frequency_mhz(200.0)
        assert clock.time_to_cycles(clock.cycles_to_time(17)) == pytest.approx(17)

    def test_negative_cycles_rejected(self):
        clock = Clock.from_frequency_mhz(100.0)
        with pytest.raises(ValueError):
            clock.cycles_to_time(-1)

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            Clock.from_frequency_mhz(0)
        with pytest.raises(ValueError):
            Clock(SimTime(0))

    @given(st.integers(min_value=1, max_value=10**6))
    def test_cycle_conversion_monotonic(self, cycles):
        clock = Clock.from_frequency_mhz(50.0)
        assert clock.cycles_to_time(cycles) < clock.cycles_to_time(cycles + 1)
