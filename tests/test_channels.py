"""Channel semantics: FIFO, rendezvous, signal, shared variable."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimTime, Simulator, wait


class TestFifo:
    def test_data_delivered_in_order(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        top = sim.module("top")
        received = []

        def producer():
            for value in (10, 20, 30):
                yield from fifo.write(value)

        def consumer():
            for _ in range(3):
                received.append((yield from fifo.read()))

        top.add_process(producer)
        top.add_process(consumer)
        sim.run()
        sim.assert_quiescent()
        assert received == [10, 20, 30]

    def test_bounded_fifo_blocks_writer(self):
        sim = Simulator()
        fifo = sim.fifo("f", capacity=1)
        top = sim.module("top")
        trace = []

        def producer():
            for value in range(3):
                yield from fifo.write(value)
                trace.append(("wrote", value, sim.now.to_ns()))

        def consumer():
            for _ in range(3):
                yield wait(SimTime.ns(10))
                value = yield from fifo.read()
                trace.append(("read", value, sim.now.to_ns()))

        top.add_process(producer)
        top.add_process(consumer)
        sim.run()
        sim.assert_quiescent()
        # writer's second write cannot complete before the first read
        wrote1 = next(t for kind, v, t in trace if kind == "wrote" and v == 1)
        read0 = next(t for kind, v, t in trace if kind == "read" and v == 0)
        assert wrote1 >= read0

    def test_reader_blocks_until_data(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        top = sim.module("top")
        seen = []

        def consumer():
            seen.append((yield from fifo.read()))
            seen.append(sim.now.to_ns())

        def producer():
            yield wait(SimTime.ns(42))
            yield from fifo.write("late")

        top.add_process(consumer)
        top.add_process(producer)
        sim.run()
        sim.assert_quiescent()
        assert seen == ["late", 42.0]

    def test_try_read(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        top = sim.module("top")
        results = []

        def body():
            results.append((yield from fifo.try_read()))
            yield from fifo.write(7)
            results.append((yield from fifo.try_read()))

        top.add_process(body)
        sim.run()
        assert results == [(False, None), (True, 7)]

    def test_access_counts(self):
        sim = Simulator()
        fifo = sim.fifo("f")
        top = sim.module("top")

        def body():
            yield from fifo.write(1)
            yield from fifo.write(2)
            yield from fifo.read()

        top.add_process(body)
        sim.run()
        assert fifo.access_counts == {"write": 2, "read": 1}
        assert len(fifo) == 1

    def test_bad_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.fifo("f", capacity=0)

    @given(values=st.lists(st.integers(), min_size=1, max_size=30),
           capacity=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_fifo_preserves_sequence(self, values, capacity):
        """KPN determinism: bounded FIFO delivers exactly the written
        sequence regardless of capacity-induced blocking."""
        sim = Simulator()
        fifo = sim.fifo("f", capacity=capacity)
        top = sim.module("top")
        received = []

        def producer():
            for value in values:
                yield from fifo.write(value)

        def consumer():
            for _ in values:
                received.append((yield from fifo.read()))

        top.add_process(producer)
        top.add_process(consumer)
        sim.run()
        sim.assert_quiescent()
        assert received == values


class TestRendezvous:
    def test_synchronizes_both_sides(self):
        sim = Simulator()
        channel = sim.rendezvous("rv")
        top = sim.module("top")
        log = []

        def writer():
            yield wait(SimTime.ns(5))
            yield from channel.write("token")
            log.append(("writer-done", sim.now.to_ns()))

        def reader():
            value = yield from channel.read()
            log.append(("reader-got", sim.now.to_ns(), value))

        top.add_process(writer)
        top.add_process(reader)
        sim.run()
        sim.assert_quiescent()
        assert ("reader-got", 5.0, "token") in log
        writer_done = next(t for entry, t, *rest in [(e[0], e[1]) + tuple(e[2:]) for e in log] if entry == "writer-done")
        assert writer_done >= 5.0

    def test_writer_blocks_for_reader(self):
        sim = Simulator()
        channel = sim.rendezvous("rv")
        top = sim.module("top")
        log = []

        def writer():
            yield from channel.write(1)
            log.append(sim.now.to_ns())

        def reader():
            yield wait(SimTime.ns(30))
            yield from channel.read()

        top.add_process(writer)
        top.add_process(reader)
        sim.run()
        sim.assert_quiescent()
        assert log[0] >= 30.0

    def test_multiple_exchanges_in_order(self):
        sim = Simulator()
        channel = sim.rendezvous("rv")
        top = sim.module("top")
        got = []

        def writer():
            for value in range(5):
                yield from channel.write(value)

        def reader():
            for _ in range(5):
                got.append((yield from channel.read()))

        top.add_process(writer)
        top.add_process(reader)
        sim.run()
        sim.assert_quiescent()
        assert got == [0, 1, 2, 3, 4]


class TestSignal:
    def test_write_commits_next_delta(self):
        sim = Simulator()
        signal = sim.signal("s", initial=0)
        top = sim.module("top")
        observed = []

        def writer():
            yield from signal.write(5)
            observed.append(("same-delta", signal.value))
            yield wait(SimTime.fs(0))
            observed.append(("next-delta", signal.value))

        top.add_process(writer)
        sim.run()
        assert observed == [("same-delta", 0), ("next-delta", 5)]

    def test_await_change(self):
        sim = Simulator()
        signal = sim.signal("s", initial=0)
        top = sim.module("top")
        seen = []

        def watcher():
            value = yield from signal.await_change()
            seen.append((value, sim.now.to_ns()))

        def driver():
            yield wait(SimTime.ns(8))
            yield from signal.write(99)

        top.add_process(watcher)
        top.add_process(driver)
        sim.run()
        sim.assert_quiescent()
        assert seen == [(99, 8.0)]

    def test_same_value_write_does_not_wake(self):
        sim = Simulator()
        signal = sim.signal("s", initial=7)
        top = sim.module("top")

        def watcher():
            yield from signal.await_change()

        def driver():
            yield from signal.write(7)

        top.add_process(watcher)
        top.add_process(driver)
        sim.run()
        assert len(sim.scheduler.blocked_processes()) == 1

    def test_history_records_commits(self):
        sim = Simulator()
        signal = sim.signal("s", initial=0)
        top = sim.module("top")

        def driver():
            for value in (1, 2):
                yield from signal.write(value)
                yield wait(SimTime.ns(1))

        top.add_process(driver)
        sim.run()
        values = [v for _, _, v in signal.history]
        assert values == [0, 1, 2]

    def test_last_write_in_delta_wins(self):
        sim = Simulator()
        signal = sim.signal("s", initial=0)
        top = sim.module("top")

        def driver():
            yield from signal.write(1)
            yield from signal.write(2)
            yield wait(SimTime.fs(0))

        top.add_process(driver)
        sim.run()
        assert signal.value == 2
        assert [v for _, _, v in signal.history] == [0, 2]


class TestSharedVariable:
    def test_read_write(self):
        sim = Simulator()
        var = sim.shared_variable("v", initial=10)
        top = sim.module("top")
        got = []

        def body():
            got.append((yield from var.read()))
            yield from var.write(20)
            got.append((yield from var.read()))

        top.add_process(body)
        sim.run()
        assert got == [10, 20]
