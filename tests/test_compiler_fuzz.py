"""Compiler fuzzing: random programs, three-backend agreement.

Hypothesis generates random integer expressions and small control-flow
programs; each is materialized as a real function (via exec of built
source), executed natively, annotated, and compiled onto the ISS.  Any
divergence is a compiler, machine, or annotation bug.
"""

import textwrap

from hypothesis import given, settings, strategies as st

from repro.annotate import CostContext, MODE_SW, active, uniform_costs
from repro.iss import run_compiled
from repro.workloads import wrap_args

# --- expression source generator --------------------------------------------

_BIN_OPS = ["+", "-", "*", "&", "|", "^"]
_SHIFT_OPS = ["<<", ">>"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


def _expressions(depth):
    leaf = st.one_of(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=-20, max_value=20).map(
            lambda v: f"({v})" if v < 0 else str(v)),
    )
    if depth <= 0:
        return leaf

    sub = _expressions(depth - 1)

    def combine(children):
        left, right, op, shift, cmp_op, pick = children
        if pick == 0:
            return f"({left} {op} {right})"
        if pick == 1:
            # bounded shift amount keeps values sane
            return f"({left} {shift} 3)"
        if pick == 2:
            return f"(({left} {cmp_op} {right}) * 1)"
        if pick == 3:
            return f"({left} // (({right} & 7) + 1))"
        return f"({left} % (({right} & 7) + 1))"

    node = st.tuples(sub, sub, st.sampled_from(_BIN_OPS),
                     st.sampled_from(_SHIFT_OPS), st.sampled_from(_CMP_OPS),
                     st.integers(0, 4)).map(combine)
    return st.one_of(leaf, node)


_NAMESPACE_COUNTER = [0]


def _materialize(source: str):
    """exec the function source into a real module so inspect works."""
    import importlib.util
    import sys
    import tempfile
    import os

    _NAMESPACE_COUNTER[0] += 1
    name = f"_fuzz_mod_{_NAMESPACE_COUNTER[0]}"
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".py", prefix=name + "_", delete=False)
    try:
        handle.write(source)
        handle.close()
        spec = importlib.util.spec_from_file_location(name, handle.name)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
        return module.fuzz_fn, handle.name
    except BaseException:
        os.unlink(handle.name)
        raise


def _check_three_backends(source: str, args):
    fn, path = _materialize(source)
    import os
    try:
        expected = fn(*args)
        context = CostContext(uniform_costs(), MODE_SW)
        with active(context):
            annotated = fn(*wrap_args(args))
        compiled = run_compiled([fn], args=list(args))
        assert int(expected) == int(annotated) == compiled.return_value, source
    finally:
        os.unlink(path)


@given(expr=_expressions(3),
       a=st.integers(-30, 30), b=st.integers(-30, 30), c=st.integers(-30, 30))
@settings(max_examples=60, deadline=None)
def test_random_expressions(expr, a, b, c):
    source = textwrap.dedent(f"""
    def fuzz_fn(a, b, c):
        return {expr}
    """)
    _check_three_backends(source, (a, b, c))


@given(cond=_expressions(2), then_expr=_expressions(2),
       else_expr=_expressions(2),
       a=st.integers(-20, 20), b=st.integers(-20, 20), c=st.integers(-20, 20))
@settings(max_examples=40, deadline=None)
def test_random_conditionals(cond, then_expr, else_expr, a, b, c):
    source = textwrap.dedent(f"""
    def fuzz_fn(a, b, c):
        result = 0
        if {cond} > 0:
            result = {then_expr}
        else:
            result = {else_expr}
        return result
    """)
    _check_three_backends(source, (a, b, c))


@given(body=_expressions(2), bound=st.integers(0, 12),
       a=st.integers(-10, 10), b=st.integers(-10, 10))
@settings(max_examples=40, deadline=None)
def test_random_loops(body, bound, a, b):
    source = textwrap.dedent(f"""
    def fuzz_fn(a, b, c):
        total = 0
        for c in range({bound}):
            total = total + ({body})
            total = total & 1048575
        return total
    """)
    _check_three_backends(source, (a, b, 0))
