"""Perfetto / Chrome ``trace_event`` export of a simulation trace.

Renders the kernel's record stream as a JSON object loadable in
https://ui.perfetto.dev or ``chrome://tracing``:

* every simulation **process** becomes a named thread (track),
* **segments** — the stretches of user code between two nodes — become
  duration (``X``) events spanning previous node-finished to next
  node-reached,
* **channel accesses, waits and marks** become instant (``i``) events,
* both of the paper's clocks are available: the *time* clock (simulated
  femtoseconds; Fig. 5b's strict-timed axis) and the *delta* clock
  (one tick per distinct ``(time, delta)`` instant; Fig. 5a's untimed
  axis, where all activity collapses onto t = 0 and only delta cycles
  order events).  ``clock="both"`` emits the two as separate process
  groups so they can be compared side by side.

Timestamps are microseconds (the trace_event unit): 1 simulated ns is
rendered as 1 µs on the time clock so femtosecond-resolution steps
remain visible in the UI zoom range.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..kernel.tracing import TraceRecord
from .sinks import ObserveError

CLOCK_TIME = "time"
CLOCK_DELTA = "delta"
CLOCK_BOTH = "both"

#: pid values of the two clock tracks.
_PID_OF_CLOCK = {CLOCK_TIME: 1, CLOCK_DELTA: 2}

#: trace_event ts is in microseconds; scale 1 ns -> 1 us.
_FS_PER_TS_UNIT = 1_000_000.0


class _ClockView:
    """Maps records onto one clock's timestamp axis."""

    def __init__(self, clock: str):
        self.clock = clock
        self.pid = _PID_OF_CLOCK[clock]
        self._instants: Dict[Tuple[int, int], int] = {}

    def ts(self, record: TraceRecord) -> float:
        if self.clock == CLOCK_TIME:
            return record.time_fs / _FS_PER_TS_UNIT
        key = (record.time_fs, record.delta)
        tick = self._instants.get(key)
        if tick is None:
            tick = len(self._instants)
            self._instants[key] = tick
        return float(tick)


def _clock_views(clock: str) -> List[_ClockView]:
    if clock == CLOCK_BOTH:
        return [_ClockView(CLOCK_TIME), _ClockView(CLOCK_DELTA)]
    if clock in (CLOCK_TIME, CLOCK_DELTA):
        return [_ClockView(clock)]
    raise ObserveError(
        f"unknown clock {clock!r}; choose {CLOCK_TIME!r}, {CLOCK_DELTA!r} "
        f"or {CLOCK_BOTH!r}"
    )


def to_trace_events(records: Iterable[TraceRecord],
                    clock: str = CLOCK_BOTH) -> dict:
    """Build the trace_event JSON object for ``records``.

    Deterministic: thread ids are assigned in first-appearance order,
    the delta clock in first-instant order — two identical simulations
    produce identical payloads.
    """
    views = _clock_views(clock)
    records = list(records)

    tids: Dict[str, int] = {}
    for record in records:
        if record.process not in tids:
            tids[record.process] = len(tids) + 1

    events: List[dict] = []
    for view in views:
        label = ("simulated time (1ns = 1us)" if view.clock == CLOCK_TIME
                 else "delta cycles (1 instant = 1us)")
        events.append({"ph": "M", "name": "process_name", "pid": view.pid,
                       "tid": 0, "args": {"name": f"clock: {label}"}})
        for process, tid in tids.items():
            events.append({"ph": "M", "name": "thread_name", "pid": view.pid,
                           "tid": tid, "args": {"name": process}})

    for view in views:
        # Per-process timestamp of the last node-finished (segment start).
        open_segment: Dict[str, float] = {}
        for record in records:
            ts = view.ts(record)
            tid = tids[record.process]
            if record.kind == "node-reached":
                start = open_segment.get(record.process)
                if start is None:
                    start = ts  # first segment starts with the process
                events.append({
                    "ph": "X", "name": f"segment → {record.detail}",
                    "cat": "segment", "pid": view.pid, "tid": tid,
                    "ts": start, "dur": max(0.0, ts - start),
                })
                events.append({
                    "ph": "i", "name": record.detail, "cat": "node",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            elif record.kind == "node-finished":
                open_segment[record.process] = ts
                if record.depth >= 0:
                    events.append({
                        "ph": "C", "name": f"{record.detail.split('.')[0]} depth",
                        "cat": "channel", "pid": view.pid, "tid": tid,
                        "ts": ts, "args": {"depth": record.depth},
                    })
            elif record.kind == "mark":
                events.append({
                    "ph": "i", "name": f"mark: {record.detail}", "cat": "mark",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            elif record.kind == "exit":
                events.append({
                    "ph": "i", "name": "exit", "cat": "process",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            # resume/suspend records shape the VCD export; in Perfetto the
            # segment duration events already carry the same information.

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.observe.perfetto",
            "clock": clock,
            "processes": len(tids),
            "records": len(records),
        },
    }


def render_perfetto(records: Iterable[TraceRecord],
                    clock: str = CLOCK_BOTH) -> str:
    """The trace_event payload as deterministic JSON text."""
    return json.dumps(to_trace_events(records, clock=clock),
                      sort_keys=True, indent=1)


def export_perfetto(records: Iterable[TraceRecord],
                    path: Union[str, pathlib.Path],
                    clock: str = CLOCK_BOTH) -> dict:
    """Write the trace_event JSON to ``path``; returns the payload."""
    payload = to_trace_events(records, clock=clock)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return payload


#: Phases we emit, and the extra keys each requires.
_PHASE_REQUIRED = {
    "M": ("args",),
    "X": ("ts", "dur"),
    "i": ("ts", "s"),
    "C": ("ts", "args"),
}


def validate_trace_events(payload: dict) -> List[str]:
    """Validate ``payload`` against the trace_event schema (the subset
    this exporter emits).  Returns a list of problems; empty == valid.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"{where}: phase {phase!r} missing {key!r}")
        if "ts" in event and not isinstance(event["ts"], (int, float)):
            problems.append(f"{where}: ts must be a number")
        if phase == "X" and isinstance(event.get("dur"), (int, float)) \
                and event["dur"] < 0:
            problems.append(f"{where}: negative duration")
    return problems


__all__ = [
    "CLOCK_BOTH",
    "CLOCK_DELTA",
    "CLOCK_TIME",
    "export_perfetto",
    "render_perfetto",
    "to_trace_events",
    "validate_trace_events",
]
