"""Perfetto / Chrome ``trace_event`` export of a simulation trace.

Renders the kernel's record stream as a JSON object loadable in
https://ui.perfetto.dev or ``chrome://tracing``:

* every simulation **process** becomes a named thread (track),
* **segments** — the stretches of user code between two nodes — become
  duration (``X``) events spanning previous node-finished to next
  node-reached,
* **channel accesses, waits and marks** become instant (``i``) events,
* both of the paper's clocks are available: the *time* clock (simulated
  femtoseconds; Fig. 5b's strict-timed axis) and the *delta* clock
  (one tick per distinct ``(time, delta)`` instant, renumbered from 0
  within each simulated-time window and tiled at a fixed stride;
  Fig. 5a's untimed axis, where all activity collapses onto t = 0 and
  only delta cycles order events).  ``clock="both"`` emits the two as
  separate process groups so they can be compared side by side.

Timestamps are microseconds (the trace_event unit): 1 simulated ns is
rendered as 1 µs on the time clock so femtosecond-resolution steps
remain visible in the UI zoom range.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..kernel.tracing import TraceRecord
from .sinks import ObserveError

CLOCK_TIME = "time"
CLOCK_DELTA = "delta"
CLOCK_BOTH = "both"

#: pid values of the two clock tracks.
_PID_OF_CLOCK = {CLOCK_TIME: 1, CLOCK_DELTA: 2}

#: trace_event ts is in microseconds; scale 1 ns -> 1 us.
_FS_PER_TS_UNIT = 1_000_000.0


def _delta_ticks(records: Iterable[TraceRecord]
                 ) -> Tuple[Dict[Tuple[int, int], int], int]:
    """Delta-clock ticks, renumbered per simulated-time window.

    Delta cycles are an intra-timestep ordering: the kernel restarts
    delta numbering every time simulated time advances, so the delta
    track must too — a globally increasing instant counter would make
    the tick at t=80ns depend on how much activity happened at earlier
    times, and long runs would show deltas "drifting" upward.

    Each distinct simulated time is a *window*; within it, distinct
    ``(time, delta)`` instants get local ticks 0, 1, 2, ... in
    first-appearance order.  Windows are tiled onto the timestamp axis
    at a fixed ``stride`` — the largest window's instant count — so
    ticks stay monotonically non-decreasing across the whole track
    while every window visibly restarts at a multiple of the stride.

    Returns ``(ticks, stride)`` with ``ticks[(time_fs, delta)]`` =
    ``window_index * stride + local_tick``.
    """
    windows: Dict[int, Dict[int, int]] = {}
    order: List[int] = []
    for record in records:
        window = windows.get(record.time_fs)
        if window is None:
            window = windows[record.time_fs] = {}
            order.append(record.time_fs)
        if record.delta not in window:
            window[record.delta] = len(window)
    stride = max((len(window) for window in windows.values()), default=1)
    ticks = {(time_fs, delta): index * stride + local
             for index, time_fs in enumerate(order)
             for delta, local in windows[time_fs].items()}
    return ticks, stride


class _ClockView:
    """Maps records onto one clock's timestamp axis."""

    def __init__(self, clock: str,
                 delta_ticks: Optional[Dict[Tuple[int, int], int]] = None):
        self.clock = clock
        self.pid = _PID_OF_CLOCK[clock]
        self._ticks = delta_ticks or {}

    def ts(self, record: TraceRecord) -> float:
        if self.clock == CLOCK_TIME:
            return record.time_fs / _FS_PER_TS_UNIT
        return float(self._ticks[(record.time_fs, record.delta)])


def _clock_views(clock: str, records: List[TraceRecord]
                 ) -> Tuple[List[_ClockView], int]:
    if clock not in (CLOCK_TIME, CLOCK_DELTA, CLOCK_BOTH):
        raise ObserveError(
            f"unknown clock {clock!r}; choose {CLOCK_TIME!r}, "
            f"{CLOCK_DELTA!r} or {CLOCK_BOTH!r}"
        )
    views: List[_ClockView] = []
    stride = 0
    if clock in (CLOCK_TIME, CLOCK_BOTH):
        views.append(_ClockView(CLOCK_TIME))
    if clock in (CLOCK_DELTA, CLOCK_BOTH):
        ticks, stride = _delta_ticks(records)
        views.append(_ClockView(CLOCK_DELTA, ticks))
    return views, stride


def to_trace_events(records: Iterable[TraceRecord],
                    clock: str = CLOCK_BOTH) -> dict:
    """Build the trace_event JSON object for ``records``.

    Deterministic: thread ids are assigned in first-appearance order,
    the delta clock in first-instant order within each simulated-time
    window (see :func:`_delta_ticks`) — two identical simulations
    produce identical payloads.
    """
    records = list(records)
    views, delta_stride = _clock_views(clock, records)

    tids: Dict[str, int] = {}
    for record in records:
        if record.process not in tids:
            tids[record.process] = len(tids) + 1

    events: List[dict] = []
    for view in views:
        label = ("simulated time (1ns = 1us)" if view.clock == CLOCK_TIME
                 else "delta cycles (1 instant = 1us)")
        events.append({"ph": "M", "name": "process_name", "pid": view.pid,
                       "tid": 0, "args": {"name": f"clock: {label}"}})
        for process, tid in tids.items():
            events.append({"ph": "M", "name": "thread_name", "pid": view.pid,
                           "tid": tid, "args": {"name": process}})

    for view in views:
        # Per-process timestamp of the last node-finished (segment start).
        open_segment: Dict[str, float] = {}
        for record in records:
            ts = view.ts(record)
            tid = tids[record.process]
            if record.kind == "node-reached":
                start = open_segment.get(record.process)
                if start is None:
                    start = ts  # first segment starts with the process
                events.append({
                    "ph": "X", "name": f"segment → {record.detail}",
                    "cat": "segment", "pid": view.pid, "tid": tid,
                    "ts": start, "dur": max(0.0, ts - start),
                })
                events.append({
                    "ph": "i", "name": record.detail, "cat": "node",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            elif record.kind == "node-finished":
                open_segment[record.process] = ts
                if record.depth >= 0:
                    events.append({
                        "ph": "C", "name": f"{record.detail.split('.')[0]} depth",
                        "cat": "channel", "pid": view.pid, "tid": tid,
                        "ts": ts, "args": {"depth": record.depth},
                    })
            elif record.kind == "mark":
                events.append({
                    "ph": "i", "name": f"mark: {record.detail}", "cat": "mark",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            elif record.kind == "exit":
                events.append({
                    "ph": "i", "name": "exit", "cat": "process",
                    "pid": view.pid, "tid": tid, "ts": ts, "s": "t",
                })
            # resume/suspend records shape the VCD export; in Perfetto the
            # segment duration events already carry the same information.

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.observe.perfetto",
            "clock": clock,
            "processes": len(tids),
            "records": len(records),
            # delta-track tiling: each simulated-time window restarts
            # its delta ticks at a multiple of this stride (0 when the
            # delta clock was not emitted).
            "delta_stride": delta_stride,
        },
    }


def render_perfetto(records: Iterable[TraceRecord],
                    clock: str = CLOCK_BOTH) -> str:
    """The trace_event payload as deterministic JSON text."""
    return json.dumps(to_trace_events(records, clock=clock),
                      sort_keys=True, indent=1)


def export_perfetto(records: Iterable[TraceRecord],
                    path: Union[str, pathlib.Path],
                    clock: str = CLOCK_BOTH) -> dict:
    """Write the trace_event JSON to ``path``; returns the payload."""
    payload = to_trace_events(records, clock=clock)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return payload


#: Phases we emit, and the extra keys each requires.
_PHASE_REQUIRED = {
    "M": ("args",),
    "X": ("ts", "dur"),
    "i": ("ts", "s"),
    "C": ("ts", "args"),
}


def validate_trace_events(payload: dict) -> List[str]:
    """Validate ``payload`` against the trace_event schema (the subset
    this exporter emits).  Returns a list of problems; empty == valid.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"{where}: phase {phase!r} missing {key!r}")
        if "ts" in event and not isinstance(event["ts"], (int, float)):
            problems.append(f"{where}: ts must be a number")
        if phase == "X" and isinstance(event.get("dur"), (int, float)) \
                and event["dur"] < 0:
            problems.append(f"{where}: negative duration")
    return problems


__all__ = [
    "CLOCK_BOTH",
    "CLOCK_DELTA",
    "CLOCK_TIME",
    "export_perfetto",
    "render_perfetto",
    "to_trace_events",
    "validate_trace_events",
]
