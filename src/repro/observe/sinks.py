"""Trace sinks: where the kernel's record stream goes.

The :class:`~repro.kernel.tracing.TraceSink` protocol (and the
unbounded :class:`~repro.kernel.tracing.MemorySink`) live in the kernel
next to the recorder; this module adds the sinks that make large
campaigns observable:

* :class:`RingSink` — a bounded buffer that keeps only the most recent
  records (drop-oldest), for always-on tracing of long runs where only
  the tail matters (post-mortem of a deadlock or timeout);
* :class:`JsonlSink` — a streaming writer that serializes each record
  to one JSON line as it is emitted, so the full trace of a
  multi-million-event run costs O(1) memory and lands on disk in a
  format every downstream exporter (and ``jq``) can read back.

Serialization is canonical — sorted keys, no whitespace, no
timestamps — so two identical simulations produce byte-identical
trace files; the determinism/differential test layer relies on it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from collections import deque
from typing import IO, Iterator, List, Optional, Union

from ..errors import ReproError
from ..kernel.tracing import MemorySink, TraceRecord, TraceSink

#: Suffix a truncated trace file is renamed to when its run fails
#: mid-stream; readers and the cache maintenance sweeps treat such
#: files as incomplete, never as traces.
PARTIAL_SUFFIX = ".partial"


class ObserveError(ReproError):
    """Raised for malformed trace streams and exporter misuse."""


class RingSink(TraceSink):
    """Bounded in-memory sink: keeps the newest ``capacity`` records.

    Once full, each new record evicts the oldest — memory stays flat
    however long the simulation runs.  ``count`` still reports the
    total number of records ever emitted, so callers can tell how much
    history was dropped (``count - len(records)``).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ObserveError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, record: TraceRecord) -> None:
        self._ring.append(record)
        self._emitted += 1

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._ring)

    @property
    def count(self) -> int:
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records evicted so far."""
        return self._emitted - len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._emitted = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._ring)


#: Field order of the JSONL wire format (also the CSV-ish human order).
_FIELDS = ("time_fs", "delta", "process", "kind", "detail", "depth")


def record_to_json(record: TraceRecord) -> str:
    """Canonical one-line JSON for ``record`` (sorted keys, no spaces)."""
    return json.dumps(dataclasses.asdict(record),
                      sort_keys=True, separators=(",", ":"))


def record_from_json(line: str) -> TraceRecord:
    """Inverse of :func:`record_to_json`; tolerant of missing ``depth``."""
    try:
        payload = json.loads(line)
        return TraceRecord(**{name: payload[name] for name in _FIELDS
                              if name in payload})
    except (ValueError, TypeError, KeyError) as exc:
        raise ObserveError(f"malformed trace record line: {exc}") from exc


class JsonlSink(TraceSink):
    """Streaming sink: one canonical JSON line per record, written as
    records arrive.

    Holds no record history — peak memory is one record plus the file
    buffer, independent of event count.  Pass a path (the sink opens and
    owns the file) or an open text handle (the caller keeps ownership).
    """

    def __init__(self, target: Union[str, pathlib.Path, IO[str]]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target
            self._owns_handle = False
            self.path: Optional[pathlib.Path] = None
        else:
            self.path = pathlib.Path(target)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._owns_handle = True
        self._emitted = 0

    def emit(self, record: TraceRecord) -> None:
        self._handle.write(record_to_json(record))
        self._handle.write("\n")
        self._emitted += 1

    @property
    def count(self) -> int:
        return self._emitted

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def abandon(self) -> Optional[pathlib.Path]:
        """Close and mark the file as incomplete (rename to ``.partial``).

        Called when the run producing this trace failed: whatever hit
        disk is truncated mid-stream, and leaving it under the real
        name would let a later sweep read it as a complete trace.
        Returns the ``.partial`` path, or None when the sink wraps a
        caller-owned handle (nothing to rename).
        """
        self.close()
        if self.path is None or not self._owns_handle:
            return None
        partial = self.path.with_name(self.path.name + PARTIAL_SUFFIX)
        try:
            os.replace(self.path, partial)
        except OSError:
            return None
        return partial

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: Union[str, pathlib.Path]) -> List[TraceRecord]:
    """Load a JSONL trace back into records (for exporters and tests)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_json(line))
    return records


def iter_jsonl(path: Union[str, pathlib.Path]) -> Iterator[TraceRecord]:
    """Streaming variant of :func:`read_jsonl` (O(1) memory)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield record_from_json(line)


__all__ = [
    "JsonlSink",
    "MemorySink",
    "ObserveError",
    "PARTIAL_SUFFIX",
    "RingSink",
    "TraceSink",
    "iter_jsonl",
    "read_jsonl",
    "record_from_json",
    "record_to_json",
]
