"""VCD waveforms of process activity and channel occupancy.

Complements the kernel's :class:`~repro.kernel.tracing.VcdWriter`
(which dumps :class:`Signal` value histories): this exporter works from
the **event trace** alone, so any traced simulation — including ones
with no signals at all — yields a waveform viewable in GTKWave:

* one 2-bit ``<process>_state`` wire per process —
  0 waiting, 1 running, 2 done.  Needs ``resume``/``suspend`` records
  (``record_states=True``); without them it falls back to marking the
  process active around each node event.
* one 16-bit ``<channel>_depth`` register per channel that reported an
  occupancy (FIFOs) — the committed depth after each completed access.

The time axis is simulated femtoseconds, *delta-expanded*: VCD has no
zero-time transitions, so each successive change inside one simulated
instant is pushed one femtosecond later.  At nanosecond scales the
distortion is invisible, while purely untimed activity (the paper's
Fig. 5a, everything at t = 0) spreads into a readable waveform instead
of collapsing onto a single tick.
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..kernel.tracing import TraceRecord
from .sinks import ObserveError

STATE_WAITING = 0
STATE_RUNNING = 1
STATE_DONE = 2

_ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index: int) -> str:
    code = _ID_CHARS[index % len(_ID_CHARS)]
    index //= len(_ID_CHARS)
    while index:
        code += _ID_CHARS[index % len(_ID_CHARS)]
        index //= len(_ID_CHARS)
    return code


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.]", "_", name)


def render_vcd(records: Iterable[TraceRecord]) -> str:
    """Render the trace as VCD text (see module docstring)."""
    records = list(records)
    processes: List[str] = []
    channels: List[str] = []
    for record in records:
        if record.process not in processes:
            processes.append(record.process)
        if record.kind == "node-finished" and record.depth >= 0:
            channel = record.detail.rsplit(".", 1)[0]
            if channel not in channels:
                channels.append(channel)
    if not processes:
        raise ObserveError("empty trace: nothing to export")

    has_states = any(r.kind == "resume" for r in records)

    ids: Dict[Tuple[str, str], str] = {}
    lines = [
        "$date reproduction run $end",
        "$version repro.observe VCD export $end",
        "$timescale 1 fs $end",
        "$scope module processes $end",
    ]
    for process in processes:
        code = _identifier(len(ids))
        ids[("state", process)] = code
        lines.append(f"$var wire 2 {code} {_sanitize(process)}_state $end")
    lines.append("$upscope $end")
    if channels:
        lines.append("$scope module channels $end")
        for channel in channels:
            code = _identifier(len(ids))
            ids[("depth", channel)] = code
            lines.append(f"$var integer 16 {code} {_sanitize(channel)}_depth $end")
        lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Change groups: (time_fs, [(code, value), ...]); one group per
    # record (scheduler time is monotone, so groups arrive in order).
    groups: List[Tuple[int, List[Tuple[str, int]]]] = [(0, [])]
    for process in processes:
        groups[0][1].append((ids[("state", process)], STATE_WAITING))
    for channel in channels:
        groups[0][1].append((ids[("depth", channel)], 0))

    for record in records:
        group: List[Tuple[str, int]] = []
        code = ids[("state", record.process)]
        if has_states:
            if record.kind == "resume":
                group.append((code, STATE_RUNNING))
            elif record.kind == "suspend":
                group.append((code, STATE_WAITING))
        else:
            if record.kind == "node-reached":
                group.append((code, STATE_RUNNING))
            elif record.kind == "node-finished":
                group.append((code, STATE_WAITING))
        if record.kind == "exit":
            group.append((code, STATE_DONE))
        if record.kind == "node-finished" and record.depth >= 0:
            channel = record.detail.rsplit(".", 1)[0]
            group.append((ids[("depth", channel)], record.depth))
        if group:
            groups.append((record.time_fs, group))

    body: List[str] = []
    current: Dict[str, Optional[int]] = {code: None for code in ids.values()}
    last_stamp = -1
    for time_fs, group in groups:
        writes = [(code, value) for code, value in group
                  if current[code] != value]
        if not writes:
            continue
        # Delta expansion: changes inside one instant each move 1 fs on.
        stamp = max(time_fs, last_stamp + 1)
        body.append(f"#{stamp}")
        for code, value in writes:
            body.append(f"b{bin(value)[2:]} {code}")
            current[code] = value
        last_stamp = stamp

    return "\n".join(lines + body) + "\n"


def export_vcd(records: Iterable[TraceRecord],
               path: Union[str, pathlib.Path]) -> str:
    """Write the waveform to ``path``; returns the rendered text."""
    text = render_vcd(records)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(text)
    return text


def parse_vcd(text: str) -> Tuple[Dict[str, str], List[Tuple[int, str, int]]]:
    """Parse VCD text into ``(id -> var name, [(time, id, value)])``.

    A deliberately small reader covering the subset this exporter (and
    the kernel's VcdWriter) produce — scalar/vector ``b...`` changes —
    used by the test layer and handy for scripting over waveforms
    without GTKWave.
    """
    variables: Dict[str, str] = {}
    changes: List[Tuple[int, str, int]] = []
    in_definitions = True
    now = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                if len(parts) < 6 or parts[-1] != "$end":
                    raise ObserveError(f"malformed $var line: {line!r}")
                variables[parts[3]] = parts[4]
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            try:
                now = int(line[1:])
            except ValueError as exc:
                raise ObserveError(f"malformed timestamp {line!r}") from exc
        elif line.startswith("b"):
            try:
                bits, code = line[1:].split()
                value = int(bits, 2)
            except ValueError as exc:
                raise ObserveError(f"malformed value change {line!r}") from exc
            if code not in variables:
                raise ObserveError(f"value change for undeclared id {code!r}")
            changes.append((now, code, value))
        else:
            raise ObserveError(f"unsupported VCD statement {line!r}")
    return variables, changes


__all__ = [
    "STATE_DONE",
    "STATE_RUNNING",
    "STATE_WAITING",
    "export_vcd",
    "parse_vcd",
    "render_vcd",
]
