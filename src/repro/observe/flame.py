"""Flamegraph (collapsed-stack) export of annotated cost.

Turns a :class:`~repro.observe.profiler.Profiler` into the classic
``flamegraph.pl`` / speedscope collapsed-stack format — one line per
stack with an integer weight::

    top.consumer;S1-2;mul 1024
    top.consumer;S1-2;add 512

The stack is ``process;segment;operation`` and the weight is the
operation's total annotated cost in cycles (count × per-operation cost
from the :mod:`repro.annotate` tables), so the flamegraph answers
"where do the estimated cycles come from" — per process, per segment,
per operator.  Feed the output to ``flamegraph.pl`` or paste it into
https://www.speedscope.app (import as "collapsed stacks").

``weight="host"`` switches the leaf weight to host wall-time in
microseconds — where the *simulation itself* burns time — using the
same stack layout without the per-operator leaves.
"""

from __future__ import annotations

import pathlib
from typing import List, Union

from .profiler import Profiler
from .sinks import ObserveError

WEIGHT_CYCLES = "cycles"
WEIGHT_HOST = "host"


def collapsed_stacks(profiler: Profiler,
                     weight: str = WEIGHT_CYCLES) -> List[str]:
    """Collapsed-stack lines for ``profiler``, heaviest first."""
    if weight not in (WEIGHT_CYCLES, WEIGHT_HOST):
        raise ObserveError(
            f"unknown weight {weight!r}; choose {WEIGHT_CYCLES!r} "
            f"or {WEIGHT_HOST!r}")
    lines: List[tuple] = []
    for (process, label), profile in profiler.segments.items():
        if weight == WEIGHT_HOST:
            value = int(round(1e6 * profile.host_s))
            if value > 0:
                lines.append((value, f"{process};{label}"))
            continue
        charged = 0.0
        for operation in sorted(profile.op_cycles):
            cycles = profile.op_cycles[operation]
            charged += cycles
            value = int(round(cycles))
            if value > 0:
                lines.append((value, f"{process};{label};{operation}"))
        # Cost not attributable to a single operator (fractional
        # residue, ops missing from the table) stays on the segment.
        residue = int(round(profile.cycles_max - charged))
        if residue > 0:
            lines.append((residue, f"{process};{label}"))
    lines.sort(key=lambda item: (-item[0], item[1]))
    return [f"{stack} {value}" for value, stack in lines]


def render_flamegraph(profiler: Profiler,
                      weight: str = WEIGHT_CYCLES) -> str:
    return "\n".join(collapsed_stacks(profiler, weight=weight)) + "\n"


def export_flamegraph(profiler: Profiler,
                      path: Union[str, pathlib.Path],
                      weight: str = WEIGHT_CYCLES) -> str:
    """Write collapsed stacks to ``path``; returns the rendered text."""
    text = render_flamegraph(profiler, weight=weight)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


__all__ = [
    "WEIGHT_CYCLES",
    "WEIGHT_HOST",
    "collapsed_stacks",
    "export_flamegraph",
    "render_flamegraph",
]
