"""The :class:`Profiler` observer: per-segment counts, cycles and host time.

The paper's tables report overload/gain *per run*; production-scale
campaigns need the same columns **per segment**: how often each closed
piece of code executed, how many estimated cycles it accumulated (both
the sequential Tmax and the critical-path Tmin bound), which operations
those cycles came from, and how much *host* wall-time the simulation
spent executing it (where the Python model itself is slow).

The profiler is a passive scheduler observer, attached like the
tracer::

    profiler = Profiler()
    simulator.add_observer(profiler)
    ...
    print(profiler.report())

Cycle figures need an active cost context (i.e. a
:class:`~repro.core.PerformanceLibrary` attached, or ``with active(ctx)``
around the run); without one the profiler still counts calls and host
time.  Because scheduler observers run *before* the timing agent resets
the context at each node, the profiler reads exactly the accumulation
the agent turns into sleep time — per-process totals therefore
reconcile with :class:`~repro.core.ProcessTimingStats` (asserted in the
test suite).
"""

from __future__ import annotations

import dataclasses
import time as _time
from typing import Dict, List, Optional, Tuple

from ..annotate.context import current_context
from ..kernel.commands import Command
from ..kernel.process import Process
from ..kernel.scheduler import SchedulerObserver
from ..kernel.time import SimTime
from ..segments.tracker import node_id_for


@dataclasses.dataclass
class SegmentProfile:
    """Aggregated figures for one segment of one process."""

    process: str
    label: str                  # Si-j over first-appearance node labels
    end_detail: str             # the node the segment runs into
    calls: int = 0
    cycles_max: float = 0.0     # sequential bound (sum of operation costs)
    cycles_min: float = 0.0     # critical-path bound
    host_s: float = 0.0         # host wall-time spent in the segment
    op_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    op_cycles: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def mean_cycles(self) -> float:
        return self.cycles_max / self.calls if self.calls else 0.0


class Profiler(SchedulerObserver):
    """Aggregates per-segment call counts, cycles and host wall-time."""

    def __init__(self) -> None:
        #: (process, segment key) -> SegmentProfile, in first-appearance order
        self.segments: Dict[Tuple[str, str], SegmentProfile] = {}
        self._node_labels: Dict[str, Dict[object, str]] = {}
        self._last_node: Dict[str, str] = {}
        self._host_marker: Dict[str, float] = {}
        self._started_at = _time.perf_counter()
        self.wall_s = 0.0

    # -- node labelling (mirrors the tracker's N0/N1... scheme) -----------

    def _label(self, process: str, node) -> str:
        labels = self._node_labels.setdefault(process, {})
        label = labels.get(node)
        if label is None:
            label = f"N{len(labels)}"
            labels[node] = label
        return label

    # -- observer callbacks ----------------------------------------------

    def on_process_start(self, process: Process, now: SimTime) -> None:
        name = process.full_name
        self._last_node[name] = "entry"
        self._node_labels.setdefault(name, {})["__entry__"] = "N0"

    def on_process_resume(self, process: Process, now: SimTime) -> None:
        self._host_marker[process.full_name] = _time.perf_counter()

    def on_node_reached(self, process: Process, command: Command,
                        now: SimTime, delta: int) -> None:
        name = process.full_name
        node = node_id_for(process, command)
        if name not in self._last_node:     # attached mid-simulation
            self.on_process_start(process, now)
        start_label = self._last_node.get(name, "entry")
        if start_label == "entry":
            start_label = "N0"
        end_label = self._label(name, node)
        key = f"S{start_label[1:]}-{end_label[1:]}"
        profile = self.segments.get((name, key))
        if profile is None:
            profile = SegmentProfile(name, key, node.describe())
            self.segments[(name, key)] = profile

        profile.calls += 1
        host_marker = self._host_marker.get(name)
        if host_marker is not None:
            nowh = _time.perf_counter()
            profile.host_s += nowh - host_marker
            self._host_marker[name] = nowh

        context = current_context()
        if context is not None:
            t_max, t_min = context.segment_totals()
            profile.cycles_max += t_max
            profile.cycles_min += t_min
            for operation, count in context.op_counts.items():
                profile.op_counts[operation] = (
                    profile.op_counts.get(operation, 0) + count)
                if operation in context.costs:
                    profile.op_cycles[operation] = (
                        profile.op_cycles.get(operation, 0.0)
                        + count * context.costs.get(operation))
        self._last_node[name] = end_label

    def on_node_finished(self, process: Process, command: Command,
                         now: SimTime, delta: int) -> None:
        # Communication time is not segment time: restart the host clock.
        self._host_marker[process.full_name] = _time.perf_counter()

    def on_process_exit(self, process: Process, now: SimTime) -> None:
        self._host_marker.pop(process.full_name, None)
        self.wall_s = _time.perf_counter() - self._started_at

    # -- queries ------------------------------------------------------------

    def profiles_of(self, process: str) -> List[SegmentProfile]:
        return [p for (name, _), p in self.segments.items() if name == process]

    def processes(self) -> List[str]:
        seen: List[str] = []
        for name, _ in self.segments:
            if name not in seen:
                seen.append(name)
        return seen

    def total_cycles_of(self, process: str) -> Tuple[float, float]:
        """``(sum Tmax, sum Tmin)`` over the process's segments.

        Both estimation bounds are linear over segments, so for a
        process on a resource with interpolation factor ``k`` the
        back-annotated total is ``sum_min + (sum_max - sum_min) * k`` —
        the reconciliation identity the tests assert against
        :class:`~repro.core.ProcessTimingStats`.
        """
        profiles = self.profiles_of(process)
        return (sum(p.cycles_max for p in profiles),
                sum(p.cycles_min for p in profiles))

    def report(self) -> str:
        """Plain-text per-segment profile (the overload/gain columns)."""
        lines: List[str] = []
        for name in self.processes():
            profiles = self.profiles_of(name)
            total_max, _ = self.total_cycles_of(name)
            total_host = sum(p.host_s for p in profiles)
            lines.append(f"process {name}: {len(profiles)} segments, "
                         f"{total_max:.1f} cycles, host {1e3 * total_host:.2f}ms")
            for p in profiles:
                top = ""
                if p.op_cycles:
                    op, cycles = max(p.op_cycles.items(),
                                     key=lambda item: (item[1], item[0]))
                    top = f"  top={op}({cycles:.0f}cyc)"
                lines.append(
                    f"  {p.label} (→{p.end_detail}) x{p.calls}"
                    f"  cycles={p.cycles_max:.1f}"
                    f"  host={1e6 * p.host_s:.0f}us{top}")
        return "\n".join(lines)


__all__ = ["Profiler", "SegmentProfile"]
