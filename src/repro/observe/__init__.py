"""repro.observe — streaming trace/profile observability.

The paper's whole point is *visibility* into a strict-timed simulation
(Fig. 5's timelines, §4's timing analyses); this subsystem makes that
visibility scale from one interactive run to production campaigns:

* **sinks** — the kernel's :class:`~repro.kernel.tracing.TraceRecorder`
  writes through a pluggable :class:`TraceSink`: unbounded
  :class:`MemorySink`, bounded :class:`RingSink` (keep the tail),
  streaming :class:`JsonlSink` (O(1) memory, canonical byte-stable
  JSONL on disk);
* **exporters** — :func:`export_perfetto` (Chrome/Perfetto
  ``trace_event`` JSON; processes as tracks, segments as duration
  events, on both the time and delta clocks), :func:`export_vcd`
  (GTKWave waveforms of process states and channel occupancy),
  :func:`export_flamegraph` (collapsed stacks of per-segment,
  per-operator annotated cost);
* **profiler** — the :class:`Profiler` observer aggregates per-segment
  call counts, estimated cycles and host wall-time, reconciling with
  the performance library's per-process totals;
* **sessions** — :class:`ObserveSession` instruments every simulator an
  unmodified script constructs; ``repro trace`` and the batch
  subsystem's per-run artifacts drive it.

See ``docs/observe.md`` for the guide.
"""

from .flame import (
    WEIGHT_CYCLES,
    WEIGHT_HOST,
    collapsed_stacks,
    export_flamegraph,
    render_flamegraph,
)
from .perfetto import (
    CLOCK_BOTH,
    CLOCK_DELTA,
    CLOCK_TIME,
    export_perfetto,
    render_perfetto,
    to_trace_events,
    validate_trace_events,
)
from .profiler import Profiler, SegmentProfile
from .session import Observation, ObserveSession, observe_script
from .sinks import (
    JsonlSink,
    MemorySink,
    ObserveError,
    PARTIAL_SUFFIX,
    RingSink,
    TraceSink,
    iter_jsonl,
    read_jsonl,
    record_from_json,
    record_to_json,
)
from .vcd import (
    STATE_DONE,
    STATE_RUNNING,
    STATE_WAITING,
    export_vcd,
    parse_vcd,
    render_vcd,
)

__all__ = [
    "CLOCK_BOTH", "CLOCK_DELTA", "CLOCK_TIME",
    "JsonlSink", "MemorySink", "ObserveError", "Observation",
    "ObserveSession", "PARTIAL_SUFFIX", "Profiler", "RingSink",
    "SegmentProfile",
    "STATE_DONE", "STATE_RUNNING", "STATE_WAITING", "TraceSink",
    "WEIGHT_CYCLES", "WEIGHT_HOST",
    "collapsed_stacks", "export_flamegraph", "export_perfetto",
    "export_vcd", "iter_jsonl", "observe_script", "parse_vcd",
    "read_jsonl", "record_from_json", "record_to_json",
    "render_flamegraph", "render_perfetto", "render_vcd",
    "to_trace_events", "validate_trace_events",
]
