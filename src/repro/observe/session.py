"""Observe sessions: instrument simulators built by unmodified code.

The paper's library attaches "by simply including the library within a
usual simulation"; the observability layer goes one step further — it
instruments designs it never sees the source of.  An
:class:`ObserveSession` registers a default-observer factory on
:class:`~repro.kernel.Simulator`, so every simulator constructed while
the session is active (by an example script, a workload harness, a
batch runner) gets a :class:`~repro.kernel.tracing.TraceRecorder` and,
optionally, a :class:`~repro.observe.profiler.Profiler` attached before
its first process runs::

    with ObserveSession(profile=True) as session:
        runpy.run_path("examples/quickstart.py", run_name="__main__")
    for observed in session.observations:
        export_perfetto(observed.records(), "trace.json")

This is what ``repro trace <script.py>`` and the batch subsystem's
per-run trace artifacts are built on.
"""

from __future__ import annotations

import dataclasses
import pathlib
import runpy
from typing import Callable, List, Optional, Union

from ..kernel.simulator import Simulator
from ..kernel.tracing import MemorySink, TraceRecord, TraceRecorder, TraceSink
from .profiler import Profiler
from .sinks import ObserveError, read_jsonl

#: A sink factory receives the 0-based index of the simulator within
#: the session (scripts may build several) and returns a fresh sink.
SinkFactory = Callable[[int], TraceSink]


@dataclasses.dataclass
class Observation:
    """One instrumented simulator and its attached observers."""

    index: int
    simulator: Simulator
    recorder: TraceRecorder
    profiler: Optional[Profiler] = None

    def records(self) -> List[TraceRecord]:
        """The trace records, read back from disk for streaming sinks."""
        sink = self.recorder.sink
        retained = getattr(sink, "records", None)
        if retained is not None:
            return list(retained)
        path = getattr(sink, "path", None)
        if path is None:
            raise ObserveError(
                f"sink {type(sink).__name__} retains no records and has "
                "no path to read back")
        self.recorder.close()
        return read_jsonl(path)


class ObserveSession:
    """Attach tracing/profiling to every simulator built inside a scope."""

    def __init__(self, sink_factory: Optional[SinkFactory] = None,
                 profile: bool = False, record_states: bool = True,
                 kinds: Optional[set] = None):
        self._sink_factory = sink_factory or (lambda index: MemorySink())
        self._profile = profile
        self._record_states = record_states
        self._kinds = kinds
        self.observations: List[Observation] = []
        self._installed = False

    # -- the Simulator hook -------------------------------------------------

    def _instrument(self, simulator: Simulator) -> None:
        index = len(self.observations)
        recorder = TraceRecorder(kinds=self._kinds,
                                 sink=self._sink_factory(index),
                                 record_states=self._record_states)
        simulator.add_observer(recorder)
        profiler = None
        if self._profile:
            profiler = Profiler()
            simulator.add_observer(profiler)
        self.observations.append(
            Observation(index, simulator, recorder, profiler))

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ObserveSession":
        if self._installed:
            raise ObserveError("observe session is already active")
        Simulator.add_default_observer_factory(self._instrument)
        self._installed = True
        return self

    def __exit__(self, *exc) -> None:
        if self._installed:
            Simulator.remove_default_observer_factory(self._instrument)
            self._installed = False
        for observed in self.observations:
            observed.recorder.close()

    # -- drivers -----------------------------------------------------------

    def run_script(self, path: Union[str, pathlib.Path]) -> None:
        """Execute a Python file (as ``__main__``) under this session."""
        script = pathlib.Path(path)
        if not script.exists():
            raise ObserveError(f"script does not exist: {script}")
        runpy.run_path(str(script), run_name="__main__")

    def single(self) -> Observation:
        """The session's one observation; error if none or several."""
        if len(self.observations) != 1:
            raise ObserveError(
                f"expected exactly one simulator in the session, "
                f"observed {len(self.observations)}")
        return self.observations[0]


def observe_script(path: Union[str, pathlib.Path],
                   sink_factory: Optional[SinkFactory] = None,
                   profile: bool = False,
                   record_states: bool = True) -> ObserveSession:
    """Run ``path`` under a fresh session; returns the finished session."""
    session = ObserveSession(sink_factory=sink_factory, profile=profile,
                             record_states=record_states)
    with session:
        session.run_script(path)
    return session


__all__ = ["Observation", "ObserveSession", "observe_script"]
