"""Kernel events.

Events are the kernel-internal synchronization primitive used by channel
implementations.  Per the single-source specification methodology the
paper builds on, *user processes never touch events directly* — they are
reserved for channel code (the methodology forbids ``notify``/``wait``
on events inside processes; processes interact only through predefined
channels and timed waits).

Notification semantics follow SystemC:

* ``notify_delta()`` — wake waiters in the next delta cycle (the common
  case for channel state changes),
* ``notify(delay)`` — wake waiters after a simulated-time delay,
* ``notify_immediate()`` — wake waiters within the current evaluate
  phase (used sparingly; can expose evaluation-order dependence, which
  the strict-timed mode is designed to flush out).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .time import SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import Process
    from .scheduler import Scheduler


class Event:
    """A notifiable kernel event with a waiting set of processes."""

    __slots__ = ("name", "_scheduler", "_waiters", "notify_count")

    def __init__(self, scheduler: "Scheduler", name: str = ""):
        self.name = name
        self._scheduler = scheduler
        self._waiters: List["Process"] = []
        #: Number of times this event has been notified (any flavour).
        self.notify_count = 0

    # -- waiting -------------------------------------------------------

    def add_waiter(self, process: "Process") -> None:
        """Register a process as waiting on this event (kernel use only)."""
        self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        """Withdraw a process from the waiting set if present."""
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def _drain_waiters(self) -> List["Process"]:
        waiters, self._waiters = self._waiters, []
        return waiters

    # -- notification ----------------------------------------------------

    def notify_delta(self) -> None:
        """Wake all current waiters in the next delta cycle."""
        self.notify_count += 1
        for process in self._drain_waiters():
            self._scheduler._schedule_delta_wake(process, self)

    def notify_immediate(self) -> None:
        """Wake all current waiters within the current evaluate phase."""
        self.notify_count += 1
        for process in self._drain_waiters():
            self._scheduler._schedule_immediate_wake(process, self)

    def notify(self, delay: SimTime) -> None:
        """Wake all current waiters after ``delay`` of simulated time."""
        self.notify_count += 1
        for process in self._drain_waiters():
            self._scheduler._schedule_timed_wake(process, self, delay)

    # -- introspection ---------------------------------------------------

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, waiters={len(self._waiters)})"
