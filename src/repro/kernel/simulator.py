"""The user-facing simulation facade.

``Simulator`` wires together a scheduler, channel factories and tracing,
playing the role of SystemC's ``sc_main`` environment:

>>> sim = Simulator()
>>> fifo = sim.fifo("link", capacity=4)
>>> top = Module(sim, "top")
>>> def producer():
...     for i in range(3):
...         yield from fifo.write(i)
>>> def consumer():
...     for _ in range(3):
...         value = yield from fifo.read()
>>> _ = top.add_process(producer)
>>> _ = top.add_process(consumer)
>>> final = sim.run()
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..errors import ElaborationError
from .channels import Fifo, Rendezvous, SharedVariable, Signal
from .module import Module
from .scheduler import Scheduler, SchedulerObserver
from .time import SimTime
from .tracing import TraceRecorder, TraceSink


class Simulator:
    """Top-level simulation context (the ``sc_main`` analogue).

    Tracing is pluggable: ``trace=True`` attaches a
    :class:`~repro.kernel.tracing.TraceRecorder` whose records go to
    ``trace_sink`` (default: an in-memory list; pass a streaming sink
    from :mod:`repro.observe` for bounded-memory tracing).  Additional
    ``observers`` are attached at construction, before any process runs.
    """

    #: Factories called with every newly constructed simulator —
    #: the hook external observability sessions (``repro.observe``,
    #: ``repro trace`` / ``repro lint --live``) use to instrument
    #: designs built by unmodified scripts.
    _default_observer_factories: List[Callable[["Simulator"], None]] = []

    def __init__(self, trace: bool = False,
                 max_deltas_per_instant: int = 1_000_000,
                 trace_sink: Optional[TraceSink] = None,
                 record_states: bool = False,
                 observers: Sequence[SchedulerObserver] = ()):
        self.scheduler = Scheduler(max_deltas_per_instant=max_deltas_per_instant)
        self.modules: List[Module] = []
        #: Channels created through the factory methods, in creation
        #: order — the structural-address registry used by tooling
        #: (e.g. the fault injector) to resolve channels by name.
        self.channels: List = []
        self.trace: Optional[TraceRecorder] = None
        if trace or trace_sink is not None:
            self.trace = TraceRecorder(sink=trace_sink,
                                       record_states=record_states)
            self.scheduler.add_observer(self.trace)
        for observer in observers:
            self.scheduler.add_observer(observer)
        self._ran = False
        for factory in list(self._default_observer_factories):
            factory(self)

    # -- session hooks -----------------------------------------------------

    @classmethod
    def add_default_observer_factory(
            cls, factory: Callable[["Simulator"], None]) -> None:
        """Register ``factory`` to be called with every new simulator."""
        cls._default_observer_factories.append(factory)

    @classmethod
    def remove_default_observer_factory(
            cls, factory: Callable[["Simulator"], None]) -> None:
        cls._default_observer_factories.remove(factory)

    # -- structure ---------------------------------------------------------

    def _register_module(self, module: Module) -> None:
        self.modules.append(module)

    def module(self, name: str) -> Module:
        """Create and register a top-level module."""
        return Module(self, name)

    def add_observer(self, observer: SchedulerObserver,
                     front: bool = False) -> None:
        self.scheduler.add_observer(observer, front=front)

    def iter_processes(self):
        """All registered processes, across the module hierarchy.

        Introspection hook for post-simulation tooling (coverage
        reports, static/dynamic graph diffs in :mod:`repro.analysis`).
        """
        def walk(module: Module):
            yield from module.processes
            for child in module.children:
                yield from walk(child)

        seen = set()
        for module in self.modules:
            for process in walk(module):
                if id(process) not in seen:
                    seen.add(id(process))
                    yield process

    # -- channel factories -----------------------------------------------

    def _register_channel(self, channel):
        self.channels.append(channel)
        return channel

    def channel(self, name: str):
        """Resolve a factory-created channel by its structural name."""
        for channel in self.channels:
            if channel.name == name:
                return channel
        known = ", ".join(repr(c.name) for c in self.channels) or "none"
        raise ElaborationError(
            f"no channel named {name!r} in this simulator (known: {known})")

    def fifo(self, name: str = "", capacity: Optional[int] = None) -> Fifo:
        return self._register_channel(Fifo(self.scheduler, name, capacity=capacity))

    def rendezvous(self, name: str = "") -> Rendezvous:
        return self._register_channel(Rendezvous(self.scheduler, name))

    def signal(self, name: str = "", initial: Any = 0) -> Signal:
        return self._register_channel(Signal(self.scheduler, name, initial=initial))

    def shared_variable(self, name: str = "", initial: Any = None) -> SharedVariable:
        return self._register_channel(
            SharedVariable(self.scheduler, name, initial=initial))

    # -- execution ------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        return self.scheduler.now

    def elaborate(self) -> None:
        """Run structural checks on the registered module hierarchy."""
        for module in self.modules:
            module.check_elaboration()

    def run(self, until: Optional[SimTime] = None) -> SimTime:
        """Elaborate (on first call) and run the simulation.

        Can be called repeatedly with increasing ``until`` values to
        advance the simulation piecewise.
        """
        if not self._ran:
            self.elaborate()
            self._ran = True
        return self.scheduler.run(until=until)

    def assert_quiescent(self) -> None:
        """Raise if processes remain blocked on events after a full run.

        A convenience deadlock check for tests: a finished simulation
        with event-blocked processes usually signals a protocol bug in
        the design under test.
        """
        blocked = self.scheduler.blocked_processes()
        if blocked:
            names = ", ".join(p.full_name for p in blocked)
            raise ElaborationError(f"simulation ended with blocked processes: {names}")
