"""Simulated time, modelled after SystemC's ``sc_time``.

Time is stored as an exact integer number of femtoseconds, which avoids
the floating-point drift that plagues naive discrete-event kernels and
matches SystemC's 64-bit integral time representation.  All arithmetic
stays in the integer domain; conversions to floating-point units are
provided only for reporting.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Union

#: Femtoseconds per unit, keyed by SystemC-style unit name.
_UNIT_FS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}


@total_ordering
class SimTime:
    """An immutable point in (or duration of) simulated time.

    Internally an exact count of femtoseconds.  Construct via the unit
    classmethods (``SimTime.ns(10)``) or :func:`time_from` for generic
    (value, unit) pairs.
    """

    __slots__ = ("_fs",)

    def __init__(self, femtoseconds: int = 0):
        if not isinstance(femtoseconds, int):
            raise TypeError(
                f"SimTime takes an integer femtosecond count, got {type(femtoseconds).__name__}"
            )
        if femtoseconds < 0:
            raise ValueError(f"SimTime cannot be negative, got {femtoseconds} fs")
        object.__setattr__(self, "_fs", femtoseconds)

    def __setattr__(self, name, value):
        raise AttributeError("SimTime is immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def fs(cls, value: Union[int, float]) -> "SimTime":
        """Femtoseconds."""
        return cls(round(value))

    @classmethod
    def ps(cls, value: Union[int, float]) -> "SimTime":
        """Picoseconds."""
        return cls(round(value * _UNIT_FS["ps"]))

    @classmethod
    def ns(cls, value: Union[int, float]) -> "SimTime":
        """Nanoseconds."""
        return cls(round(value * _UNIT_FS["ns"]))

    @classmethod
    def us(cls, value: Union[int, float]) -> "SimTime":
        """Microseconds."""
        return cls(round(value * _UNIT_FS["us"]))

    @classmethod
    def ms(cls, value: Union[int, float]) -> "SimTime":
        """Milliseconds."""
        return cls(round(value * _UNIT_FS["ms"]))

    @classmethod
    def s(cls, value: Union[int, float]) -> "SimTime":
        """Seconds."""
        return cls(round(value * _UNIT_FS["s"]))

    # -- accessors -----------------------------------------------------

    @property
    def femtoseconds(self) -> int:
        """The exact femtosecond count."""
        return self._fs

    def to_fs(self) -> int:
        return self._fs

    def to_ps(self) -> float:
        return self._fs / _UNIT_FS["ps"]

    def to_ns(self) -> float:
        return self._fs / _UNIT_FS["ns"]

    def to_us(self) -> float:
        return self._fs / _UNIT_FS["us"]

    def to_ms(self) -> float:
        return self._fs / _UNIT_FS["ms"]

    def to_s(self) -> float:
        return self._fs / _UNIT_FS["s"]

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime(self._fs + other._fs)

    def __sub__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime(self._fs - other._fs)

    def __mul__(self, factor: Union[int, float]) -> "SimTime":
        if isinstance(factor, SimTime):
            raise TypeError("cannot multiply SimTime by SimTime")
        return SimTime(round(self._fs * factor))

    __rmul__ = __mul__

    def __floordiv__(self, other: Union["SimTime", int]) -> Union[int, "SimTime"]:
        if isinstance(other, SimTime):
            if other._fs == 0:
                raise ZeroDivisionError("division by zero SimTime")
            return self._fs // other._fs
        return SimTime(self._fs // other)

    def __truediv__(self, other: Union["SimTime", int, float]) -> Union[float, "SimTime"]:
        if isinstance(other, SimTime):
            if other._fs == 0:
                raise ZeroDivisionError("division by zero SimTime")
            return self._fs / other._fs
        return SimTime(round(self._fs / other))

    def __mod__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime(self._fs % other._fs)

    # -- comparison / hashing -------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, SimTime) and self._fs == other._fs

    def __lt__(self, other: "SimTime") -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return self._fs < other._fs

    def __hash__(self) -> int:
        return hash(("SimTime", self._fs))

    def __bool__(self) -> bool:
        return self._fs != 0

    # -- presentation ----------------------------------------------------

    def __repr__(self) -> str:
        return f"SimTime.fs({self._fs})"

    def __str__(self) -> str:
        for unit in ("s", "ms", "us", "ns", "ps"):
            scale = _UNIT_FS[unit]
            if self._fs >= scale and self._fs % scale == 0:
                return f"{self._fs // scale} {unit}"
        if self._fs >= _UNIT_FS["ns"]:
            return f"{self.to_ns():g} ns"
        return f"{self._fs} fs"


#: The zero time constant, shared to avoid repeated allocation.
ZERO = SimTime(0)


def time_from(value: Union[int, float], unit: str) -> SimTime:
    """Build a :class:`SimTime` from a value and a SystemC unit name.

    >>> time_from(2.5, "ns") == SimTime.ps(2500)
    True
    """
    try:
        scale = _UNIT_FS[unit]
    except KeyError:
        raise ValueError(f"unknown time unit {unit!r}; expected one of {sorted(_UNIT_FS)}") from None
    return SimTime(round(value * scale))


class Clock:
    """A clock description used to convert cycle counts to time.

    The estimation library works in *cycles* (the unit of the platform
    characterization tables); resources carry a ``Clock`` to place those
    cycles on the physical time axis.
    """

    __slots__ = ("period", "frequency_hz")

    def __init__(self, period: SimTime):
        if period.femtoseconds <= 0:
            raise ValueError("clock period must be positive")
        self.period = period
        self.frequency_hz = 10**15 / period.femtoseconds

    @classmethod
    def from_frequency_mhz(cls, mhz: float) -> "Clock":
        """Build a clock from a frequency in MHz."""
        if mhz <= 0:
            raise ValueError("clock frequency must be positive")
        return cls(SimTime.fs(round(10**15 / (mhz * 10**6))))

    def cycles_to_time(self, cycles: Union[int, float]) -> SimTime:
        """Convert a (possibly fractional) cycle count to a SimTime."""
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        return SimTime(round(cycles * self.period.femtoseconds))

    def time_to_cycles(self, duration: SimTime) -> float:
        """Convert a duration to a fractional cycle count."""
        return duration.femtoseconds / self.period.femtoseconds

    def __repr__(self) -> str:
        return f"Clock(period={self.period})"
