"""A SystemC-like discrete-event kernel (the paper's simulation substrate).

Delta-cycle semantics, generator-coroutine processes, the predefined
channel set of the single-source specification methodology, and the
timing-agent hook through which ``repro.core`` turns untimed simulation
into strict-timed simulation.
"""

from .channels import Channel, Fifo, Rendezvous, SharedVariable, Signal
from .commands import (
    ChannelAccess,
    Command,
    Mark,
    NodeDone,
    ProcessExit,
    RequestUpdate,
    WaitEvent,
    WaitFor,
    wait,
)
from .events import Event
from .module import Module, Port
from .process import Process, ProcessState, TimingAgent
from .scheduler import Scheduler, SchedulerObserver
from .simulator import Simulator
from .time import Clock, SimTime, ZERO, time_from
from .tracing import MemorySink, TraceRecord, TraceRecorder, TraceSink, VcdWriter

__all__ = [
    "Channel", "Fifo", "Rendezvous", "SharedVariable", "Signal",
    "ChannelAccess", "Command", "Mark", "NodeDone", "ProcessExit",
    "RequestUpdate", "WaitEvent", "WaitFor", "wait",
    "Event", "Module", "Port",
    "Process", "ProcessState", "TimingAgent",
    "Scheduler", "SchedulerObserver", "Simulator",
    "Clock", "SimTime", "ZERO", "time_from",
    "MemorySink", "TraceRecord", "TraceRecorder", "TraceSink",
    "VcdWriter",
]
