"""Process objects and the timing-agent protocol.

A process wraps a Python generator.  The generator body is the process
behaviour; it yields :mod:`~repro.kernel.commands` objects to interact
with the kernel.  Code executed *between* node commands is a segment in
the paper's sense — a closed piece of computation with no kernel
interaction.

The :class:`TimingAgent` protocol is the hook through which the
performance library (``repro.core``) turns the untimed delta-cycle
simulation into a strict-timed one without modifying either the user
code or the scheduler algorithm: the scheduler consults the process's
agent at every node and inserts the delays the agent requests.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Optional

from .commands import Command
from .time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class ProcessState(enum.Enum):
    """Lifecycle of a process."""

    READY = "ready"          # scheduled to run in the current/next evaluate phase
    RUNNING = "running"      # currently executing user code
    WAITING = "waiting"      # suspended on an event or a timed wait
    NEGOTIATING = "negotiating"  # suspended inside a timing-agent delay loop
    DONE = "done"            # generator exhausted


class Process:
    """A kernel process: a named generator plus scheduling state."""

    __slots__ = (
        "name",
        "module",
        "generator",
        "body",
        "state",
        "agent",
        "priority",
        "pid",
        "_pending_value",
        "_pending_command",
        "_waiting_event",
        "node_count",
        "exit_time",
        "stalled",
    )

    def __init__(
        self,
        name: str,
        generator: Generator,
        module: Optional["Module"] = None,
        priority: int = 0,
        body: Optional[Callable] = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process {name!r} body must be a generator; "
                f"did you forget a yield in the process function?"
            )
        self.name = name
        self.module = module
        self.generator = generator
        #: The body callable the generator came from, when known — the
        #: introspection hook used by static analysis (`repro.analysis`)
        #: to re-scan a live process's source.
        self.body = body
        self.state = ProcessState.READY
        #: Timing agent consulted at every node; installed by the
        #: performance library.  None means untimed (pure delta) mode.
        self.agent: Optional["TimingAgent"] = None
        #: Static priority used by priority-scheduled sequential resources
        #: (lower value = more urgent, matching common RTOS convention).
        self.priority = priority
        self.pid = -1  # assigned by the scheduler at registration
        self._pending_value = None       # value to send on next resume
        self._pending_command = None     # node command under negotiation
        self._waiting_event = None       # event currently waited on
        #: Number of node commands this process has executed.
        self.node_count = 0
        #: Stuck-at fault flag (set by the fault injector, never by the
        #: kernel itself): a stalled process is skipped at every wake-up
        #: point, so it never runs again but keeps its WAITING/READY
        #: state — unlike DONE, which models a clean exit.
        self.stalled = False
        #: Simulated time at which the process terminated (None if running).
        self.exit_time: Optional[SimTime] = None

    @property
    def full_name(self) -> str:
        """Hierarchical name ``module.process`` used in reports."""
        if self.module is not None and getattr(self.module, "name", ""):
            return f"{self.module.name}.{self.name}"
        return self.name

    @property
    def done(self) -> bool:
        return self.state is ProcessState.DONE

    def __repr__(self) -> str:
        return f"Process({self.full_name!r}, state={self.state.value})"


class TimingAgent:
    """Protocol consulted by the scheduler at every segment node.

    The default implementation is a null agent: it never delays, which
    leaves the simulation untimed (pure delta-cycle semantics).  The
    performance library subclasses this to implement the paper's global
    analysis: segment-cost sleeps, sequential-resource serialization and
    RTOS overhead.
    """

    def node_reached(self, process: Process, command: Command, now: SimTime) -> None:
        """The process hit a node: its current segment just ended.

        Called once per node, before any delay negotiation.  This is
        where the agent reads the segment's accumulated cost and plans
        the delays it will request from :meth:`next_delay`.
        """

    def next_delay(self, process: Process, now: SimTime) -> Optional[SimTime]:
        """Return the next delay to insert before the node may proceed.

        The scheduler calls this repeatedly (re-calling after each
        returned delay has elapsed) until it returns ``None``, which
        releases the node.  This repeated consultation implements the
        paper's resource-arbitration loop: "this process has to be
        repeated until the resource is empty because another process can
        take up the resource while it is waiting".
        """
        return None

    def node_finished(self, process: Process, command: Command, now: SimTime) -> None:
        """The node's communication completed; a new segment begins."""

    def process_started(self, process: Process, now: SimTime) -> None:
        """The process is about to execute its first segment."""

    def process_exited(self, process: Process, now: SimTime) -> None:
        """The process generator returned (after its exit node settled)."""


#: Shared do-nothing agent used when no performance library is attached.
NULL_AGENT = TimingAgent()
