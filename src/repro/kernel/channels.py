"""Predefined channels of the single-source specification methodology.

The specification style the paper builds on ([22], [23]) forbids raw
events and sensitivity lists inside processes: *processes can only
interact among themselves and with the environment through predefined
channels* plus timed waits.  This module provides that predefined set,
one channel per supported model of computation:

* :class:`Fifo` — Kahn-process-network style blocking FIFO (bounded or
  unbounded),
* :class:`Rendezvous` — CSP-style synchronous message passing,
* :class:`Signal` — synchronous-reactive signal with SystemC
  evaluate/update semantics,
* :class:`SharedVariable` — immediate shared storage (still a channel,
  so accesses remain visible segment nodes).

Every operation brackets its communication logic with the
:class:`~repro.kernel.commands.ChannelAccess` /
:class:`~repro.kernel.commands.NodeDone` pair — the "pair of functions
provided by the library" that the paper requires every new channel to
insert (§4).  New user channels should subclass :class:`Channel` and use
:meth:`Channel._node` to get the pair right.

Channel operations are generators: invoke them with ``yield from``
inside a process body, e.g. ``value = yield from fifo.read()``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, List, Optional

from .commands import ChannelAccess, NodeDone, RequestUpdate, WaitEvent
from .scheduler import Scheduler


class Channel:
    """Base class for predefined channels.

    Subclasses implement operations as generator methods whose
    communication logic sits between ``yield ChannelAccess(...)`` and
    ``yield NodeDone(...)`` (use the :meth:`_node` helper).
    """

    def __init__(self, scheduler: Scheduler, name: str = ""):
        self.scheduler = scheduler
        self.name = name or f"{type(self).__name__.lower()}_{id(self):x}"
        #: Total number of completed accesses, per operation name.
        self.access_counts: dict = {}
        #: Payload filters ``fn(channel, operation, value) -> value``
        #: applied in order to every value crossing the channel —
        #: writes filter before storing, reads after retrieving.  The
        #: fault injector installs payload-corruption faults here; the
        #: empty default costs one truth test per access.
        self.payload_filters: list = []

    def _count(self, operation: str) -> None:
        self.access_counts[operation] = self.access_counts.get(operation, 0) + 1

    def _filter(self, operation: str, value: Any) -> Any:
        for fn in self.payload_filters:
            value = fn(self, operation, value)
        return value

    def _node(self, operation: str):
        """Return the (access, done) command pair for ``operation``."""
        return ChannelAccess(self, operation), NodeDone(self, operation)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Fifo(Channel):
    """Blocking FIFO channel (the KPN channel of the methodology).

    ``read`` blocks while the FIFO is empty.  With a finite
    ``capacity``, ``write`` blocks while the FIFO is full (a bounded KPN
    / SystemC ``sc_fifo``); with ``capacity=None`` writes never block
    (an ideal Kahn channel).
    """

    def __init__(self, scheduler: Scheduler, name: str = "",
                 capacity: Optional[int] = None):
        super().__init__(scheduler, name)
        if capacity is not None and capacity <= 0:
            raise ValueError(f"fifo capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._data_written = scheduler.make_event(f"{self.name}.data_written")
        self._space_freed = scheduler.make_event(f"{self.name}.space_freed")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def write(self, value: Any) -> Generator:
        """Blocking write: suspends while the FIFO is full."""
        access, done = self._node("write")
        yield access
        while self.is_full:
            yield WaitEvent(self._space_freed)
        if self.payload_filters:
            value = self._filter("write", value)
        self._items.append(value)
        self._data_written.notify_delta()
        self._count("write")
        yield done

    def read(self) -> Generator:
        """Blocking read: suspends while the FIFO is empty."""
        access, done = self._node("read")
        yield access
        while self.is_empty:
            yield WaitEvent(self._data_written)
        value = self._items.popleft()
        if self.payload_filters:
            value = self._filter("read", value)
        self._space_freed.notify_delta()
        self._count("read")
        yield done
        return value

    def try_read(self) -> Generator:
        """Non-blocking read: returns ``(True, value)`` or ``(False, None)``.

        Still a channel access (and thus a segment node) even when the
        FIFO is empty.
        """
        access, done = self._node("try_read")
        yield access
        if self.is_empty:
            result = (False, None)
        else:
            value = self._items.popleft()
            if self.payload_filters:
                value = self._filter("try_read", value)
            self._space_freed.notify_delta()
            result = (True, value)
        self._count("try_read")
        yield done
        return result


class Rendezvous(Channel):
    """CSP-style rendezvous: reader and writer synchronize pairwise.

    The earlier party blocks until its counterpart arrives; the value
    moves writer → reader and both proceed.  Multiple writers/readers
    are served in arrival order.
    """

    def __init__(self, scheduler: Scheduler, name: str = ""):
        super().__init__(scheduler, name)
        self._offers: deque = deque()        # values from writers awaiting a reader
        self._writer_arrived = scheduler.make_event(f"{self.name}.writer_arrived")
        self._value_taken = scheduler.make_event(f"{self.name}.value_taken")

    def write(self, value: Any) -> Generator:
        """Offer a value; block until a reader takes it."""
        access, done = self._node("write")
        yield access
        if self.payload_filters:
            value = self._filter("write", value)
        token = [value, False]  # [payload, taken?]
        self._offers.append(token)
        self._writer_arrived.notify_delta()
        while not token[1]:
            yield WaitEvent(self._value_taken)
        self._count("write")
        yield done

    def read(self) -> Generator:
        """Block until a writer offers a value, then take it."""
        access, done = self._node("read")
        yield access
        while not self._offers:
            yield WaitEvent(self._writer_arrived)
        token = self._offers.popleft()
        token[1] = True
        self._value_taken.notify_delta()
        value = token[0]
        if self.payload_filters:
            value = self._filter("read", value)
        self._count("read")
        yield done
        return value


class Signal(Channel):
    """Synchronous-reactive signal with evaluate/update semantics.

    Writes land in the *next* delta cycle (SystemC ``sc_signal``);
    reads return the current, stable value.  :meth:`await_change`
    blocks until the signal's committed value changes — the channel-level
    replacement for a sensitivity list.
    """

    def __init__(self, scheduler: Scheduler, name: str = "", initial: Any = 0):
        super().__init__(scheduler, name)
        self._current = initial
        self._next = initial
        self._update_requested = False
        self.value_changed = scheduler.make_event(f"{self.name}.value_changed")
        #: committed (time_fs, delta, value) history, for tracing/tests
        self.history: List = [(scheduler.now.femtoseconds, scheduler.delta, initial)]

    @property
    def value(self) -> Any:
        """Current committed value (direct peeking for testbenches)."""
        return self._current

    def write(self, value: Any) -> Generator:
        """Schedule ``value`` to be committed in the update phase."""
        access, done = self._node("write")
        yield access
        if self.payload_filters:
            value = self._filter("write", value)
        self._next = value
        if not self._update_requested:
            self._update_requested = True
            yield RequestUpdate(self)
        self._count("write")
        yield done

    def read(self) -> Generator:
        """Read the current committed value."""
        access, done = self._node("read")
        yield access
        value = self._current
        if self.payload_filters:
            value = self._filter("read", value)
        self._count("read")
        yield done
        return value

    def await_change(self) -> Generator:
        """Block until the committed value changes, then return it."""
        access, done = self._node("await_change")
        yield access
        yield WaitEvent(self.value_changed)
        value = self._current
        if self.payload_filters:
            value = self._filter("await_change", value)
        self._count("await_change")
        yield done
        return value

    def update(self) -> None:
        """Update-phase commit; called by the scheduler only."""
        self._update_requested = False
        if self._next != self._current:
            self._current = self._next
            self.history.append(
                (self.scheduler.now.femtoseconds, self.scheduler.delta, self._current)
            )
            self.value_changed.notify_delta()


class SharedVariable(Channel):
    """Immediately-updated shared storage, still accessed through nodes.

    The methodology disallows bare shared Python state between processes
    (invisible to the analysis); this channel provides the same
    convenience while keeping every access a proper segment node.
    """

    def __init__(self, scheduler: Scheduler, name: str = "", initial: Any = None):
        super().__init__(scheduler, name)
        self._value = initial

    def write(self, value: Any) -> Generator:
        access, done = self._node("write")
        yield access
        if self.payload_filters:
            value = self._filter("write", value)
        self._value = value
        self._count("write")
        yield done

    def read(self) -> Generator:
        access, done = self._node("read")
        yield access
        value = self._value
        if self.payload_filters:
            value = self._filter("read", value)
        self._count("read")
        yield done
        return value
