"""The discrete-event scheduler with SystemC delta-cycle semantics.

The scheduler executes generator processes through the classic SystemC
two-phase protocol:

1. **Evaluate phase** — every runnable process runs until it suspends
   (on an event wait, a timed wait, or a timing-agent delay).
2. **Update phase** — channels that yielded :class:`RequestUpdate`
   (e.g. signals) commit their new values.
3. **Delta notification** — processes woken by delta notifications form
   the next evaluate set; if any, a new delta cycle begins at the same
   simulated instant.
4. **Time advance** — otherwise simulated time jumps to the earliest
   pending timed entry.

Strict-timed simulation (the paper's §4) is layered on top without
changing this algorithm: each process may carry a
:class:`~repro.kernel.process.TimingAgent` which the scheduler consults
at every *node* (channel access, timed wait, process exit).  The agent
answers with a sequence of delays — segment sleep, resource arbitration
waits, RTOS overhead — that the scheduler inserts before the node's
communication proceeds.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

from ..errors import SimulationError
from .commands import (
    ChannelAccess,
    Command,
    Mark,
    NodeDone,
    ProcessExit,
    RequestUpdate,
    WaitEvent,
    WaitFor,
)
from .events import Event
from .process import NULL_AGENT, Process, ProcessState
from .time import SimTime, ZERO

# Dispositions returned by the command dispatcher.
_CONTINUE = 0   # keep running the same process
_SUSPEND = 1    # the process is no longer runnable


class SchedulerObserver:
    """Passive hook interface; all methods are optional no-ops.

    Observers power segment tracking, event tracing and the performance
    library's context switching without coupling the kernel to them.
    """

    def on_process_start(self, process: Process, now: SimTime) -> None: ...

    def on_process_resume(self, process: Process, now: SimTime) -> None: ...

    def on_process_suspend(self, process: Process, now: SimTime) -> None: ...

    def on_node_reached(self, process: Process, command: Command,
                        now: SimTime, delta: int) -> None: ...

    def on_node_finished(self, process: Process, command: Command,
                         now: SimTime, delta: int) -> None: ...

    def on_mark(self, process: Process, label: str,
                now: SimTime, delta: int) -> None: ...

    def on_process_exit(self, process: Process, now: SimTime) -> None: ...

    def on_time_advance(self, previous: SimTime, current: SimTime) -> None: ...


# Timed-entry kinds.
_RESUME = "resume"          # wake a process after a WaitFor
_NEGOTIATE = "negotiate"    # re-consult a timing agent after a delay
_EVENT_WAKE = "event-wake"  # timed event notification for one process
_ACTION = "action"          # run an external callback at a simulated time


class Scheduler:
    """Runs processes under delta-cycle semantics with timing-agent hooks."""

    def __init__(self, max_deltas_per_instant: int = 1_000_000):
        self._now: SimTime = ZERO
        self._delta = 0                 # delta index within the current instant
        self.total_deltas = 0           # delta cycles executed overall
        self._runnable: deque = deque()
        self._next_delta: List[Process] = []
        self._update_requests: List = []
        self._update_pending: set = set()
        self._timed: list = []          # heap of (fs, seq, kind, payload)
        self._seq = 0
        self.processes: List[Process] = []
        self._observers: List[SchedulerObserver] = []
        self._started = False
        self._max_deltas = max_deltas_per_instant
        self.current_process: Optional[Process] = None
        #: Optional hook filtering timed entries as they are scheduled:
        #: ``filter(when, kind, payload) -> SimTime | None`` may return
        #: a different time (delayed event) or ``None`` (dropped event).
        #: Installed by the fault injector; ``None`` costs nothing.
        self.timed_filter = None

    # -- public surface --------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return self._now

    @property
    def delta(self) -> int:
        """Delta-cycle index within the current simulated instant."""
        return self._delta

    def add_observer(self, observer: SchedulerObserver,
                     front: bool = False) -> None:
        """Attach an observer; ``front=True`` puts it ahead of the
        existing ones (observers fire in list order, and e.g. the
        fast-forward engine must reinstall a suppressed cost context
        before trackers and profilers read it)."""
        if front:
            self._observers.insert(0, observer)
        else:
            self._observers.append(observer)

    def remove_observer(self, observer: SchedulerObserver) -> None:
        self._observers.remove(observer)

    def make_event(self, name: str = "") -> Event:
        """Create a kernel event bound to this scheduler."""
        return Event(self, name)

    def register(self, process: Process) -> Process:
        """Register a process; it becomes runnable at simulation start."""
        if self._started:
            raise SimulationError(
                f"cannot register process {process.name!r} after simulation start"
            )
        process.pid = len(self.processes)
        self.processes.append(process)
        return process

    def blocked_processes(self) -> List[Process]:
        """Processes currently suspended on an event (deadlock debugging)."""
        return [p for p in self.processes if p.state is ProcessState.WAITING
                and p._waiting_event is not None]

    def schedule_action(self, when: SimTime, action) -> None:
        """Run ``action()`` when simulated time reaches ``when``.

        The callback fires between process executions (never while a
        process is mid-segment) and may mutate kernel state — this is
        the injection point for time-triggered faults such as killing
        or stalling a process at a scheduled instant.
        """
        if when.femtoseconds < self._now.femtoseconds:
            when = self._now
        self._push_timed(when, _ACTION, action)

    def kill_process(self, process: Process) -> None:
        """Terminate ``process`` immediately (fault injection).

        The generator is closed, any event wait is cancelled and the
        normal exit notifications fire, so observers and timing agents
        see a coherent (if premature) process exit.
        """
        if process.done:
            return
        if process._waiting_event is not None:
            process._waiting_event.remove_waiter(process)
            process._waiting_event = None
        try:
            process.generator.close()
        except RuntimeError:  # pragma: no cover - closing a running generator
            pass
        process._pending_command = None
        self._finalize_exit(process)

    def stall_process(self, process: Process) -> None:
        """Stuck-at fault: ``process`` is never scheduled again.

        Unlike :meth:`kill_process` no exit fires — the process keeps
        its current state, holds any resources and simply stops making
        progress, exactly like a hung task.
        """
        if not process.done:
            process.stalled = True

    def run(self, until: Optional[SimTime] = None) -> SimTime:
        """Run the simulation.

        Stops when no activity remains (event starvation) or when the
        next timed entry lies beyond ``until``.  Returns the final
        simulated time.
        """
        if not self._started:
            self._started = True
            for process in self.processes:
                self._runnable.append(process)
                if self._observers:
                    for obs in self._observers:
                        obs.on_process_start(process, self._now)
                self._agent_of(process).process_started(process, self._now)

        while True:
            self._run_instant()
            if not self._timed:
                break
            next_fs = self._timed[0][0]
            if until is not None and next_fs > until.femtoseconds:
                self._set_now(until)
                break
            self._advance_to(SimTime(next_fs))
        return self._now

    # -- instant execution ------------------------------------------------

    def _run_instant(self) -> None:
        """Exhaust all delta cycles at the current simulated instant."""
        deltas_here = 0
        while self._runnable or self._update_requests or self._next_delta:
            while self._runnable:
                item = self._runnable.popleft()
                if callable(item):
                    item()
                    continue
                if item.done or item.stalled:
                    continue
                self._run_process(item)
            self._run_update_phase()
            if self._next_delta:
                self._runnable.extend(self._next_delta)
                self._next_delta = []
                self._delta += 1
                self.total_deltas += 1
                deltas_here += 1
                if deltas_here > self._max_deltas:
                    raise SimulationError(
                        f"more than {self._max_deltas} delta cycles at {self._now}; "
                        f"suspected zero-time loop"
                    )

    def _run_update_phase(self) -> None:
        requests, self._update_requests = self._update_requests, []
        self._update_pending.clear()
        for channel in requests:
            channel.update()

    def _advance_to(self, new_time: SimTime) -> None:
        self._set_now(new_time)
        fs = new_time.femtoseconds
        while self._timed and self._timed[0][0] == fs:
            _, _, kind, payload = heapq.heappop(self._timed)
            self._fire_timed(kind, payload)

    def _set_now(self, new_time: SimTime) -> None:
        if new_time != self._now:
            if self._observers:
                for obs in self._observers:
                    obs.on_time_advance(self._now, new_time)
            self._now = new_time
            self._delta = 0

    def _fire_timed(self, kind: str, payload) -> None:
        if kind == _RESUME:
            process, command = payload
            if process.done or process.stalled:
                return
            self._finish_node(process, command)
            process.state = ProcessState.READY
            self._run_process(process)
        elif kind == _NEGOTIATE:
            process = payload
            if process.done or process.stalled:
                return
            self._continue_negotiation(process)
        elif kind == _EVENT_WAKE:
            process, event = payload
            self._wake_from_event(process, event)
        elif kind == _ACTION:
            payload()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown timed entry kind {kind!r}")

    # -- process execution --------------------------------------------------

    def _agent_of(self, process: Process):
        return process.agent if process.agent is not None else NULL_AGENT

    def _run_process(self, process: Process) -> None:
        """Run one process until it suspends or terminates."""
        process.state = ProcessState.RUNNING
        self.current_process = process
        # Unobserved simulations (the untimed baseline of the paper's
        # overload metric) must pay nothing for the hook points, so
        # every fan-out below is guarded on a non-empty observer list.
        if self._observers:
            for obs in self._observers:
                obs.on_process_resume(process, self._now)
        try:
            while True:
                try:
                    command = process.generator.send(None)
                except StopIteration:
                    self._handle_exit(process)
                    return
                if not isinstance(command, Command):
                    raise SimulationError(
                        f"process {process.full_name!r} yielded {command!r}, "
                        f"which is not a kernel command"
                    )
                if self._dispatch(process, command) is _SUSPEND:
                    return
        finally:
            self.current_process = None
            if process.state is not ProcessState.RUNNING:
                if self._observers:
                    for obs in self._observers:
                        obs.on_process_suspend(process, self._now)
            else:  # pragma: no cover - defensive; dispatch always resets state
                process.state = ProcessState.READY

    def _dispatch(self, process: Process, command: Command) -> int:
        if isinstance(command, ChannelAccess):
            return self._begin_node(process, command)
        if isinstance(command, NodeDone):
            self._finish_node(process, command)
            return _CONTINUE
        if isinstance(command, WaitFor):
            return self._begin_node(process, command)
        if isinstance(command, WaitEvent):
            process.state = ProcessState.WAITING
            process._waiting_event = command.event
            command.event.add_waiter(process)
            return _SUSPEND
        if isinstance(command, RequestUpdate):
            channel = command.channel
            if id(channel) not in self._update_pending:
                self._update_pending.add(id(channel))
                self._update_requests.append(channel)
            return _CONTINUE
        if isinstance(command, Mark):
            if self._observers:
                for obs in self._observers:
                    obs.on_mark(process, command.label, self._now, self._delta)
            return _CONTINUE
        raise SimulationError(
            f"process {process.full_name!r} yielded unsupported command {command!r}"
        )

    # -- node handling (segment boundaries + timing negotiation) -----------

    def _begin_node(self, process: Process, command: Command) -> int:
        process.node_count += 1
        if self._observers:
            for obs in self._observers:
                obs.on_node_reached(process, command, self._now, self._delta)
        self._agent_of(process).node_reached(process, command, self._now)
        process._pending_command = command
        return self._negotiate(process)

    def _negotiate(self, process: Process) -> int:
        """Ask the timing agent for delays until it releases the node."""
        delay = self._agent_of(process).next_delay(process, self._now)
        if delay is not None:
            if delay.femtoseconds <= 0:
                raise SimulationError(
                    f"timing agent for {process.full_name!r} returned a "
                    f"non-positive delay {delay}; return None to proceed"
                )
            process.state = ProcessState.NEGOTIATING
            self._push_timed(self._now + delay, _NEGOTIATE, process)
            return _SUSPEND
        return self._release_node(process)

    def _continue_negotiation(self, process: Process) -> None:
        disposition = self._negotiate(process)
        if disposition is _CONTINUE:
            process.state = ProcessState.READY
            self._run_process(process)

    def _release_node(self, process: Process) -> int:
        """The timing agent released the node: perform its semantics."""
        command = process._pending_command
        process._pending_command = None
        if isinstance(command, ChannelAccess):
            # Resume the channel generator, which now performs the actual
            # communication (and will emit NodeDone when finished).
            return _CONTINUE
        if isinstance(command, WaitFor):
            if command.duration.femtoseconds == 0:
                # wait(SC_ZERO_TIME): yield one delta cycle.
                process.state = ProcessState.WAITING

                def _resume_zero_wait(process=process, command=command):
                    if process.done or process.stalled:
                        return
                    self._finish_node(process, command)
                    process.state = ProcessState.READY
                    self._run_process(process)

                self._next_delta.append(_resume_zero_wait)
                return _SUSPEND
            process.state = ProcessState.WAITING
            self._push_timed(self._now + command.duration, _RESUME, (process, command))
            return _SUSPEND
        if isinstance(command, ProcessExit):
            self._finalize_exit(process)
            return _SUSPEND
        raise SimulationError(  # pragma: no cover - defensive
            f"cannot release unexpected node command {command!r}"
        )

    def _finish_node(self, process: Process, command: Command) -> None:
        self._agent_of(process).node_finished(process, command, self._now)
        if self._observers:
            for obs in self._observers:
                obs.on_node_finished(process, command, self._now, self._delta)

    def _handle_exit(self, process: Process) -> None:
        command = ProcessExit()
        process.node_count += 1
        if self._observers:
            for obs in self._observers:
                obs.on_node_reached(process, command, self._now, self._delta)
        self._agent_of(process).node_reached(process, command, self._now)
        process._pending_command = command
        self._negotiate(process)

    def _finalize_exit(self, process: Process) -> None:
        process.state = ProcessState.DONE
        process.exit_time = self._now
        self._agent_of(process).process_exited(process, self._now)
        if self._observers:
            for obs in self._observers:
                obs.on_process_exit(process, self._now)

    # -- wake-up plumbing -----------------------------------------------------

    def _schedule_delta_wake(self, process: Process, event: Event) -> None:
        process._waiting_event = None
        self._next_delta.append(process)
        process.state = ProcessState.READY

    def _schedule_immediate_wake(self, process: Process, event: Event) -> None:
        process._waiting_event = None
        self._runnable.append(process)
        process.state = ProcessState.READY

    def _schedule_timed_wake(self, process: Process, event: Event, delay: SimTime) -> None:
        process._waiting_event = None
        process.state = ProcessState.WAITING
        self._push_timed(self._now + delay, _EVENT_WAKE, (process, event))

    def _wake_from_event(self, process: Process, event: Event) -> None:
        if process.done or process.stalled:
            return
        process.state = ProcessState.READY
        self._run_process(process)

    def _push_timed(self, when: SimTime, kind: str, payload) -> None:
        if self.timed_filter is not None:
            when = self.timed_filter(when, kind, payload)
            if when is None:
                return
        self._seq += 1
        heapq.heappush(self._timed, (when.femtoseconds, self._seq, kind, payload))
