"""Commands that processes yield to the simulation kernel.

A process in this kernel is a Python generator.  Communication with the
scheduler happens by *yielding command objects*; the scheduler interprets
the command, performs the requested action, and resumes the generator
(possibly at a later simulated time) with ``send()``.

Two families exist:

* **Node commands** (:class:`ChannelAccess`, :class:`WaitFor`,
  :class:`NodeDone`, :class:`ProcessExit`) delimit *segments* in the
  sense of the paper: they are the only points where a process interacts
  with the rest of the system.  The performance library hooks exactly
  these.  :class:`ChannelAccess` / :class:`NodeDone` are the "pair of
  functions provided by the library" that every channel implementation
  must emit around its communication logic (paper, §4).

* **Internal commands** (:class:`WaitEvent`, :class:`RequestUpdate`)
  implement channel blocking and the two-phase update protocol.  They
  are invisible to segment tracking and to the timing agents.
"""

from __future__ import annotations

from .time import SimTime


class Command:
    """Base class of everything a process may yield to the kernel."""

    __slots__ = ()

    #: True for commands that delimit segments (see module docstring).
    is_node = False


class ChannelAccess(Command):
    """Marks the *start* of a channel access: the current segment ends here.

    Yielded by channel implementations as the first action of every
    channel operation, before any blocking or data movement.
    """

    __slots__ = ("channel", "operation")
    is_node = True

    def __init__(self, channel, operation: str):
        self.channel = channel
        self.operation = operation

    def __repr__(self) -> str:
        return f"ChannelAccess({getattr(self.channel, 'name', self.channel)!r}, {self.operation!r})"


class NodeDone(Command):
    """Marks the *end* of a channel access: a new segment begins after it.

    Yielded by channel implementations after their communication logic
    completed (data transferred, space freed, ...).
    """

    __slots__ = ("channel", "operation")
    is_node = True

    def __init__(self, channel, operation: str):
        self.channel = channel
        self.operation = operation

    def __repr__(self) -> str:
        return f"NodeDone({getattr(self.channel, 'name', self.channel)!r}, {self.operation!r})"


class WaitFor(Command):
    """A timing wait — the ``wait(sc_time)`` of the specification style.

    This is both a node (it ends the current segment) and an explicit
    advance of simulated time by ``duration``.
    """

    __slots__ = ("duration",)
    is_node = True

    def __init__(self, duration: SimTime):
        if not isinstance(duration, SimTime):
            raise TypeError(f"WaitFor needs a SimTime, got {type(duration).__name__}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"WaitFor({self.duration})"


class ProcessExit(Command):
    """Synthesized by the scheduler when a process generator returns.

    Never yielded by user code; it exists so timing agents see the final
    segment of a process and can charge its cost.
    """

    __slots__ = ()
    is_node = True

    def __repr__(self) -> str:
        return "ProcessExit()"


class WaitEvent(Command):
    """Internal: suspend until the given :class:`~repro.kernel.events.Event` fires."""

    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event

    def __repr__(self) -> str:
        return f"WaitEvent({getattr(self.event, 'name', self.event)!r})"


class RequestUpdate(Command):
    """Internal: register a channel for the update phase of this delta cycle.

    The scheduler will call ``channel.update()`` once all runnable
    processes of the current evaluate phase have yielded.
    """

    __slots__ = ("channel",)

    def __init__(self, channel):
        self.channel = channel

    def __repr__(self) -> str:
        return f"RequestUpdate({getattr(self.channel, 'name', self.channel)!r})"


class Mark(Command):
    """A user label attached to the current point of execution.

    The dynamic equivalent of the paper's parser-inserted segment marks:
    the segment tracker records the label against the current segment so
    reports can show user-meaningful names.  Not a node — it neither
    suspends the process nor ends the segment.
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = str(label)

    def __repr__(self) -> str:
        return f"Mark({self.label!r})"


def wait(duration: SimTime) -> WaitFor:
    """Convenience constructor mirroring SystemC's ``wait(sc_time)``.

    Use as ``yield wait(SimTime.ns(10))`` inside a process.
    """
    return WaitFor(duration)
