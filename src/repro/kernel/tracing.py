"""Event tracing: the raw record stream behind reports and figures.

The :class:`TraceRecorder` is a scheduler observer that timestamps every
node, process transition and user mark with ``(time, delta)``.  Both
coordinates matter: in untimed simulation all activity collapses onto
``time == 0`` and only the delta axis orders events (Fig. 5a), while in
strict-timed simulation the time axis carries platform behaviour
(Fig. 5b).  Comparing the two traces of one design is the paper's
determinism check.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .commands import ChannelAccess, Command, NodeDone, ProcessExit, WaitFor
from .process import Process
from .scheduler import SchedulerObserver
from .time import SimTime


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One timestamped simulation event."""

    time_fs: int
    delta: int
    process: str
    kind: str          # node-reached | node-finished | mark | exit | resume
    detail: str        # channel.op, wait duration, or mark label

    @property
    def time(self) -> SimTime:
        return SimTime(self.time_fs)

    def __str__(self) -> str:
        return (f"[{SimTime(self.time_fs)} d{self.delta}] "
                f"{self.process}: {self.kind} {self.detail}")


def _describe(command: Command) -> str:
    if isinstance(command, (ChannelAccess, NodeDone)):
        return f"{getattr(command.channel, 'name', '?')}.{command.operation}"
    if isinstance(command, WaitFor):
        return f"wait({command.duration})"
    if isinstance(command, ProcessExit):
        return "exit"
    return repr(command)


class TraceRecorder(SchedulerObserver):
    """Scheduler observer that accumulates :class:`TraceRecord` entries.

    ``kinds`` restricts recording (None = record everything); traces of
    long simulations can otherwise grow large.
    """

    def __init__(self, kinds: Optional[set] = None):
        self.records: List[TraceRecord] = []
        self._kinds = kinds

    def _emit(self, now: SimTime, delta: int, process: Process,
              kind: str, detail: str) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        self.records.append(
            TraceRecord(now.femtoseconds, delta, process.full_name, kind, detail)
        )

    # -- observer callbacks ----------------------------------------------

    def on_node_reached(self, process, command, now, delta):
        self._emit(now, delta, process, "node-reached", _describe(command))

    def on_node_finished(self, process, command, now, delta):
        self._emit(now, delta, process, "node-finished", _describe(command))

    def on_mark(self, process, label, now, delta):
        self._emit(now, delta, process, "mark", label)

    def on_process_exit(self, process, now):
        self._emit(now, 0, process, "exit", "")

    # -- queries ------------------------------------------------------------

    def for_process(self, full_name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.process == full_name]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class VcdWriter:
    """Minimal VCD (value-change dump) writer for :class:`Signal` histories.

    Produces a waveform file viewable in GTKWave from the committed
    value history of a set of signals — a convenience for inspecting
    strict-timed simulations with standard EDA tooling.
    """

    _ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self, timescale: str = "1 fs"):
        self.timescale = timescale

    def render(self, signals) -> str:
        """Render the histories of ``signals`` (iterable of Signal) to VCD text."""
        signals = list(signals)
        lines = [
            "$date reproduction run $end",
            "$version repro VcdWriter $end",
            f"$timescale {self.timescale} $end",
            "$scope module top $end",
        ]
        ids = {}
        for index, signal in enumerate(signals):
            code = self._identifier(index)
            ids[signal.name] = code
            lines.append(f"$var wire 64 {code} {signal.name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        changes = []
        for signal in signals:
            for time_fs, _delta, value in signal.history:
                changes.append((time_fs, ids[signal.name], value))
        changes.sort(key=lambda c: c[0])

        current_time = None
        for time_fs, code, value in changes:
            if time_fs != current_time:
                lines.append(f"#{time_fs}")
                current_time = time_fs
            lines.append(f"b{self._to_bits(value)} {code}")
        return "\n".join(lines) + "\n"

    def write(self, path: str, signals) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render(signals))

    def _identifier(self, index: int) -> str:
        chars = self._ID_CHARS
        code = chars[index % len(chars)]
        index //= len(chars)
        while index:
            code += chars[index % len(chars)]
            index //= len(chars)
        return code

    @staticmethod
    def _to_bits(value) -> str:
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            as_int = abs(hash(value)) & 0xFFFFFFFF
        if as_int < 0:
            as_int &= (1 << 64) - 1
        return bin(as_int)[2:]
