"""Event tracing: the raw record stream behind reports and figures.

The :class:`TraceRecorder` is a scheduler observer that timestamps every
node, process transition and user mark with ``(time, delta)``.  Both
coordinates matter: in untimed simulation all activity collapses onto
``time == 0`` and only the delta axis orders events (Fig. 5a), while in
strict-timed simulation the time axis carries platform behaviour
(Fig. 5b).  Comparing the two traces of one design is the paper's
determinism check.

Records flow through a pluggable :class:`TraceSink`.  The default
:class:`MemorySink` buffers everything in a list (the historical
behaviour); the :mod:`repro.observe` subsystem adds a bounded ring
buffer and a streaming JSONL writer so multi-million-event runs hold
O(1) memory, plus exporters (Perfetto, VCD, flamegraph) over the same
record stream.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

from .commands import ChannelAccess, Command, NodeDone, ProcessExit, WaitFor
from .process import Process
from .scheduler import SchedulerObserver
from .time import SimTime


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One timestamped simulation event.

    ``depth`` carries the channel occupancy after a completed channel
    access (``node-finished`` records on channels with a ``__len__``,
    e.g. FIFOs); it is ``-1`` when no occupancy applies.
    """

    time_fs: int
    delta: int
    process: str
    kind: str          # node-reached | node-finished | mark | exit | resume | suspend
    detail: str        # channel.op, wait duration, or mark label
    depth: int = -1

    @property
    def time(self) -> SimTime:
        return SimTime(self.time_fs)

    def __str__(self) -> str:
        return (f"[{SimTime(self.time_fs)} d{self.delta}] "
                f"{self.process}: {self.kind} {self.detail}")


def _describe(command: Command) -> str:
    if isinstance(command, (ChannelAccess, NodeDone)):
        return f"{getattr(command.channel, 'name', '?')}.{command.operation}"
    if isinstance(command, WaitFor):
        return f"wait({command.duration})"
    if isinstance(command, ProcessExit):
        return "exit"
    # Stable class-name fallback: repr() would leak object addresses
    # into the stream and break record-level determinism across runs.
    return type(command).__name__


class TraceSink:
    """Where trace records go.  The protocol is deliberately tiny.

    ``emit`` receives every record in simulation order; ``close``
    releases any backing resource (a no-op for in-memory sinks);
    ``count`` is the number of records emitted so far.  Sinks that
    retain records expose them as ``records``.
    """

    def emit(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release; safe to call more than once."""

    @property
    def count(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.count


class MemorySink(TraceSink):
    """Unbounded in-memory sink — the historical TraceRecorder buffer."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    @property
    def count(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


class TraceRecorder(SchedulerObserver):
    """Scheduler observer that feeds :class:`TraceRecord` entries to a sink.

    ``kinds`` restricts recording (None = record everything); traces of
    long simulations can otherwise grow large.  ``record_states`` adds
    ``resume``/``suspend`` records on process state transitions — the
    raw material for process-activity waveforms; it is off by default so
    existing record streams (and their digests) are unchanged.
    """

    def __init__(self, kinds: Optional[set] = None,
                 sink: Optional[TraceSink] = None,
                 record_states: bool = False):
        self.sink: TraceSink = sink if sink is not None else MemorySink()
        self._kinds = kinds
        self.record_states = record_states

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records (memory-backed sinks only).

        Streaming sinks do not retain records; read their output back
        instead (e.g. :func:`repro.observe.read_jsonl`).
        """
        retained = getattr(self.sink, "records", None)
        if retained is None:
            raise AttributeError(
                f"sink {type(self.sink).__name__} does not retain records"
            )
        return list(retained)

    def _emit(self, now: SimTime, delta: int, process: Process,
              kind: str, detail: str, depth: int = -1) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        self.sink.emit(
            TraceRecord(now.femtoseconds, delta, process.full_name,
                        kind, detail, depth)
        )

    # -- observer callbacks ----------------------------------------------

    def on_node_reached(self, process, command, now, delta):
        self._emit(now, delta, process, "node-reached", _describe(command))

    def on_node_finished(self, process, command, now, delta):
        depth = -1
        channel = getattr(command, "channel", None)
        if channel is not None:
            try:
                depth = len(channel)
            except TypeError:
                depth = -1
        self._emit(now, delta, process, "node-finished",
                   _describe(command), depth)

    def on_mark(self, process, label, now, delta):
        self._emit(now, delta, process, "mark", label)

    def on_process_resume(self, process, now):
        if self.record_states:
            self._emit(now, 0, process, "resume", "")

    def on_process_suspend(self, process, now):
        # A terminated process emits `exit`; the trailing suspend
        # callback would only flip state waveforms back to waiting.
        if self.record_states and not process.done:
            self._emit(now, 0, process, "suspend", "")

    def on_process_exit(self, process, now):
        self._emit(now, 0, process, "exit", "")

    # -- queries ------------------------------------------------------------

    def for_process(self, full_name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.process == full_name]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def close(self) -> None:
        self.sink.close()

    def clear(self) -> None:
        clear = getattr(self.sink, "clear", None)
        if clear is None:
            raise AttributeError(
                f"sink {type(self.sink).__name__} cannot be cleared"
            )
        clear()

    def __len__(self) -> int:
        return self.sink.count


class VcdWriter:
    """Minimal VCD (value-change dump) writer for :class:`Signal` histories.

    Produces a waveform file viewable in GTKWave from the committed
    value history of a set of signals — a convenience for inspecting
    strict-timed simulations with standard EDA tooling.  For waveforms
    of process states and channel occupancy derived from the event
    trace, see :func:`repro.observe.export_vcd`.
    """

    _ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self, timescale: str = "1 fs"):
        self.timescale = timescale

    def render(self, signals) -> str:
        """Render the histories of ``signals`` (iterable of Signal) to VCD text."""
        signals = list(signals)
        lines = [
            "$date reproduction run $end",
            "$version repro VcdWriter $end",
            f"$timescale {self.timescale} $end",
            "$scope module top $end",
        ]
        ids = {}
        for index, signal in enumerate(signals):
            code = self._identifier(index)
            ids[signal.name] = code
            lines.append(f"$var wire 64 {code} {signal.name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        changes = []
        for signal in signals:
            for time_fs, _delta, value in signal.history:
                changes.append((time_fs, ids[signal.name], value))
        changes.sort(key=lambda c: c[0])

        current_time = None
        for time_fs, code, value in changes:
            if time_fs != current_time:
                lines.append(f"#{time_fs}")
                current_time = time_fs
            lines.append(f"b{self._to_bits(value)} {code}")
        return "\n".join(lines) + "\n"

    def write(self, path: str, signals) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render(signals))

    def _identifier(self, index: int) -> str:
        chars = self._ID_CHARS
        code = chars[index % len(chars)]
        index //= len(chars)
        while index:
            code += chars[index % len(chars)]
            index //= len(chars)
        return code

    @staticmethod
    def _to_bits(value) -> str:
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            as_int = abs(hash(value)) & 0xFFFFFFFF
        if as_int < 0:
            as_int &= (1 << 64) - 1
        return bin(as_int)[2:]
