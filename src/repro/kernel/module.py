"""Modules and ports: the structural layer of a design.

A :class:`Module` groups processes and the channels they use, mirroring
SystemC's ``sc_module``.  Processes are plain generator methods
registered with :meth:`Module.add_process`.  :class:`Port` objects give
a SystemC-flavoured binding discipline: a module declares the interface
it needs (``Port("in")``), the parent binds a channel to it, and
elaboration fails loudly on unbound ports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ElaborationError
from .channels import Channel
from .process import Process


class Port:
    """A typed hole in a module, later bound to a channel.

    ``direction`` is documentation ("in", "out", "inout"); the binding
    discipline (bind exactly once, before use) is what is enforced.
    """

    __slots__ = ("name", "direction", "_channel")

    def __init__(self, name: str, direction: str = "inout"):
        if direction not in ("in", "out", "inout"):
            raise ValueError(f"port direction must be in/out/inout, got {direction!r}")
        self.name = name
        self.direction = direction
        self._channel: Optional[Channel] = None

    def bind(self, channel: Channel) -> None:
        """Bind this port to a channel; rebinding is an elaboration error."""
        if self._channel is not None:
            raise ElaborationError(f"port {self.name!r} is already bound")
        if not isinstance(channel, Channel):
            raise ElaborationError(
                f"port {self.name!r} must bind to a Channel, got {type(channel).__name__}"
            )
        self._channel = channel

    @property
    def is_bound(self) -> bool:
        return self._channel is not None

    @property
    def channel(self) -> Channel:
        """The bound channel; raises if the port was never bound."""
        if self._channel is None:
            raise ElaborationError(f"port {self.name!r} used before binding")
        return self._channel

    def __getattr__(self, item):
        # Delegate channel operations (read/write/...) through the port,
        # so process code can say `yield from self.port.read()`.
        return getattr(self.channel, item)

    def __repr__(self) -> str:
        target = self._channel.name if self._channel is not None else "<unbound>"
        return f"Port({self.name!r}, {self.direction!r} -> {target})"


class Module:
    """A named container of processes, ports and child modules."""

    def __init__(self, simulator, name: str):
        # Accept either a Simulator facade or a raw Scheduler.
        self.scheduler = getattr(simulator, "scheduler", simulator)
        self._simulator = simulator
        self.name = name
        self.processes: List[Process] = []
        self.ports: Dict[str, Port] = {}
        self.children: List["Module"] = []
        register = getattr(simulator, "_register_module", None)
        if register is not None:
            register(self)

    # -- construction ---------------------------------------------------

    def add_process(self, body: Callable[[], "object"], name: str = "",
                    priority: int = 0) -> Process:
        """Register a process whose behaviour is the generator ``body()``.

        ``body`` is called immediately to create the generator; the
        generator does not start executing until the simulation runs.
        """
        process_name = name or getattr(body, "__name__", "process")
        if any(p.name == process_name for p in self.processes):
            raise ElaborationError(
                f"module {self.name!r} already has a process named {process_name!r}"
            )
        process = Process(process_name, body(), module=self,
                          priority=priority, body=body)
        self.scheduler.register(process)
        self.processes.append(process)
        return process

    def add_port(self, name: str, direction: str = "inout") -> Port:
        """Declare a port on this module."""
        if name in self.ports:
            raise ElaborationError(f"module {self.name!r} already has port {name!r}")
        port = Port(name, direction)
        self.ports[name] = port
        return port

    def add_child(self, child: "Module") -> "Module":
        self.children.append(child)
        return child

    # -- elaboration checks ------------------------------------------------

    def check_elaboration(self) -> None:
        """Verify all ports (recursively) are bound."""
        for port in self.ports.values():
            if not port.is_bound:
                raise ElaborationError(
                    f"module {self.name!r}: port {port.name!r} is unbound"
                )
        for child in self.children:
            child.check_elaboration()

    def __repr__(self) -> str:
        return (f"Module({self.name!r}, processes={len(self.processes)}, "
                f"ports={len(self.ports)})")
