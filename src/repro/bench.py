"""Machine-readable speed benchmarking of the estimation library itself.

The paper's headline result is *speed*: strict-timed annotated
simulation runs >142× faster than the instruction-set simulator while
staying below a 73× overload over the untimed specification.  This
module measures both ratios — per workload, in a stable JSON shape
(``BENCH_overhead.json``) — so the repository's own performance of the
performance model is tracked release over release:

* **overload** — annotated (charging) execution time over plain
  untimed execution time of the same kernel; the paper's "<73×" bound,
* **gain** — ISS execution time over annotated execution time; the
  paper's ">142×" claim.

Function workloads come from :func:`repro.workloads.registry` and run
single-source on all three backends.  The concurrent vocoder pipeline
additionally exercises the full kernel/library stack (five processes,
FIFOs, segment tracking) and honours the fast-forward engine flags.

Used by ``repro bench`` (the CLI entry point) and
``benchmarks/bench_overhead.py`` (the regression benchmark).
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from typing import Callable, Dict, List, Optional, Sequence

from .annotate import MODE_SW, OperationCosts
from .errors import ReproError
from .workloads import registry, run_annotated

#: Bump when the JSON layout changes shape incompatibly.
SCHEMA_VERSION = 1

DEFAULT_REPEATS = 3
DEFAULT_FRAMES = 4


@dataclasses.dataclass
class OverheadResult:
    """Both paper-shaped speed ratios for one workload."""

    name: str
    kind: str                    # "function" | "pipeline"
    untimed_s: float             # plain execution, best-of-repeats
    annotated_s: float           # charging execution, best-of-repeats
    estimated_cycles: float      # what the annotated run estimated
    iss_s: Optional[float] = None
    iss_cycles: Optional[int] = None
    iss_error: Optional[str] = None
    fastforward_stats: Optional[str] = None
    fastforward: Optional[Dict] = None   # engine.stats() counters
    compiled: Optional[bool] = None      # compile tier handled this one
    compile_reason: Optional[str] = None
    compile_stats: Optional[Dict] = None  # tier counters (pipeline)

    @property
    def overload(self) -> float:
        """Annotated over untimed host time (paper: stays < 73x)."""
        return self.annotated_s / self.untimed_s if self.untimed_s else 0.0

    @property
    def gain(self) -> Optional[float]:
        """ISS over annotated host time (paper: > 142x)."""
        if self.iss_s is None or not self.annotated_s:
            return None
        return self.iss_s / self.annotated_s

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "untimed_s": self.untimed_s,
            "annotated_s": self.annotated_s,
            "iss_s": self.iss_s,
            "overload": self.overload,
            "gain": self.gain,
            "estimated_cycles": self.estimated_cycles,
            "iss_cycles": self.iss_cycles,
            "iss_error": self.iss_error,
            "fastforward_stats": self.fastforward_stats,
            "fastforward": self.fastforward,
            "compiled": self.compiled,
            "compile_reason": self.compile_reason,
            "compile_stats": self.compile_stats,
        }


def _best_of(repeats: int, thunk: Callable[[], object]):
    """Minimum wall time over ``repeats`` runs (and the last result)."""
    best = math.inf
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


# ---------------------------------------------------------------------------
# Function workloads (the sequential registry kernels)
# ---------------------------------------------------------------------------

def _compiled_timing(entry: Callable, make_args: Callable[[], tuple],
                     costs: OperationCosts, repeats: int,
                     check_compile: bool):
    """Compiled (charging) timing for one kernel, or ``None`` + reason.

    Returns ``(best_seconds, estimated_cycles, None)`` when the kernel
    compiles, ``(None, None, reason)`` when it is outside the compiler's
    subset (the caller then times the interpreted annotated run, exactly
    as the tier itself would fall back).
    """
    from .annotate.context import CostContext
    from .compilebc import (
        Unsupported, arg_shapes_of, check_entry, compile_kernel,
    )
    from .compilebc.program import Charger

    try:
        program = compile_kernel(entry, arg_shapes_of(make_args()))
    except Unsupported as exc:
        return None, None, str(exc)
    table = program.bind(costs)
    if table is None:
        return None, None, f"cost table {costs.name!r} refused to bind"
    if check_compile:
        check_entry(entry, make_args, costs)  # raises on divergence

    def timed_run():
        ctx = CostContext(costs, MODE_SW)
        program.run(make_args(), Charger(ctx, table))
        return ctx.total_cycles

    compiled_s, estimated_cycles = _best_of(repeats, timed_run)
    return compiled_s, estimated_cycles, None


def bench_function_workload(name: str, functions: Sequence[Callable],
                            make_args: Callable[[], tuple],
                            costs: OperationCosts,
                            repeats: int = DEFAULT_REPEATS,
                            include_iss: bool = True,
                            compile: bool = False,
                            check_compile: bool = False) -> OverheadResult:
    """Measure one registry workload on all three backends.

    Arguments are rebuilt for every run — sorting kernels mutate their
    input in place, so reusing one argument tuple would time sorting an
    already-sorted list after the first run.

    With ``compile=True`` the annotated (charging) time is taken from
    the kernel's compiled program instead of the interpreted run, the
    way the compile tier serves it; kernels the compiler rejects keep
    the interpreted timing (``compiled`` False + reason in the payload).
    """
    entry = functions[0]
    compiled = compile_reason = None

    untimed_s, _ = _best_of(repeats, lambda: entry(*make_args()))
    annotated_s = estimated_cycles = None
    if compile or check_compile:
        annotated_s, estimated_cycles, compile_reason = _compiled_timing(
            entry, make_args, costs, repeats, check_compile)
        compiled = compile_reason is None
    if annotated_s is None:
        annotated_s, annotated = _best_of(
            repeats, lambda: run_annotated(entry, make_args(), costs,
                                           MODE_SW))
        _result, estimated_cycles, _t_min = annotated

    iss_s = iss_cycles = iss_error = None
    if include_iss:
        from .iss import run_compiled
        try:
            iss_s, iss = _best_of(
                repeats,
                lambda: run_compiled(list(functions), args=make_args(),
                                     entry=entry))
            iss_cycles = iss.cycles
        except (ReproError, NotImplementedError, ValueError) as exc:
            iss_error = f"{type(exc).__name__}: {exc}"
            iss_s = iss_cycles = None

    return OverheadResult(
        name=name, kind="function",
        untimed_s=untimed_s, annotated_s=annotated_s,
        estimated_cycles=estimated_cycles,
        iss_s=iss_s, iss_cycles=iss_cycles, iss_error=iss_error,
        compiled=compiled, compile_reason=compile_reason,
    )


# ---------------------------------------------------------------------------
# The concurrent vocoder pipeline (full kernel + library stack)
# ---------------------------------------------------------------------------

def _run_vocoder_timed(frames, costs: OperationCosts,
                       fastforward: bool, check_fastforward: bool,
                       compile: bool = False, check_compile: bool = False):
    from .compilebc import set_tier
    from .core import PerformanceLibrary
    from .kernel.simulator import Simulator
    from .platform import EnvironmentResource, Mapping, make_cpu
    from .workloads.vocoder import STAGE_NAMES, build_vocoder

    simulator = Simulator()
    design = build_vocoder(simulator, frames, annotate=True)
    cpu = make_cpu("cpu0", costs=costs)
    env = EnvironmentResource("testbench")
    mapping = Mapping()
    for name, process in design.processes.items():
        mapping.assign(process, cpu if name in STAGE_NAMES else env)
    perf = PerformanceLibrary(mapping, fastforward=fastforward,
                              check_fastforward=check_fastforward,
                              compile=compile, check_compile=check_compile)
    perf.attach(simulator)
    try:
        simulator.run()
    finally:
        set_tier(None)
    simulator.assert_quiescent()
    return design, perf


def _run_vocoder_untimed(frames):
    from .kernel.simulator import Simulator
    from .workloads.vocoder import build_vocoder

    simulator = Simulator()
    design = build_vocoder(simulator, frames, annotate=False)
    simulator.run()
    simulator.assert_quiescent()
    return design


def _run_vocoder_iss(frames):
    """Sequential ISS reference over identical frames (Table 3 shape)."""
    from .iss.machine import Machine
    from .iss.runtime import prepare_program, run_program
    from .workloads.vocoder import make_stages, run_reference

    machine = Machine(memory_words=1 << 16)
    programs = {}
    total_cycles = [0]
    for stage in make_stages():
        program = prepare_program(list(stage.kernels), entry=stage.kernels[0])
        programs[stage.kernels[0].__name__] = (program,
                                               stage.kernels[0].__name__)

    def execute(fn, args):
        program, entry = programs[fn.__name__]
        outcome = run_program(program, entry, args, machine=machine)
        total_cycles[0] += outcome.cycles
        return outcome.return_value

    results = run_reference(frames, execute=execute)
    return results, total_cycles[0]


def bench_vocoder(costs: OperationCosts,
                  frame_count: int = DEFAULT_FRAMES,
                  repeats: int = DEFAULT_REPEATS,
                  fastforward: bool = False,
                  check_fastforward: bool = False,
                  include_iss: bool = True,
                  compile: bool = False,
                  check_compile: bool = False) -> OverheadResult:
    """Measure the five-process vocoder pipeline end to end."""
    from .workloads.vocoder import make_frames

    frames = make_frames(frame_count)

    untimed_s, untimed_design = _best_of(
        repeats, lambda: _run_vocoder_untimed(frames))
    annotated_s, (design, perf) = _best_of(
        repeats, lambda: _run_vocoder_timed(frames, costs, fastforward,
                                            check_fastforward,
                                            compile, check_compile))

    checks_timed = [p["check"] for p in design.results]
    checks_plain = [p["check"] for p in untimed_design.results]
    if checks_timed != checks_plain:
        raise ReproError("vocoder timed/untimed functional results diverge")

    estimated = sum(stats.cycles for stats in perf.stats.values())

    iss_s = iss_cycles = iss_error = None
    if include_iss:
        try:
            iss_s, (iss_results, iss_cycles) = _best_of(
                repeats, lambda: _run_vocoder_iss(frames))
            checks_iss = [p["check"] for p in iss_results]
            if checks_iss != checks_plain:
                raise ReproError("vocoder ISS functional results diverge")
        except (ReproError, NotImplementedError, ValueError) as exc:
            iss_error = f"{type(exc).__name__}: {exc}"
            iss_s = iss_cycles = None

    return OverheadResult(
        name="vocoder", kind="pipeline",
        untimed_s=untimed_s, annotated_s=annotated_s,
        estimated_cycles=estimated,
        iss_s=iss_s, iss_cycles=iss_cycles, iss_error=iss_error,
        fastforward_stats=(perf.engine.describe()
                           if perf.engine is not None else None),
        fastforward=(perf.engine.stats()
                     if perf.engine is not None else None),
        compiled=(None if perf.compile_tier is None
                  else perf.compile_tier.stats["rejected"] == 0),
        compile_stats=(dict(perf.compile_tier.stats)
                       if perf.compile_tier is not None else None),
    )


# ---------------------------------------------------------------------------
# The full sweep + JSON payload
# ---------------------------------------------------------------------------

def _geomean(values: List[float]) -> Optional[float]:
    values = [v for v in values if v and v > 0.0]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(workloads: Optional[Sequence[str]] = None,
              costs: Optional[OperationCosts] = None,
              repeats: int = DEFAULT_REPEATS,
              frame_count: int = DEFAULT_FRAMES,
              fastforward: bool = False,
              check_fastforward: bool = False,
              include_iss: bool = True,
              include_vocoder: bool = True,
              compile: bool = False,
              check_compile: bool = False) -> Dict:
    """Run the overhead sweep; returns the ``BENCH_overhead.json`` payload."""
    if costs is None:
        from .platform import OPENRISC_SW_COSTS
        costs = OPENRISC_SW_COSTS

    available = registry()
    if workloads is None:
        selected = list(available)
    else:
        unknown = sorted(set(workloads) - set(available) - {"vocoder"})
        if unknown:
            raise ReproError(
                f"unknown workload(s) {', '.join(unknown)}; available: "
                f"{', '.join(sorted(available))}, vocoder")
        selected = [name for name in available if name in set(workloads)]
        include_vocoder = "vocoder" in workloads

    results: List[OverheadResult] = []
    for name in selected:
        functions, make_args = available[name]
        results.append(bench_function_workload(
            name, functions, make_args, costs,
            repeats=repeats, include_iss=include_iss,
            compile=compile, check_compile=check_compile))
    if include_vocoder:
        results.append(bench_vocoder(
            costs, frame_count=frame_count, repeats=repeats,
            fastforward=fastforward, check_fastforward=check_fastforward,
            include_iss=include_iss,
            compile=compile, check_compile=check_compile))

    gains = [r.gain for r in results if r.gain is not None]
    payload = {
        "schema": SCHEMA_VERSION,
        "costs": costs.name,
        "repeats": repeats,
        "fastforward": fastforward,
        "check_fastforward": check_fastforward,
        "compile": compile,
        "check_compile": check_compile,
        "workloads": {r.name: r.to_dict() for r in results},
        "summary": {
            "workloads": len(results),
            "geomean_overload": _geomean([r.overload for r in results]),
            "geomean_gain": _geomean(gains),
            "max_overload": max((r.overload for r in results), default=None),
            "min_gain": min(gains, default=None),
        },
    }
    return payload


def write_payload(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_table(payload: Dict) -> str:
    """Human-readable table of a :func:`run_bench` payload."""
    headers = ["Workload", "Untimed (ms)", "Annotated (ms)", "Overload",
               "ISS (ms)", "Gain"]
    rows = []
    for name, entry in payload["workloads"].items():
        iss_cell = ("-" if entry["iss_s"] is None
                    else f"{entry['iss_s'] * 1e3:.2f}")
        gain_cell = ("-" if entry["gain"] is None
                     else f"{entry['gain']:.1f}x")
        if entry.get("compiled"):
            name = name + "*"
        rows.append([name, f"{entry['untimed_s'] * 1e3:.2f}",
                     f"{entry['annotated_s'] * 1e3:.2f}",
                     f"{entry['overload']:.1f}x", iss_cell, gain_cell])
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(str(c).ljust(w)
                         for c, w in zip(cells, widths)).rstrip()

    summary = payload["summary"]
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    overload = summary.get("geomean_overload")
    gain = summary.get("geomean_gain")
    lines.append("")
    if payload.get("compile"):
        lines.append("* = served by the bytecode compile tier")
    lines.append(
        "geomean overload: "
        + (f"{overload:.1f}x (paper bound: <73x)" if overload else "n/a")
        + "  geomean gain: "
        + (f"{gain:.1f}x (paper claim: >142x)" if gain else "n/a"))
    return "\n".join(lines)
