"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the reproduction without writing a
script:

* ``info``       — package inventory and versions,
* ``opcodes``    — the OR-lite instruction reference,
* ``calibrate``  — fit operator weights against the ISS and print them,
* ``disasm``     — compile a named workload and print its assembly,
* ``estimate``   — annotated estimate vs ISS measurement of a workload,
* ``graph``      — run a demo process and dump its process graph as
  GraphViz (``--check-coverage`` gates on static node coverage),
* ``lint``       — model lint: statically enforce the §2 methodology
  (see ``docs/analysis.md`` for the rule catalog),
* ``cache``      — inspect / verify / garbage-collect the batch result
  cache and its per-run trace artifacts (``stats``/``verify``/``gc``),
* ``dse``        — seeded evolutionary design-space exploration over a
  genome space (builtin ``fig4`` or a JSON spec); prints the ranked
  Pareto front and writes a deterministic JSON report,
* ``inject``     — model-level fault injection: deterministic faultload
  generation, a cached campaign sweep, and the dependability report
  (silent/detected/failed, failure rate, MTTF, detection latency).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence, Tuple

from . import __version__

#: name -> (functions tuple (entry first), argument builder)
def _workload_registry() -> Dict[str, Tuple[tuple, Callable[[], tuple]]]:
    from .workloads import registry

    return registry()


def _cmd_info(_args) -> int:
    import networkx
    import numpy
    import scipy

    print(f"repro {__version__} — reproduction of 'System-Level "
          f"Performance Analysis in SystemC' (DATE 2004)")
    print(f"  python {sys.version.split()[0]}, numpy {numpy.__version__}, "
          f"scipy {scipy.__version__}, networkx {networkx.__version__}")
    from .iss.isa import OPCODES
    print(f"  OR-lite ISA: {len(OPCODES)} opcodes")
    print(f"  workloads: {', '.join(sorted(_workload_registry()))}")
    print("  benches:   pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_opcodes(_args) -> int:
    from .iss.isa import mnemonic_reference
    print(mnemonic_reference())
    return 0


def _cmd_calibrate(args) -> int:
    from .calibration import calibrate, default_microbenchmarks
    from .platform import OPENRISC_SW_COSTS

    report = calibrate(default_microbenchmarks(scale=args.scale),
                       OPENRISC_SW_COSTS)
    print(report.summary())
    if args.output:
        report.costs.save(args.output)
        print(f"saved cost table to {args.output}")
    return 0


def _resolve_workload(name: str):
    registry = _workload_registry()
    try:
        return registry[name]
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {', '.join(sorted(registry))}"
        )


def _cmd_disasm(args) -> int:
    from .iss.runtime import prepare_program

    functions, _make_args = _resolve_workload(args.workload)
    program = prepare_program(list(functions), entry=functions[0])
    print(program.listing())
    print(f"; {len(program)} instructions")
    return 0


def _cmd_estimate(args) -> int:
    from .calibration import calibrate, default_microbenchmarks
    from .iss import run_compiled
    from .platform import CPU_CLOCK_MHZ, OPENRISC_SW_COSTS
    from .workloads.common import run_annotated

    functions, make_args = _resolve_workload(args.workload)
    if args.weights:
        from .annotate import OperationCosts
        costs = OperationCosts.load(args.weights)
        print(f"using cost table {costs.name!r} from {args.weights}")
    else:
        print(f"calibrating (scale {args.scale}) ...")
        costs = calibrate(default_microbenchmarks(scale=args.scale),
                          OPENRISC_SW_COSTS).costs
    result, estimated, _t_min = run_annotated(functions[0], make_args(), costs)
    measured = run_compiled(list(functions), args=make_args(),
                            entry=functions[0])
    error = 100.0 * (estimated - measured.cycles) / measured.cycles
    print(f"workload {args.workload!r}: result = {result}")
    print(f"  library estimate : {estimated:12.0f} cycles "
          f"({estimated / CPU_CLOCK_MHZ:.2f} us @ {CPU_CLOCK_MHZ:.0f} MHz)")
    print(f"  ISS measurement  : {measured.cycles:12d} cycles "
          f"({measured.instructions} instructions, CPI {measured.cpi:.2f})")
    print(f"  estimation error : {error:+.2f}%")
    return 0


def _cmd_batch(args) -> int:
    from .batch import (
        Campaign,
        ProgressObserver,
        ResultCache,
        fig4_sweep_configs,
        workload_sweep_configs,
    )

    if args.sweep == "fig4":
        configs = fig4_sweep_configs(max_units_per_class=args.max_units,
                                     taps=args.taps,
                                     evaluate_system=not args.schedule_only,
                                     samples=args.samples)
    else:
        workloads = args.workload or None
        configs = workload_sweep_configs(workloads=workloads)

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        if args.clear_cache:
            removed = cache.clear()
            print(f"cleared {removed} cache entries from {cache.root}")

    observers = [] if args.quiet else [ProgressObserver()]
    workers = 0 if args.serial else args.workers
    campaign = Campaign(configs, workers=workers, timeout_s=args.timeout,
                        retries=args.retries, cache=cache,
                        start_method=args.start_method or None,
                        observers=observers,
                        trace_dir=args.trace_dir or None)
    if campaign.trace_dir:
        print(f"per-run trace artifacts (JSONL, keyed by cache hash) "
              f"in {campaign.trace_dir}")
    mode = "serial (in-process)" if campaign.workers <= 1 else \
        f"{campaign.workers} workers ({campaign.start_method})"
    print(f"campaign: {len(configs)} points, {mode}, "
          f"cache {'off' if cache is None else cache.root}")
    results = campaign.run()

    print()
    if args.sweep == "fig4":
        rows = []
        for r in sorted((r for r in results if r.ok),
                        key=lambda r: (r.payload["area"],
                                       r.payload["latency_cycles"])):
            p = r.payload
            cells = [r.config.name, f"{p['area']:.0f}",
                     str(p["latency_cycles"]), f"{p['latency_ns']:.0f}",
                     f"{p['k']:.2f}"]
            if "system_end_ns" in p:
                cells.append(f"{p['system_end_ns'] / 1e3:.2f}")
            rows.append(cells)
        headers = ["design point", "area", "cycles", "time (ns)", "k"]
        if rows and len(rows[0]) == 6:
            headers.append("system end (us)")
        print(_format_rows("Fig. 4 design-space sweep", headers, rows))
    else:
        rows = [[r.config.name,
                 str(r.payload.get("result")),
                 str(r.payload.get("cycles", r.payload.get("cycles_max", "")))]
                for r in results if r.ok]
        print(_format_rows("workload x backend sweep",
                           ["point", "result", "cycles"], rows))

    failed = [r for r in results if not r.ok]
    for r in failed:
        print(f"FAILED {r.config}: {r.status} after {r.attempts} attempts")
    print(f"\n{campaign.metrics.summary()}")
    return 1 if failed else 0


def _cmd_dse(args) -> int:
    from .batch import ProgressObserver, ResultCache
    from .dse import (
        DseError,
        DseProgress,
        DseSettings,
        Evolution,
        parse_objectives,
        resolve_space,
        write_report,
    )

    try:
        if args.space in ("fig4",):
            space = resolve_space(args.space,
                                  max_units_per_class=args.max_units,
                                  taps=args.taps,
                                  evaluate_system=args.evaluate_system,
                                  samples=args.samples)
        else:
            space = resolve_space(args.space)
        objectives = parse_objectives(args.objectives)
        weights = None
        if args.weights:
            try:
                weights = tuple(float(w) for w in args.weights.split(","))
            except ValueError:
                raise DseError(f"bad --weights {args.weights!r}; "
                               "use e.g. 2,1,1")
        settings = DseSettings(
            seed=args.seed, population=args.population,
            generations=args.generations, budget=args.budget,
            tournament=args.tournament, elites=args.elites,
            crossover_rate=args.crossover_rate,
            mutation_rate=args.mutation_rate)

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        observers = [] if args.quiet else [DseProgress()]
        if args.verbose:
            observers.append(ProgressObserver())
        workers = 0 if args.serial else (args.workers or 0)
        print(f"space {space.name!r}: {len(space.genes)} genes, "
              f"{space.size()} points; objectives "
              f"{', '.join(o.name for o in objectives)}; seed {args.seed}"
              + (f"; budget {args.budget}" if args.budget else ""))
        search = Evolution(space, objectives, settings, weights=weights,
                           cache=cache, workers=workers,
                           timeout_s=args.timeout, retries=args.retries,
                           start_method=args.start_method or None,
                           observers=observers,
                           trace_dir=args.trace_dir or None)
        result = search.run()
    except DseError as exc:
        raise SystemExit(f"repro dse: {exc}")

    print()
    rows = [[str(p.rank),
             ",".join(f"{g.name}={v}" for g, v
                      in zip(space.genes, p.genome)),
             *(f"{v:.4g}" for v in p.objectives),
             f"{p.score:.4f}"]
            for p in result.front]
    headers = ["rank", "genome", *(o.name for o in objectives), "score"]
    print(_format_rows("ranked Pareto front (best decision first)",
                       headers, rows))
    totals = result.totals()
    print(f"\n{result.evaluations} unique points evaluated "
          f"({result.submitted} submitted, {totals['cache_hits']} cache "
          f"hits, {totals['simulated']} simulated) of {result.grid_size} "
          f"in the grid; {len(result.trajectory)} generations, "
          f"{result.wall_s:.2f}s")
    if args.output:
        write_report(result, args.output)
        print(f"wrote search report to {args.output}")
    return 0


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def _parse_age(text: str) -> float:
    """``"30m"``/``"12h"``/``"7d"`` (or plain seconds) → seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise SystemExit(f"bad age {text!r}; use e.g. 3600, 30m, 12h, 7d")
    if value < 0:
        raise SystemExit("age must be >= 0")
    return value * unit


def _cmd_cache(args) -> int:
    from .batch import ResultCache, cache_stats, gc_cache, verify_cache

    cache = ResultCache(args.cache_dir)
    trace_dir = args.trace_dir or None
    rescan = bool(args.rescan)
    if args.cache_command == "stats":
        print(cache_stats(cache, trace_dir, rescan=rescan).describe())
        return 0
    if args.cache_command == "verify":
        report = verify_cache(cache, trace_dir, jobs=max(1, args.jobs),
                              rescan=rescan)
        print(report.describe())
        if not report.ok:
            return 1
        if report.drift is not None and not report.drift.ok:
            # Integrity is fine but the manifest had drifted (now
            # rebuilt); distinct exit code so scripts can tell.
            return 3
        return 0
    # gc
    if args.older_than is None and args.keep is None and not args.prune_only:
        raise SystemExit("repro cache gc: give --older-than and/or --keep "
                         "(or --prune-only to drop just invalid entries "
                         "and orphaned artifacts)")
    older_than_s = (None if args.older_than is None
                    else _parse_age(args.older_than))
    report = gc_cache(cache, trace_dir, older_than_s=older_than_s,
                      keep=args.keep, dry_run=args.dry_run, rescan=rescan)
    print(report.describe())
    return 0


def _cmd_inject(args) -> int:
    from .batch import ProgressObserver, ResultCache
    from .errors import InjectError
    from .inject import (
        DependabilityAnalysis,
        MODEL_KINDS,
        render_report,
        write_report,
    )

    kinds = None
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        known = set(MODEL_KINDS)
        unknown = [k for k in kinds if k not in known]
        if unknown:
            raise SystemExit(
                f"repro inject: unknown fault kind(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    observers = [] if args.quiet else [ProgressObserver()]
    workers = 0 if args.serial else (args.workers or 0)
    analysis = DependabilityAnalysis(
        count=args.faults,
        seed=args.seed,
        workload=args.workload,
        frames=args.frames,
        stim_seed=args.stim_seed,
        fastforward=not args.no_fastforward,
        kinds=kinds,
        window_ns=args.window_ns,
        cache=cache,
        workers=workers,
        timeout_s=args.timeout,
        retries=args.retries,
        start_method=args.start_method or None,
        observers=observers)
    print(f"faultload: {args.faults} injections, seed {args.seed}, "
          f"workload {args.workload!r} ({args.frames} frames), "
          f"cache {'off' if cache is None else cache.root}")
    try:
        report = analysis.run()
    except InjectError as exc:
        raise SystemExit(f"repro inject: {exc}")
    print()
    for line in render_report(report):
        print(line)
    if args.output:
        write_report(report, args.output)
        print(f"\nwrote dependability report to {args.output}")
    return 0


def _format_rows(title, headers, rows) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).ljust(w)
                         for c, w in zip(cells, widths)).rstrip()
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _cmd_graph(args) -> int:
    from . import SimTime, Simulator, wait
    from .segments import SegmentTracker, coverage_report

    try:
        values = [int(v) for v in args.values.split(",") if v.strip()]
    except ValueError:
        raise SystemExit(f"--values must be a comma-separated list of "
                         f"integers, got {args.values!r}")

    simulator = Simulator()
    tracker = SegmentTracker()
    simulator.add_observer(tracker)
    ch1 = simulator.fifo("ch1")
    ch2 = simulator.fifo("ch2")
    top = simulator.module("top")

    def process():
        for _ in values:
            value = yield from ch1.read()
            if value % 2 == 0:
                yield from ch2.write(value)
            yield wait(SimTime.ns(10))
            yield from ch2.write(0)

    def environment():
        for i in values:
            yield from ch1.write(i)
            if i % 2 == 0:
                yield from ch2.read()
            yield from ch2.read()

    top.add_process(process)
    top.add_process(environment)
    simulator.run()
    graph = tracker.graph_of("top.process")
    print(graph.to_dot())
    if args.check_coverage:
        report = coverage_report(process, graph)
        print(report.describe(), file=sys.stderr)
        if not report.complete:
            return 1
    return 0


def _lint_live(args):
    """Run each target script instrumented; lint what actually simulated."""
    import pathlib

    from .analysis import AnalysisResult, lint_simulation
    from .kernel.simulator import Simulator
    from .segments import SegmentTracker

    observed = []

    def instrument(simulator):
        tracker = SegmentTracker()
        simulator.add_observer(tracker)
        observed.append((simulator, tracker))

    result = AnalysisResult()
    skipped: list = []
    for target in args.targets:
        script = pathlib.Path(target)
        if not script.exists() or script.suffix != ".py":
            raise SystemExit(f"repro lint --live: {target} is not a Python "
                             "script (live lint executes its targets)")
        import runpy

        observed.clear()
        Simulator.add_default_observer_factory(instrument)
        try:
            runpy.run_path(str(script), run_name="__main__")
        finally:
            Simulator.remove_default_observer_factory(instrument)
        if not observed:
            raise SystemExit(
                f"repro lint --live: {target} built no simulator")
        for simulator, tracker in observed:
            result.extend(lint_simulation(simulator, tracker,
                                          rules=args.select or None,
                                          skipped=skipped))
    for name in skipped:
        print(f"  (skipped {name})", file=sys.stderr)
    return result


def _cmd_lint(args) -> int:
    from .analysis import (lint_paths, render_json, render_stats,
                           render_text, rule_catalog)
    from .errors import ReproError

    if args.rules_catalog:
        print(rule_catalog())
        return 0
    if not args.targets:
        raise SystemExit("repro lint: give at least one file or directory "
                         "to check (or --rules for the catalog)")
    if args.effects:
        from .analysis import effects_report

        try:
            report = effects_report(args.targets)
        except ReproError as exc:
            raise SystemExit(f"repro lint --effects: {exc}")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
            print(f"wrote effects report to {args.output}")
        else:
            print(report)
        return 0
    if args.live:
        result = _lint_live(args)
    else:
        try:
            result = lint_paths(args.targets, rules=args.select or None)
        except ReproError as exc:
            raise SystemExit(f"repro lint: {exc}")
    report = (render_json(result) if args.format == "json"
              else render_text(result))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.format} report to {args.output}")
        if args.format == "json":
            print(render_text(result))
    else:
        print(report)
    if args.stats:
        print(render_stats(result))
    return 0 if result.clean else 1


_TRACE_EXTENSIONS = {"perfetto": "json", "vcd": "vcd",
                     "flame": "folded", "jsonl": "jsonl"}


def _numbered(path: str, index: int) -> str:
    """Scripts may build several simulators: 1st keeps ``path``, rest .N."""
    return path if index == 0 else f"{path}.{index}"


def _run_traced_workload(name: str) -> None:
    """Run one registry workload as a mapped, strict-timed simulation.

    A minimal harness around the kernel: an environment driver feeds a
    stimulus token; the kernel process consumes it and runs the
    annotated entry on a CPU resource — so the trace carries real node
    events and the profile carries real per-segment cycle figures.
    """
    from . import Simulator
    from .annotate.types import unwrap
    from .core import PerformanceLibrary
    from .platform import EnvironmentResource, Mapping, make_cpu
    from .workloads import wrap_args

    functions, make_args = _resolve_workload(name)
    entry = functions[0]
    wrapped = wrap_args(make_args())

    simulator = Simulator()
    stimulus = simulator.fifo("stimulus", capacity=1)
    top = simulator.module("top")
    outcome: dict = {}

    def kernel():
        yield from stimulus.read()
        outcome["result"] = unwrap(entry(*wrapped))

    def driver():
        yield from stimulus.write(1)

    kernel_proc = top.add_process(kernel, name=name)
    driver_proc = top.add_process(driver, name="driver")

    mapping = Mapping()
    mapping.assign(kernel_proc, make_cpu("cpu0"))
    mapping.assign(driver_proc, EnvironmentResource("env"))
    PerformanceLibrary(mapping).attach(simulator)
    final = simulator.run()
    print(f"workload {name!r}: result = {outcome.get('result')}, "
          f"simulated end = {final}")


def _cmd_trace(args) -> int:
    import pathlib

    from .observe import (
        CLOCK_BOTH,
        CLOCK_DELTA,
        CLOCK_TIME,
        JsonlSink,
        ObserveError,
        ObserveSession,
        export_flamegraph,
        export_perfetto,
        export_vcd,
        validate_trace_events,
    )

    out = args.output or f"trace.{_TRACE_EXTENSIONS[args.format]}"
    clock = {"time": CLOCK_TIME, "delta": CLOCK_DELTA,
             "both": CLOCK_BOTH}[args.clock]
    # Flame output is built from the profile, not the raw records.
    profile = args.profile or args.format == "flame"

    sink_factory = None
    if args.format == "jsonl":
        def sink_factory(index):
            return JsonlSink(_numbered(out, index))

    session = ObserveSession(sink_factory=sink_factory, profile=profile)
    target = pathlib.Path(args.target)
    try:
        with session:
            if target.suffix == ".py":
                session.run_script(target)
            else:
                _run_traced_workload(args.target)
    except ObserveError as exc:
        raise SystemExit(f"repro trace: {exc}")
    if not session.observations:
        raise SystemExit(f"repro trace: {args.target} built no simulator")

    for observed in session.observations:
        path = _numbered(out, observed.index)
        if args.format == "jsonl":
            print(f"wrote {observed.recorder.sink.count} records to {path}")
        elif args.format == "perfetto":
            payload = export_perfetto(observed.records(), path, clock=clock)
            problems = validate_trace_events(payload)
            if problems:
                for problem in problems:
                    print(f"  invalid: {problem}", file=sys.stderr)
                raise SystemExit(f"repro trace: {path} failed validation")
            print(f"wrote {len(payload['traceEvents'])} trace events to "
                  f"{path} (load at https://ui.perfetto.dev)")
        elif args.format == "vcd":
            text = export_vcd(observed.records(), path)
            print(f"wrote {len(text.splitlines())} VCD lines to {path} "
                  f"(view with GTKWave)")
        else:
            text = export_flamegraph(observed.profiler, path)
            print(f"wrote {len(text.splitlines())} collapsed stacks to "
                  f"{path} (feed to flamegraph.pl / speedscope)")
        if args.profile and observed.profiler is not None:
            print(observed.profiler.report())
    return 0


def _cmd_bench(args) -> int:
    from .bench import render_table, run_bench, write_payload

    workloads = None
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    costs = None
    if args.weights:
        from .annotate import OperationCosts
        costs = OperationCosts.load(args.weights)
        print(f"using cost table {costs.name!r} from {args.weights}")
    payload = run_bench(
        workloads=workloads,
        costs=costs,
        repeats=args.repeats,
        frame_count=args.frames,
        fastforward=args.fastforward,
        check_fastforward=args.check_fastforward,
        include_iss=not args.no_iss,
        compile=args.compile or args.check_compile,
        check_compile=args.check_compile,
    )
    print(render_table(payload))
    if args.json:
        write_payload(payload, args.json)
        print(f"\nwrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="System-Level Performance Analysis in SystemC — "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(fn=_cmd_info)
    sub.add_parser("opcodes",
                   help="OR-lite instruction reference").set_defaults(fn=_cmd_opcodes)

    calibrate_parser = sub.add_parser("calibrate",
                                      help="fit operator weights vs the ISS")
    calibrate_parser.add_argument("--scale", type=int, default=64,
                                  help="microbenchmark loop scale")
    calibrate_parser.add_argument("--output", "-o", default="",
                                  help="save the fitted table as JSON")
    calibrate_parser.set_defaults(fn=_cmd_calibrate)

    disasm_parser = sub.add_parser("disasm",
                                   help="compile a workload, print assembly")
    disasm_parser.add_argument("workload")
    disasm_parser.set_defaults(fn=_cmd_disasm)

    estimate_parser = sub.add_parser(
        "estimate", help="annotated estimate vs ISS measurement")
    estimate_parser.add_argument("workload")
    estimate_parser.add_argument("--scale", type=int, default=64)
    estimate_parser.add_argument("--weights", default="",
                                 help="load a saved cost-table JSON instead "
                                      "of calibrating")
    estimate_parser.set_defaults(fn=_cmd_estimate)

    bench_parser = sub.add_parser(
        "bench", help="measure the library's own overhead "
                      "(overload vs untimed, gain vs ISS)")
    bench_parser.add_argument("--json", default="",
                              help="write the machine-readable payload "
                                   "(e.g. BENCH_overhead.json)")
    bench_parser.add_argument("--workloads", default="",
                              help="comma-separated subset (registry names "
                                   "and/or 'vocoder'; default: everything)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="best-of-N host-time measurement")
    bench_parser.add_argument("--frames", type=int, default=4,
                              help="vocoder pipeline frame count")
    bench_parser.add_argument("--fastforward", action="store_true",
                              help="enable the segment fast-forward engine "
                                   "on the vocoder pipeline")
    bench_parser.add_argument("--check-fastforward", action="store_true",
                              help="differential mode: charge dynamically "
                                   "AND assert every eligible segment "
                                   "re-execution matches its recorded "
                                   "bundle byte-for-byte")
    bench_parser.add_argument("--compile", action="store_true",
                              help="serve kernels through the bytecode "
                                   "compile tier (folded block charges) "
                                   "instead of interpreted annotation")
    bench_parser.add_argument("--check-compile", action="store_true",
                              help="differential mode: run interpreted AND "
                                   "compiled, asserting identical results, "
                                   "write-backs, cycles and op counts")
    bench_parser.add_argument("--no-iss", action="store_true",
                              help="skip the ISS reference runs")
    bench_parser.add_argument("--weights", default="",
                              help="load a saved cost-table JSON instead of "
                                   "the built-in OpenRISC table")
    bench_parser.set_defaults(fn=_cmd_bench)

    graph_parser = sub.add_parser(
        "graph", help="dump the Fig. 2 process graph as GraphViz")
    graph_parser.add_argument("--values", default="0,1,2,3,4,5",
                              help="comma-separated stimulus values the "
                                   "environment writes (default 0..5)")
    graph_parser.add_argument("--check-coverage", action="store_true",
                              help="compare against the static node scan; "
                                   "exit 1 and print MISSED lines when a "
                                   "static site was never visited")
    graph_parser.set_defaults(fn=_cmd_graph)

    lint_parser = sub.add_parser(
        "lint", help="model lint: statically check the §2 methodology")
    lint_parser.add_argument("targets", nargs="*",
                             help="files or directories to check")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text", help="report format")
    lint_parser.add_argument("--output", "-o", default="",
                             help="write the report to a file")
    lint_parser.add_argument("--select", action="append", default=[],
                             metavar="CODE",
                             help="only run this rule code (repeatable)")
    lint_parser.add_argument("--rules", dest="rules_catalog",
                             action="store_true",
                             help="print the rule catalog and exit")
    lint_parser.add_argument("--live", action="store_true",
                             help="execute each target script instrumented "
                                  "and lint the simulated processes "
                                  "(adds the RPR401/402 graph-diff rules)")
    lint_parser.add_argument("--stats", action="store_true",
                             help="append per-rule counts and the "
                                  "suppressed-diagnostic audit trail")
    lint_parser.add_argument("--effects", action="store_true",
                             help="dump the interprocedural effect "
                                  "summaries as JSON instead of linting "
                                  "(honors -o)")
    lint_parser.set_defaults(fn=_cmd_lint)

    batch_parser = sub.add_parser(
        "batch",
        help="run a design-space sweep on the parallel campaign runner")
    batch_parser.add_argument("--sweep", choices=("fig4", "workloads"),
                              default="fig4",
                              help="which prebuilt sweep to run")
    batch_parser.add_argument("--workers", type=int, default=None,
                              help="worker processes (default: up to 4)")
    batch_parser.add_argument("--serial", action="store_true",
                              help="run in-process, no worker pool")
    batch_parser.add_argument("--timeout", type=float, default=None,
                              help="per-run timeout in seconds")
    batch_parser.add_argument("--retries", type=int, default=1,
                              help="retry attempts per failed run")
    batch_parser.add_argument("--cache-dir", default=".repro-cache",
                              help="result cache directory")
    batch_parser.add_argument("--no-cache", action="store_true",
                              help="disable the result cache")
    batch_parser.add_argument("--clear-cache", action="store_true",
                              help="empty the cache before running")
    batch_parser.add_argument("--start-method",
                              choices=("fork", "spawn"), default="",
                              help="worker start method (default: platform)")
    batch_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-run progress lines")
    batch_parser.add_argument("--max-units", type=int, default=3,
                              help="fig4: max units per FU class")
    batch_parser.add_argument("--taps", type=int, default=12,
                              help="fig4: FIR segment taps")
    batch_parser.add_argument("--samples", type=int, default=256,
                              help="fig4: samples for the system evaluation")
    batch_parser.add_argument("--schedule-only", action="store_true",
                              help="fig4: skip the system-level evaluation")
    batch_parser.add_argument("--workload", action="append", default=[],
                              help="workloads sweep: restrict to this "
                                   "workload (repeatable)")
    batch_parser.add_argument("--trace-dir", default="",
                              help="write a streaming JSONL trace artifact "
                                   "per executed run, keyed by its cache "
                                   "hash, into this directory")
    batch_parser.set_defaults(fn=_cmd_batch)

    dse_parser = sub.add_parser(
        "dse",
        help="seeded evolutionary design-space exploration: search a "
             "genome space through the cached campaign runner, print "
             "the ranked Pareto front")
    dse_parser.add_argument("--space", default="fig4",
                            help="builtin space name (fig4) or a JSON "
                                 "space-spec file (default: fig4)")
    dse_parser.add_argument("--seed", type=int, default=0,
                            help="search RNG seed; the same seed "
                                 "reproduces the same front byte-for-byte")
    dse_parser.add_argument("--budget", type=int, default=None,
                            help="max unique design points to evaluate "
                                 "(re-evaluations are cache hits, free)")
    dse_parser.add_argument("--population", type=int, default=8,
                            help="individuals per generation")
    dse_parser.add_argument("--generations", type=int, default=6,
                            help="max generations")
    dse_parser.add_argument("--tournament", type=int, default=2,
                            help="tournament selection size")
    dse_parser.add_argument("--elites", type=int, default=1,
                            help="top individuals copied unchanged")
    dse_parser.add_argument("--crossover-rate", type=float, default=0.9)
    dse_parser.add_argument("--mutation-rate", type=float, default=None,
                            help="per-gene mutation probability "
                                 "(default: 1/genes)")
    dse_parser.add_argument("--objectives", default="time,power,cost",
                            help="comma-separated objectives to minimize: "
                                 "builtin names (time, power, cost, "
                                 "energy, latency, area) or "
                                 "name=payload_key")
    dse_parser.add_argument("--weights", default="",
                            help="comma-separated MCDM weights, one per "
                                 "objective (default: equal)")
    dse_parser.add_argument("--output", "-o", default="",
                            help="write the JSON search report here")
    dse_parser.add_argument("--max-units", type=int, default=4,
                            help="fig4: max units per FU class")
    dse_parser.add_argument("--taps", type=int, default=12,
                            help="fig4: FIR segment taps")
    dse_parser.add_argument("--samples", type=int, default=256,
                            help="fig4: samples for the system evaluation")
    dse_parser.add_argument("--evaluate-system", action="store_true",
                            help="fig4: also simulate the full pipeline "
                                 "at each point")
    dse_parser.add_argument("--workers", type=int, default=None,
                            help="worker processes (default: in-process)")
    dse_parser.add_argument("--serial", action="store_true",
                            help="force in-process evaluation")
    dse_parser.add_argument("--timeout", type=float, default=None,
                            help="per-run timeout in seconds")
    dse_parser.add_argument("--retries", type=int, default=1,
                            help="retry attempts per failed run")
    dse_parser.add_argument("--cache-dir", default=".repro-cache",
                            help="result cache directory")
    dse_parser.add_argument("--no-cache", action="store_true",
                            help="disable the result cache")
    dse_parser.add_argument("--start-method", choices=("fork", "spawn"),
                            default="",
                            help="worker start method (default: platform)")
    dse_parser.add_argument("--quiet", action="store_true",
                            help="suppress per-generation progress lines")
    dse_parser.add_argument("--verbose", action="store_true",
                            help="also print per-run campaign progress")
    dse_parser.add_argument("--trace-dir", default="",
                            help="write a JSONL trace artifact per "
                                 "executed run into this directory")
    dse_parser.set_defaults(fn=_cmd_dse)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect, verify or garbage-collect the batch result cache "
             "and its per-run trace artifacts")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)

    def _cache_common(p):
        p.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory")
        p.add_argument("--trace-dir", default="",
                       help="per-run trace artifact directory to sweep "
                            "in lockstep with the cache")
        p.add_argument("--rescan", action="store_true",
                       help="walk the cache directory instead of reading "
                            "the manifest index; rebuilds the manifest "
                            "and (for verify) reports drift")
        p.set_defaults(fn=_cmd_cache)

    _cache_common(cache_sub.add_parser(
        "stats", help="entry/artifact counts, sizes and ages"))
    verify_parser = cache_sub.add_parser(
        "verify",
        help="integrity-check every entry and every recorded trace "
             "pointer; exit 1 on any invalid entry, dangling pointer, "
             "orphan or partial artifact; with --rescan, exit 3 when "
             "integrity is fine but the manifest index had drifted")
    verify_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                               help="read entries through a thread pool of "
                                    "N workers (default 1: serial; the "
                                    "report is identical either way)")
    _cache_common(verify_parser)
    gc_parser = cache_sub.add_parser(
        "gc", help="apply a retention policy to cache and artifacts")
    gc_parser.add_argument("--older-than", default=None, metavar="AGE",
                           help="drop entries older than AGE "
                                "(seconds, or e.g. 30m / 12h / 7d)")
    gc_parser.add_argument("--keep", type=int, default=None, metavar="N",
                           help="keep only the newest N valid entries")
    gc_parser.add_argument("--prune-only", action="store_true",
                           help="no age/count policy: drop only invalid "
                                "entries, orphaned and partial artifacts")
    gc_parser.add_argument("--dry-run", action="store_true",
                           help="report what would be removed, remove "
                                "nothing")
    _cache_common(gc_parser)

    inject_parser = sub.add_parser(
        "inject",
        help="model-level fault injection: generate a deterministic "
             "faultload, sweep it through the cached campaign pool, "
             "print the dependability report (failure rate, MTTF, "
             "detection latency)")
    inject_parser.add_argument("--workload", default="fir",
                               help="registry workload the scenario "
                                    "pipelines (default: fir)")
    inject_parser.add_argument("--frames", type=int, default=3,
                               help="stimulus frames through the pipeline")
    inject_parser.add_argument("--stim-seed", type=int, default=1,
                               help="stimulus-stream LCG seed")
    inject_parser.add_argument("--faults", type=int, default=20, metavar="N",
                               help="injections in the faultload "
                                    "(one campaign run each)")
    inject_parser.add_argument("--seed", type=int, default=0,
                               help="faultload seed; the same (spec, seed) "
                                    "reproduces the same schedule and "
                                    "report byte-for-byte")
    inject_parser.add_argument("--kinds", default="",
                               help="comma-separated fault kinds to draw "
                                    "from (default: all model-level kinds)")
    inject_parser.add_argument("--window-ns", type=int, default=None,
                               help="injection window width (default: a "
                                    "quarter of the golden horizon)")
    inject_parser.add_argument("--no-fastforward", action="store_true",
                               help="disable the segment fast-forward "
                                    "engine in the scenario")
    inject_parser.add_argument("--output", "-o", default="",
                               help="write the JSON dependability report "
                                    "here")
    inject_parser.add_argument("--workers", type=int, default=None,
                               help="worker processes (default: in-process)")
    inject_parser.add_argument("--serial", action="store_true",
                               help="force in-process evaluation")
    inject_parser.add_argument("--timeout", type=float, default=None,
                               help="per-run timeout in seconds")
    inject_parser.add_argument("--retries", type=int, default=1,
                               help="retry attempts per failed run")
    inject_parser.add_argument("--cache-dir", default=".repro-cache",
                               help="result cache directory")
    inject_parser.add_argument("--no-cache", action="store_true",
                               help="disable the result cache")
    inject_parser.add_argument("--start-method", choices=("fork", "spawn"),
                               default="",
                               help="worker start method (default: platform)")
    inject_parser.add_argument("--quiet", action="store_true",
                               help="suppress per-run progress lines")
    inject_parser.set_defaults(fn=_cmd_inject)

    trace_parser = sub.add_parser(
        "trace",
        help="run a script or workload instrumented; export its trace")
    trace_parser.add_argument("target",
                              help="a Python script path (executed as "
                                   "__main__) or a workload registry name")
    trace_parser.add_argument("--format", choices=("perfetto", "vcd",
                                                   "flame", "jsonl"),
                              default="perfetto",
                              help="export format (default: perfetto)")
    trace_parser.add_argument("--output", "-o", default="",
                              help="output path (default: trace.<ext>)")
    trace_parser.add_argument("--clock", choices=("time", "delta", "both"),
                              default="both",
                              help="perfetto: which clock tracks to emit")
    trace_parser.add_argument("--profile", action="store_true",
                              help="also print the per-segment profile "
                                   "(cycles, calls, host time)")
    trace_parser.set_defaults(fn=_cmd_trace)
    return parser


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
