"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the reproduction without writing a
script:

* ``info``       — package inventory and versions,
* ``opcodes``    — the OR-lite instruction reference,
* ``calibrate``  — fit operator weights against the ISS and print them,
* ``disasm``     — compile a named workload and print its assembly,
* ``estimate``   — annotated estimate vs ISS measurement of a workload,
* ``graph``      — run a workload's paper-style process and dump its
  process graph as GraphViz.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence, Tuple

from . import __version__

#: name -> (functions tuple (entry first), argument builder)
def _workload_registry() -> Dict[str, Tuple[tuple, Callable[[], tuple]]]:
    from .workloads.array_ops import array_ops, make_array_inputs
    from .workloads.compressor import compress, make_compress_inputs
    from .workloads.euler import euler_oscillator
    from .workloads.extended import (
        crc32_bitwise, dct_2d, make_crc_inputs, make_dct_inputs,
        make_matmul_inputs, matmul,
    )
    from .workloads.fibonacci import (
        fib_benchmark, fib_iterative, fib_recursive,
    )
    from .workloads.fir import fir_filter, make_fir_inputs
    from .workloads.sorting import (
        bubble_sort, make_sort_inputs, quick_partition, quick_sort,
        quick_sort_checked,
    )

    return {
        "fir": ((fir_filter,), lambda: make_fir_inputs(256, 16)),
        "compress": ((compress,), lambda: make_compress_inputs(1024)),
        "quicksort": ((quick_sort_checked, quick_sort, quick_partition),
                      lambda: (make_sort_inputs(256)[0], 256)),
        "bubble": ((bubble_sort,), lambda: make_sort_inputs(96, seed=3)),
        "fibonacci": ((fib_benchmark, fib_recursive, fib_iterative),
                      lambda: (17,)),
        "array": ((array_ops,), lambda: make_array_inputs(512)),
        "euler": ((euler_oscillator,), lambda: (64, 4)),
        "dct": ((dct_2d,), make_dct_inputs),
        "crc32": ((crc32_bitwise,), lambda: make_crc_inputs(512)),
        "matmul": ((matmul,), lambda: make_matmul_inputs(12)),
    }


def _cmd_info(_args) -> int:
    import networkx
    import numpy
    import scipy

    print(f"repro {__version__} — reproduction of 'System-Level "
          f"Performance Analysis in SystemC' (DATE 2004)")
    print(f"  python {sys.version.split()[0]}, numpy {numpy.__version__}, "
          f"scipy {scipy.__version__}, networkx {networkx.__version__}")
    from .iss.isa import OPCODES
    print(f"  OR-lite ISA: {len(OPCODES)} opcodes")
    print(f"  workloads: {', '.join(sorted(_workload_registry()))}")
    print("  benches:   pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_opcodes(_args) -> int:
    from .iss.isa import mnemonic_reference
    print(mnemonic_reference())
    return 0


def _cmd_calibrate(args) -> int:
    from .calibration import calibrate, default_microbenchmarks
    from .platform import OPENRISC_SW_COSTS

    report = calibrate(default_microbenchmarks(scale=args.scale),
                       OPENRISC_SW_COSTS)
    print(report.summary())
    if args.output:
        report.costs.save(args.output)
        print(f"saved cost table to {args.output}")
    return 0


def _resolve_workload(name: str):
    registry = _workload_registry()
    try:
        return registry[name]
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {', '.join(sorted(registry))}"
        )


def _cmd_disasm(args) -> int:
    from .iss.runtime import prepare_program

    functions, _make_args = _resolve_workload(args.workload)
    program = prepare_program(list(functions), entry=functions[0])
    print(program.listing())
    print(f"; {len(program)} instructions")
    return 0


def _cmd_estimate(args) -> int:
    from .calibration import calibrate, default_microbenchmarks
    from .iss import run_compiled
    from .platform import CPU_CLOCK_MHZ, OPENRISC_SW_COSTS
    from .workloads.common import run_annotated

    functions, make_args = _resolve_workload(args.workload)
    if args.weights:
        from .annotate import OperationCosts
        costs = OperationCosts.load(args.weights)
        print(f"using cost table {costs.name!r} from {args.weights}")
    else:
        print(f"calibrating (scale {args.scale}) ...")
        costs = calibrate(default_microbenchmarks(scale=args.scale),
                          OPENRISC_SW_COSTS).costs
    result, estimated, _t_min = run_annotated(functions[0], make_args(), costs)
    measured = run_compiled(list(functions), args=make_args(),
                            entry=functions[0])
    error = 100.0 * (estimated - measured.cycles) / measured.cycles
    print(f"workload {args.workload!r}: result = {result}")
    print(f"  library estimate : {estimated:12.0f} cycles "
          f"({estimated / CPU_CLOCK_MHZ:.2f} us @ {CPU_CLOCK_MHZ:.0f} MHz)")
    print(f"  ISS measurement  : {measured.cycles:12d} cycles "
          f"({measured.instructions} instructions, CPI {measured.cpi:.2f})")
    print(f"  estimation error : {error:+.2f}%")
    return 0


def _cmd_graph(_args) -> int:
    from . import SimTime, Simulator, wait
    from .segments import SegmentTracker

    simulator = Simulator()
    tracker = SegmentTracker()
    simulator.add_observer(tracker)
    ch1 = simulator.fifo("ch1")
    ch2 = simulator.fifo("ch2")
    top = simulator.module("top")

    def process():
        for i in range(6):
            value = yield from ch1.read()
            if value % 2 == 0:
                yield from ch2.write(value)
            yield wait(SimTime.ns(10))
            yield from ch2.write(0)

    def environment():
        for i in range(6):
            yield from ch1.write(i)
            if i % 2 == 0:
                yield from ch2.read()
            yield from ch2.read()

    top.add_process(process)
    top.add_process(environment)
    simulator.run()
    print(tracker.graph_of("top.process").to_dot())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="System-Level Performance Analysis in SystemC — "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package inventory").set_defaults(fn=_cmd_info)
    sub.add_parser("opcodes",
                   help="OR-lite instruction reference").set_defaults(fn=_cmd_opcodes)

    calibrate_parser = sub.add_parser("calibrate",
                                      help="fit operator weights vs the ISS")
    calibrate_parser.add_argument("--scale", type=int, default=64,
                                  help="microbenchmark loop scale")
    calibrate_parser.add_argument("--output", "-o", default="",
                                  help="save the fitted table as JSON")
    calibrate_parser.set_defaults(fn=_cmd_calibrate)

    disasm_parser = sub.add_parser("disasm",
                                   help="compile a workload, print assembly")
    disasm_parser.add_argument("workload")
    disasm_parser.set_defaults(fn=_cmd_disasm)

    estimate_parser = sub.add_parser(
        "estimate", help="annotated estimate vs ISS measurement")
    estimate_parser.add_argument("workload")
    estimate_parser.add_argument("--scale", type=int, default=64)
    estimate_parser.add_argument("--weights", default="",
                                 help="load a saved cost-table JSON instead "
                                      "of calibrating")
    estimate_parser.set_defaults(fn=_cmd_estimate)

    sub.add_parser("graph",
                   help="dump the Fig. 2 process graph as GraphViz"
                   ).set_defaults(fn=_cmd_graph)
    return parser


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
