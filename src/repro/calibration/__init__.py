"""Operator-weight characterization against the reference ISS."""

from .microbench import MicroBenchmark, default_microbenchmarks
from .weights import (
    CalibrationReport,
    calibrate,
    measure_iss_cycles,
    measure_operation_counts,
)

__all__ = [
    "MicroBenchmark", "default_microbenchmarks",
    "CalibrationReport", "calibrate",
    "measure_iss_cycles", "measure_operation_counts",
]
