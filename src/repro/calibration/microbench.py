"""Calibration microbenchmarks.

The paper obtains the library weights "analyzing assembler code from
several functions specifically developed for this purpose".  These are
those functions: small kernels, each stressing a different operation
mix, written in the compiler subset so that one definition yields both
the annotated operation counts and the ISS reference cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence, Tuple

from ..annotate.functions import aint, annotated_function, arange


@dataclasses.dataclass(frozen=True)
class MicroBenchmark:
    """One calibration kernel.

    ``functions`` lists everything that must be compiled together (the
    entry point first); ``make_args`` builds a fresh argument tuple per
    run (arrays may be mutated in place).
    """

    name: str
    functions: Tuple[Callable, ...]
    make_args: Callable[[], tuple]


# --- the kernels -----------------------------------------------------------

def mb_add_chain(n):
    s = 0
    for i in arange(n):
        s = s + i
        s = s + 3
        s = s - 1
    return s


def mb_mul_chain(n):
    s = 1
    for i in arange(1, n):
        s = s + i * i
        s = s + i * 7
    return s


def mb_div_chain(n):
    s = 0
    for i in arange(1, n):
        s = s + 10000 // i
        s = s + 10007 % i
    return s


def mb_memory(a, n):
    for i in arange(n):
        a[i] = a[i] + 1
    s = 0
    for i in arange(n):
        s = s + a[i]
    return s


def mb_compare(a, n):
    c = 0
    for i in arange(n):
        if a[i] > 50:
            c = c + 1
        else:
            c = c - 1
        if a[i] == 13:
            c = c + 2
    return c


def mb_bitops(n):
    s = 0
    for i in arange(n):
        s = s + ((i << 3) ^ (i >> 1))
        s = s + (i & 7)
        s = s | 1
    return s


@annotated_function
def _mb_helper(x):
    return x + 1


def mb_calls(n):
    s = 0
    for i in arange(n):
        s = _mb_helper(s)
    return s


def mb_mixed(a, n):
    s = 0
    for i in arange(n):
        v = a[i]
        if v % 2 == 0:
            s = s + v * 3
        else:
            s = s - (v >> 1)
        a[i] = s
    return s


def mb_nested_loops(n):
    s = 0
    for i in arange(n):
        for j in arange(4):
            s = s + i * j
    return s


def mb_while_scan(a, n):
    i = aint(0)
    s = aint(0)
    while i < n:
        s = s + a[i]
        i = i + 1
    return s


def mb_while_find(a, n):
    found = aint(0)
    i = aint(0)
    while i < n:
        j = aint(0)
        while a[j] != a[i]:
            j = j + 1
        found = found + j
        i = i + 1
    return found


def mb_while_count(n):
    i = aint(0)
    s = aint(0)
    while i < n:
        j = aint(0)
        while j < 8:
            s = s + j
            j = j + 1
        i = i + 1
    return s


@annotated_function
def _mb_helper3(x, y, z):
    return x * y + z


def mb_calls3(n):
    s = aint(0)
    for i in arange(n):
        s = _mb_helper3(s, 3, i)
    return s


@annotated_function
def _mb_fib(n):
    if n < 2:
        return n
    return _mb_fib(n - 1) + _mb_fib(n - 2)


def mb_recursion(n):
    return _mb_fib(n)


@annotated_function
def _mb_rsum(a, lo, hi):
    if hi - lo < 4:
        s = aint(0)
        i = lo
        while i < hi:
            s = s + a[i]
            i = i + 1
        return s
    mid = (lo + hi) >> 1
    return _mb_rsum(a, lo, mid) + _mb_rsum(a, mid, hi)


def mb_divide_conquer(a, n):
    return _mb_rsum(a, 0, n)


def mb_copy(a, b, n):
    for i in arange(n):
        b[i] = a[i]
    for i in arange(n):
        b[i] = b[i] + a[n - 1 - i]
    return b[0]


def mb_dot_offset(a, b, n, k):
    s = aint(0)
    for i in arange(n - k):
        s = s + a[i] * b[i + k]
    t = aint(0)
    for i in arange(n):
        t = t + (a[i] * 3 + b[i])
    return s + t


@annotated_function
def _mb_ppart(a, lo, hi):
    pivot = a[hi]
    i = lo - 1
    for j in arange(lo, hi):
        if a[j] <= pivot:
            i = i + 1
            t = a[i]
            a[i] = a[j]
            a[j] = t
    t = a[i + 1]
    a[i + 1] = a[hi]
    a[hi] = t
    return i + 1


@annotated_function
def _mb_psort(a, lo, hi):
    if lo < hi:
        p = _mb_ppart(a, lo, hi)
        _mb_psort(a, lo, p - 1)
        _mb_psort(a, p + 1, hi)
    return 0


def mb_partition_sort(a, n):
    _mb_psort(a, 0, n - 1)
    return a[0] + a[n - 1]


def mb_bitserial(a, n):
    acc = aint(0)
    for i in arange(n):
        v = a[i]
        for b in arange(8):
            if v & 1:
                acc = (acc >> 1) ^ 305419896
            else:
                acc = acc >> 1
            v = v >> 1
    return acc


def mb_swap_sort_pass(a, n):
    swaps = aint(0)
    for j in arange(n - 1):
        if a[j] > a[j + 1]:
            t = a[j]
            a[j] = a[j + 1]
            a[j + 1] = t
            swaps = swaps + 1
    return swaps


def _ramp(n: int) -> list:
    return [(i * 37 + 11) % 101 for i in range(n)]


def default_microbenchmarks(scale: int = 64) -> Sequence[MicroBenchmark]:
    """The standard calibration suite at the given loop scale."""
    return [
        MicroBenchmark("add_chain", (mb_add_chain,), lambda: (scale,)),
        MicroBenchmark("mul_chain", (mb_mul_chain,), lambda: (scale,)),
        MicroBenchmark("div_chain", (mb_div_chain,), lambda: (scale,)),
        MicroBenchmark("memory", (mb_memory,), lambda: (_ramp(scale), scale)),
        MicroBenchmark("compare", (mb_compare,), lambda: (_ramp(scale), scale)),
        MicroBenchmark("bitops", (mb_bitops,), lambda: (scale,)),
        MicroBenchmark("calls", (mb_calls, _mb_helper), lambda: (scale,)),
        MicroBenchmark("calls3", (mb_calls3, _mb_helper3), lambda: (scale,)),
        MicroBenchmark("recursion", (mb_recursion, _mb_fib), lambda: (13,)),
        MicroBenchmark("mixed", (mb_mixed,), lambda: (_ramp(scale), scale)),
        MicroBenchmark("nested", (mb_nested_loops,), lambda: (scale // 2,)),
        MicroBenchmark("while_scan", (mb_while_scan,), lambda: (_ramp(scale), scale)),
        MicroBenchmark("while_find", (mb_while_find,),
                       lambda: (_ramp(scale // 2), scale // 2)),
        MicroBenchmark("while_count", (mb_while_count,), lambda: (scale,)),
        MicroBenchmark("copy", (mb_copy,),
                       lambda: (_ramp(scale), [0] * scale, scale)),
        MicroBenchmark("divide_conquer", (mb_divide_conquer, _mb_rsum),
                       lambda: (_ramp(scale * 2), scale * 2)),
        MicroBenchmark("swap_pass", (mb_swap_sort_pass,),
                       lambda: (_ramp(scale)[::-1], scale)),
        MicroBenchmark("bitserial", (mb_bitserial,),
                       lambda: (_ramp(scale // 2), scale // 2)),
        MicroBenchmark("dot", (mb_dot_offset,),
                       lambda: (_ramp(scale + scale // 2),
                                _ramp(scale + scale // 2),
                                scale + scale // 2, 5)),
        MicroBenchmark("partition_sort", (mb_partition_sort, _mb_psort, _mb_ppart),
                       lambda: ([(i * 53 + 7) % 97 for i in range(24)], 24)),
    ]
