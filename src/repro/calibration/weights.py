"""Operator-weight fitting against the reference ISS.

Reproduces the paper's characterization flow: run purpose-built
functions on the target (here: compiled onto OR-lite), count the
source-level operations each executes (the annotation layer counts them
for free), and solve for per-operation cycle weights.  We use
non-negative least squares — negative "execution times" would be
physically meaningless.

The fit also doubles as a single-source consistency check: the
annotated run and the compiled run of every microbenchmark must return
the same value, or the calibration aborts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from ..annotate.context import CostContext, MODE_SW, active
from ..annotate.costs import OperationCosts, uniform_costs
from ..annotate.types import AArray, AInt, unwrap
from ..errors import CalibrationError
from ..iss.machine import ICache
from ..iss.runtime import run_compiled
from .microbench import MicroBenchmark


#: Default fitting classes: operations that compile to the same machine
#: idiom share one weight.  This mirrors the paper's assembler-level
#: analysis (a `<=` costs what a `<` costs) and keeps the least-squares
#: system well-conditioned — fitting 28 individual operations from a
#: dozen microbenchmarks would be hopelessly collinear.
DEFAULT_FIT_GROUPS: Dict[str, str] = {
    "add": "addsub", "sub": "addsub", "neg": "addsub",
    "mul": "mul",
    "div": "divmod", "mod": "divmod",
    "shl": "logic", "shr": "logic", "and": "logic", "or": "logic",
    "xor": "logic", "inv": "logic",
    "lt": "cmp", "le": "cmp", "gt": "cmp", "ge": "cmp",
    "eq": "cmp", "ne": "cmp",
    "abs": "abs",
    "load": "load", "store": "store",
    "call": "call", "branch": "branch", "assign": "assign",
}


def _wrap_args(args: tuple) -> tuple:
    wrapped = []
    for arg in args:
        if isinstance(arg, list):
            wrapped.append(AArray(arg))
        elif isinstance(arg, int):
            wrapped.append(AInt(arg))
        else:
            raise CalibrationError(
                f"microbenchmark arguments must be ints or lists, got "
                f"{type(arg).__name__}"
            )
    return tuple(wrapped)


def measure_operation_counts(bench: MicroBenchmark) -> Tuple[Dict[str, int], int]:
    """Run ``bench`` annotated and return (op_counts, result value)."""
    context = CostContext(uniform_costs(), MODE_SW)
    args = _wrap_args(bench.make_args())
    with active(context):
        result = bench.functions[0](*args)
    return context.snapshot_op_counts(), int(unwrap(result))


def measure_iss_cycles(bench: MicroBenchmark,
                       icache: Optional[ICache] = None) -> Tuple[int, int]:
    """Run ``bench`` on the reference machine; return (cycles, result)."""
    outcome = run_compiled(list(bench.functions), args=bench.make_args(),
                           entry=bench.functions[0], icache=icache)
    return outcome.cycles, outcome.return_value


@dataclasses.dataclass
class CalibrationReport:
    """Fitted weights plus goodness-of-fit diagnostics."""

    costs: OperationCosts
    operations: List[str]
    weights: Dict[str, float]
    bench_names: List[str]
    measured_cycles: List[int]
    predicted_cycles: List[float]

    @property
    def relative_errors(self) -> List[float]:
        return [abs(p - m) / m if m else 0.0
                for p, m in zip(self.predicted_cycles, self.measured_cycles)]

    @property
    def max_relative_error(self) -> float:
        return max(self.relative_errors, default=0.0)

    def summary(self) -> str:
        lines = ["calibrated operation weights (cycles):"]
        for op in self.operations:
            lines.append(f"  {op:<8} {self.weights[op]:8.3f}")
        lines.append("fit quality per microbenchmark:")
        for name, measured, predicted, error in zip(
                self.bench_names, self.measured_cycles,
                self.predicted_cycles, self.relative_errors):
            lines.append(
                f"  {name:<12} iss={measured:<8} fit={predicted:10.1f} "
                f"err={100 * error:5.2f}%"
            )
        return "\n".join(lines)


def calibrate(benches: Sequence[MicroBenchmark],
              base: OperationCosts,
              icache: Optional[ICache] = None,
              regularization: float = 3.0,
              groups: Optional[Dict[str, str]] = None,
              name: str = "calibrated") -> CalibrationReport:
    """Fit per-operation weights; return fitted table layered over ``base``.

    Operations never exercised by the microbenchmarks keep their base
    cost.  ``regularization`` ridge-pulls the fitted weights toward the
    architectural base costs: with fewer microbenchmarks than
    operations a plain least-squares fit is underdetermined and
    produces degenerate weights (zero for one operation, inflated for a
    collinear partner) that interpolate the training set perfectly but
    generalize poorly — exactly the overfitting the paper's
    assembler-level analysis avoids by construction.  The ISS and
    annotated runs must agree functionally.
    """
    if not benches:
        raise CalibrationError("need at least one microbenchmark")

    profiles: List[Dict[str, int]] = []
    cycles: List[int] = []
    for bench in benches:
        counts, annotated_result = measure_operation_counts(bench)
        iss_cycles, iss_result = measure_iss_cycles(bench, icache=icache)
        if annotated_result != iss_result:
            raise CalibrationError(
                f"microbenchmark {bench.name!r} diverges: annotated run "
                f"returned {annotated_result}, ISS returned {iss_result}"
            )
        if not counts:
            raise CalibrationError(
                f"microbenchmark {bench.name!r} executed no annotated "
                f"operations"
            )
        profiles.append(counts)
        cycles.append(iss_cycles)

    if groups is None:
        groups = DEFAULT_FIT_GROUPS
    seen_ops = sorted({op for profile in profiles for op in profile})
    classes = sorted({groups.get(op, op) for op in seen_ops})
    class_index = {cls: i for i, cls in enumerate(classes)}

    matrix = np.zeros((len(profiles), len(classes)))
    for row, profile in enumerate(profiles):
        for op, count in profile.items():
            matrix[row, class_index[groups.get(op, op)]] += count
    target = np.array(cycles, dtype=float)

    if regularization > 0:
        # anchor each class at the mean base cost of its members
        anchor = np.zeros(len(classes))
        members: Dict[str, List[str]] = {}
        for op in seen_ops:
            members.setdefault(groups.get(op, op), []).append(op)
        for cls, ops in members.items():
            anchor[class_index[cls]] = float(
                np.mean([base.get(op) if op in base else 0.0 for op in ops])
            )
        ridge = np.sqrt(regularization) * np.eye(len(classes))
        stacked_matrix = np.vstack([matrix, ridge])
        stacked_target = np.concatenate([target, np.sqrt(regularization) * anchor])
        class_weights, _residual = nnls(stacked_matrix, stacked_target)
    else:
        class_weights, _residual = nnls(matrix, target)

    # Expand class weights back to the full per-operation table: every
    # operation of a fitted class gets that class's weight, including
    # members the microbenchmarks never executed.
    weights: Dict[str, float] = {}
    fitted_classes = set(classes)
    for op in sorted(set(groups) | set(seen_ops)):
        cls = groups.get(op, op)
        if cls in fitted_classes:
            weights[op] = float(class_weights[class_index[cls]])
    predicted = matrix @ class_weights
    operations = sorted(weights)

    fitted = base.merged(weights, name=name)
    return CalibrationReport(
        costs=fitted,
        operations=operations,
        weights=weights,
        bench_names=[b.name for b in benches],
        measured_cycles=cycles,
        predicted_cycles=[float(p) for p in predicted],
    )
