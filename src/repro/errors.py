"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel detected an illegal state.

    Examples: a process yielded an unknown command, the delta-cycle limit
    was exceeded (runaway zero-time loop), or a channel was accessed
    outside of a process context.
    """


class ElaborationError(ReproError):
    """The static structure of the design is invalid.

    Raised for unbound ports, duplicate process names, or modules added
    after the simulation has started.
    """


class AnnotationError(ReproError):
    """The timing-annotation layer was used incorrectly.

    Examples: annotated arithmetic executed while no cost context is
    active in strict mode, or an operation missing from the platform
    cost table.
    """


class MappingError(ReproError):
    """An architectural-mapping inconsistency was detected.

    Examples: a process mapped to two resources, or a simulation started
    with unmapped processes while a performance library is attached.
    """


class IssError(ReproError):
    """The instruction-set simulator hit an unrecoverable condition.

    Examples: unknown opcode, unaligned memory access, PC out of range,
    or exceeding the configured cycle budget (runaway program).
    """


class CompileError(ReproError):
    """The mini-compiler could not translate the given Python source.

    The compiler supports only the documented integer subset of Python;
    anything else raises this error with the offending construct named.
    """


class SynthesisError(ReproError):
    """The behavioral-synthesis substrate rejected its input.

    Examples: scheduling an empty dataflow graph, a resource constraint
    of zero functional units, or a cyclic dependency in the captured
    trace (which would indicate a capture bug).
    """


class CaptureError(ReproError):
    """A capture-point or metrics API misuse."""


class CalibrationError(ReproError):
    """Weight fitting failed (singular system, empty microbenchmark set)."""


class InjectError(ReproError):
    """The fault-injection layer was configured inconsistently.

    Examples: a faultload targets a channel or process the scenario
    does not contain, segment-time faults without an attached
    performance library, or a dependability analysis whose fault-free
    golden run fails.
    """
