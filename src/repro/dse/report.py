"""Deterministic JSON reports of a search: front + trajectory.

Two layers, deliberately separated:

* :func:`canonical_payload` — the byte-identical-under-a-seed part:
  space spec, objectives, settings, the full search trajectory, the
  ranked front and the decision.  Two runs with the same seed — warm
  or cold cache, in-process or spawned pool — must serialize this part
  identically; the golden DSE test pins it.
* :func:`report_payload` — the canonical part plus an ``execution``
  block (cache hits, simulated runs, retries, wall time) that varies
  legitimately between runs of the same search.

``render_json`` is the one serializer (sorted keys, indent 1, trailing
newline) so byte comparisons mean something.
"""

from __future__ import annotations

import json
from typing import List

from .engine import DseResult
from .mcdm import RankedPoint


def _point_dict(result: DseResult, point: RankedPoint) -> dict:
    return {
        "rank": point.rank,
        "genome": list(point.genome),
        "point": result.space.point(point.genome),
        "objectives": {objective.name: value
                       for objective, value
                       in zip(result.objectives, point.objectives)},
        "score": point.score,
    }


def front_payload(result: DseResult) -> List[dict]:
    return [_point_dict(result, point) for point in result.front]


def canonical_payload(result: DseResult) -> dict:
    """The deterministic search outcome (the golden-test contract)."""
    return {
        "space": result.space.to_spec(),
        "objectives": [{"name": o.name, "key": o.key}
                       for o in result.objectives],
        "weights": (None if result.weights is None
                    else list(result.weights)),
        "settings": result.settings.as_dict(),
        "grid_size": result.grid_size,
        "evaluations": result.evaluations,
        "trajectory": [record.as_dict() for record in result.trajectory],
        "front": front_payload(result),
        "best": _point_dict(result, result.best) if result.front else None,
    }


def report_payload(result: DseResult) -> dict:
    """Canonical outcome + how this particular run obtained it."""
    payload = canonical_payload(result)
    payload["execution"] = {
        "submitted": result.submitted,
        "generations": result.generation_metrics,
        "totals": result.totals(),
        "wall_s": result.wall_s,
    }
    return payload


def render_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def write_report(result: DseResult, path) -> dict:
    """Write the full report JSON to ``path``; returns the payload."""
    payload = report_payload(result)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(payload))
    return payload
