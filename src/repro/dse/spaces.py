"""Reference search spaces, starting with the paper's Fig. 4 sweep.

The Fig. 4 design space — how many functional units of each class the
FIR output-sample segment gets — is the reproduction's exhaustive-grid
benchmark; here it becomes the reference *genome*: one gene per FU
class the segment's dataflow graph needs, each ranging over
``1..max_units_per_class``, decoded into the same ``hw-point``
campaign configurations the grid sweep runs.  A seeded search over
this space must find the grid's known optimum in a fraction of its
evaluations — that is the subsystem's golden acceptance test.

Custom spaces load from JSON spec files (see ``docs/dse.md``)::

    {"name": "my-space", "kind": "hw-point",
     "base": {"taps": 12, "evaluate_system": false},
     "genes": [{"name": "alu", "path": ["allocation", "alu"],
                "min": 1, "max": 4},
               {"name": "clock_mhz", "choices": [100, 200, 400]}]}
"""

from __future__ import annotations

from typing import Callable, Dict

from .genome import DseError, Gene, SearchSpace


def fig4_space(max_units_per_class: int = 4,
               taps: int = 12,
               evaluate_system: bool = False,
               samples: int = 256) -> SearchSpace:
    """The Fig. 4 allocation space as a reference genome.

    One gene per FU class of the FIR segment's dataflow graph (path
    ``allocation/<class>``), domain ``1..max_units_per_class`` — the
    exact grid :func:`repro.batch.fig4_sweep_configs` enumerates
    exhaustively, now explorable under an evaluation budget.
    """
    from ..hls import capture_dfg, required_classes
    from ..platform import ASIC_HW_COSTS
    from ..workloads.fir import _lowpass_taps, fir_sample
    from ..annotate.types import AArray

    if max_units_per_class < 2:
        raise DseError("fig4 space needs max_units_per_class >= 2")
    x = AArray([(i * 17 + 3) % 128 - 64 for i in range(taps)])
    h = AArray(_lowpass_taps(taps))
    graph = capture_dfg(fir_sample, (x, h, taps), ASIC_HW_COSTS)
    genes = [Gene.int_range(fu, 1, max_units_per_class,
                            path=("allocation", fu))
             for fu in required_classes(graph)]
    return SearchSpace(
        "fig4", "hw-point", genes,
        base_params={"taps": taps, "evaluate_system": evaluate_system,
                     "samples": samples})


#: name → builder for the spaces `repro dse --space <name>` knows.
BUILTIN_SPACES: Dict[str, Callable[..., SearchSpace]] = {
    "fig4": fig4_space,
}


def resolve_space(spec: str, **fig4_kwargs) -> SearchSpace:
    """A builtin space name, or a path to a JSON space spec file."""
    builder = BUILTIN_SPACES.get(spec)
    if builder is not None:
        return builder(**fig4_kwargs)
    if spec.endswith(".json"):
        return SearchSpace.from_file(spec)
    raise DseError(
        f"unknown space {spec!r}; builtins: "
        f"{', '.join(sorted(BUILTIN_SPACES))}, or give a .json spec file")
