"""Evolutionary design-space exploration over the Campaign API.

The paper's Fig. 4 sweep is an exhaustive grid; the spaces it gestures
at — per-resource k, process→resource mappings, RTOS overheads, clock
frequencies — explode combinatorially.  This subsystem searches them
instead of enumerating them:

* :mod:`~repro.dse.genome` — genes map search dimensions onto frozen,
  cache-keyed :class:`~repro.batch.RunConfig` points (encode/decode
  round-trips; all variation operators draw from a seeded RNG),
* :mod:`~repro.dse.factorial` — two-level factorial screening seeds
  the initial population across huge spaces,
* :mod:`~repro.dse.engine` — a deterministic evolutionary engine
  (tournament selection, uniform crossover, point mutation, elitism)
  whose generations evaluate as batch :class:`~repro.batch.Campaign`
  runs, so the content-addressed result cache makes every re-evaluated
  individual free,
* :mod:`~repro.dse.mcdm` — Pareto-front extraction and weighted
  min-max MCDM ranking over (time, power, cost, ...) objectives,
* :mod:`~repro.dse.report` — byte-deterministic JSON reports of the
  front and the full search trajectory,
* :mod:`~repro.dse.spaces` — the Fig. 4 reference genome and JSON
  space-spec loading for `repro dse`.

Determinism contract: the same seed produces a byte-identical
trajectory and front, in-process and under the spawned worker pool —
established by ``tests/test_dse_props.py`` the same way the batch
layer's cache soundness is established by the determinism suite.
"""

from .engine import (
    DseObserver,
    DseProgress,
    DseResult,
    DseSettings,
    Evolution,
    GenerationRecord,
)
from .factorial import screening_genomes
from .genome import DseError, Gene, Genome, SearchSpace
from .mcdm import (
    RankedPoint,
    dominates,
    mcdm_score,
    normalize_bounds,
    pareto_indices,
    ranked_front,
)
from .objectives import (
    BUILTIN_OBJECTIVES,
    DEFAULT_OBJECTIVES,
    Objective,
    objective_vector,
    parse_objectives,
)
from .report import (
    canonical_payload,
    front_payload,
    render_json,
    report_payload,
    write_report,
)
from .spaces import BUILTIN_SPACES, fig4_space, resolve_space

__all__ = [
    "BUILTIN_OBJECTIVES", "BUILTIN_SPACES", "DEFAULT_OBJECTIVES",
    "DseError", "DseObserver", "DseProgress", "DseResult", "DseSettings",
    "Evolution", "Gene", "GenerationRecord", "Genome", "Objective",
    "RankedPoint", "SearchSpace", "canonical_payload", "dominates",
    "fig4_space", "front_payload", "mcdm_score", "normalize_bounds",
    "objective_vector", "pareto_indices", "parse_objectives",
    "ranked_front", "render_json", "report_payload", "resolve_space",
    "screening_genomes", "write_report",
]
