"""Factorial screening: seed a search from the corners of a huge space.

Exhaustive grids explode combinatorially, but a two-level factorial
design — every combination of each gene's extreme values — screens the
main effects of all dimensions with ``2^n`` points, and a fractional
subset of those corners still spreads the probes across the space when
even ``2^n`` is too many.  The screening genomes seed the evolutionary
engine's initial population so generation zero already spans the
space instead of clustering wherever the RNG landed.

The construction is fully deterministic: the center point first (the
classic curvature probe), then the corners in lexicographic order,
thinned to an evenly-strided fraction when a ``limit`` applies.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from .genome import Genome, SearchSpace


def screening_genomes(space: SearchSpace,
                      limit: Optional[int] = None) -> List[Genome]:
    """Center + (fractional) two-level factorial corners of ``space``.

    Returns at most ``limit`` distinct genomes (all of them when
    ``limit`` is None).  Order is deterministic: the center genome
    first, then corners lexicographically; when the full factorial
    exceeds the limit, an evenly-strided fraction of the corner list
    keeps the probes spread across the space.
    """
    if limit is not None and limit <= 0:
        return []
    center = tuple(gene.center for gene in space.genes)
    corners = [genome for genome in
               itertools.product(*((gene.lo, gene.hi) if gene.lo != gene.hi
                                   else (gene.lo,) for gene in space.genes))
               if genome != center]
    if limit is not None and len(corners) > limit - 1:
        corners = _strided(corners, limit - 1)
    return [center] + corners


def _strided(items: list, count: int) -> list:
    """An evenly-spread deterministic subset of ``count`` items."""
    if count <= 0:
        return []
    if count >= len(items):
        return list(items)
    if count == 1:
        return [items[0]]
    last = len(items) - 1
    indices = sorted({round(i * last / (count - 1)) for i in range(count)})
    return [items[i] for i in indices]
