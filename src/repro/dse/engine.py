"""The seeded evolutionary search engine over the Campaign API.

One :class:`Evolution` run is a deterministic function of its
:class:`DseSettings` seed: every random draw (initial population fill,
tournament picks, crossover coin-flips, mutations) comes from a single
``random.Random(seed)``, fitness values are payloads of deterministic
simulations, and all tie-breaks order on the genome tuple — so the same
seed reproduces the same trajectory and front byte-for-byte, whether
generations evaluate in-process or on a spawned worker pool.

Fitness evaluation is where the batch layer pays off: every generation
is submitted as one :class:`~repro.batch.Campaign`, so points fan out
across workers and the content-addressed result cache makes any genome
seen before — a surviving elite, a re-discovered individual, a warm
re-run of the whole search — free.  The engine deliberately does *not*
memoize fitness in memory: re-evaluations go through the campaign so
the cache-hit counters prove the invariant instead of hiding it.

Progress flows through the existing campaign observer protocol:
observers passed to the engine receive every per-run callback from the
generation campaigns, plus the :class:`DseObserver` generation hooks.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..batch.cache import ResultCache
from ..batch.campaign import Campaign, CampaignObserver, RunResult
from ..batch.pool import WorkerPool
from .factorial import screening_genomes
from .genome import DseError, Genome, SearchSpace
from .mcdm import (
    RankedPoint,
    Vector,
    mcdm_score,
    normalize_bounds,
    ranked_front,
)
from .objectives import Objective, objective_vector


@dataclasses.dataclass(frozen=True)
class DseSettings:
    """Search hyper-parameters.  All defaults are deliberately small:
    the cache makes extra generations cheap, not extra evaluations."""

    seed: int = 0
    population: int = 8
    generations: int = 6
    budget: Optional[int] = None     # max *unique* genome evaluations
    tournament: int = 2
    crossover_rate: float = 0.9
    mutation_rate: Optional[float] = None   # default: 1 / len(genes)
    elites: int = 1

    def validated(self) -> "DseSettings":
        if self.population < 2:
            raise DseError("population must be >= 2")
        if self.generations < 1:
            raise DseError("generations must be >= 1")
        if self.budget is not None and self.budget < 1:
            raise DseError("budget must be >= 1")
        if self.tournament < 1:
            raise DseError("tournament size must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise DseError("crossover rate must be in [0, 1]")
        if self.mutation_rate is not None \
                and not 0.0 <= self.mutation_rate <= 1.0:
            raise DseError("mutation rate must be in [0, 1]")
        if not 0 <= self.elites < self.population:
            raise DseError("elites must be in [0, population)")
        return self

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class DseObserver(CampaignObserver):
    """Campaign observer extended with generation-level search hooks.

    Any :class:`CampaignObserver` can be passed to the engine — it will
    receive the per-run callbacks of every generation campaign; these
    extra hooks fire only on observers that define them.
    """

    def on_generation_start(self, generation: int,
                            genomes: Sequence[Genome]) -> None: ...

    def on_generation_end(self, generation: int,
                          entries: Sequence[Tuple[Genome, Vector]],
                          metrics: dict) -> None: ...

    def on_search_end(self, result: "DseResult") -> None: ...


class DseProgress(DseObserver):
    """One line per generation — the CLI's search progress display."""

    def __init__(self, stream=None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stdout

    def on_generation_end(self, generation, entries, metrics):
        best = min(metrics["best_score"], 1.0)
        print(f"gen {generation}: {metrics['submitted']} points "
              f"({metrics['new_evaluations']} new, "
              f"{metrics['cache_hits']} cached), "
              f"best score {best:.4f}", file=self.stream)

    def on_search_end(self, result):
        print(f"front: {len(result.front)} non-dominated points from "
              f"{result.evaluations} evaluations "
              f"({result.grid_size} in the exhaustive grid)",
              file=self.stream)


@dataclasses.dataclass
class GenerationRecord:
    """Canonical (deterministic) trajectory entry for one generation."""

    generation: int
    population: List[dict]        # [{"genome": [...], "objectives": [...]}]
    new_evaluations: int

    def as_dict(self) -> dict:
        return {"generation": self.generation,
                "population": self.population,
                "new_evaluations": self.new_evaluations}


@dataclasses.dataclass
class DseResult:
    """Everything one search produced.

    The deterministic part (trajectory, front, best, evaluation counts)
    is the byte-identical-under-a-seed contract; the ``execution``
    metrics (cache hits, wall time, retries) describe *how* this
    particular run obtained it and legitimately vary with cache warmth
    and worker scheduling.
    """

    space: SearchSpace
    objectives: Tuple[Objective, ...]
    weights: Optional[Tuple[float, ...]]
    settings: DseSettings
    trajectory: List[GenerationRecord]
    front: List[RankedPoint]
    evaluations: int              # unique genomes evaluated
    submitted: int                # configs submitted (incl. re-evaluations)
    generation_metrics: List[dict]
    wall_s: float

    @property
    def best(self) -> RankedPoint:
        if not self.front:
            raise DseError("search produced an empty front")
        return self.front[0]

    @property
    def grid_size(self) -> int:
        return self.space.size()

    def totals(self) -> dict:
        keys = ("cache_hits", "simulated", "retries", "worker_replacements")
        return {key: sum(m[key] for m in self.generation_metrics)
                for key in keys}


class Evolution:
    """Population search over a :class:`SearchSpace` with cached fitness."""

    def __init__(self,
                 space: SearchSpace,
                 objectives: Sequence[Objective],
                 settings: DseSettings = DseSettings(),
                 weights: Optional[Sequence[float]] = None,
                 cache=None,
                 workers: int = 0,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 start_method: Optional[str] = None,
                 observers: Sequence[CampaignObserver] = (),
                 trace_dir=None) -> None:
        self.space = space
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise DseError("search needs at least one objective")
        self.settings = settings.validated()
        self.weights = None if weights is None else tuple(weights)
        if self.weights is not None \
                and len(self.weights) != len(self.objectives):
            raise DseError(
                f"{len(self.weights)} weights for "
                f"{len(self.objectives)} objectives")
        if cache is None or isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        else:
            self.cache = ResultCache(cache)
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.start_method = start_method
        self.observers = list(observers)
        self.trace_dir = trace_dir

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, genomes: Sequence[Genome],
                  pool=None) -> Tuple[List[Vector], Campaign]:
        configs = [self.space.decode(genome) for genome in genomes]
        campaign = Campaign(configs, workers=self.workers,
                            timeout_s=self.timeout_s, retries=self.retries,
                            cache=self.cache,
                            start_method=self.start_method,
                            observers=self.observers,
                            trace_dir=self.trace_dir,
                            pool=pool)
        results = campaign.run()
        failed = [r for r in results if not r.ok]
        if failed:
            detail = "; ".join(
                f"{r.config.name}: {r.status} ({r.error.strip().splitlines()[-1]})"
                if r.error.strip() else f"{r.config.name}: {r.status}"
                for r in failed[:3])
            raise DseError(
                f"{len(failed)} evaluation(s) failed after retries: {detail}")
        return ([objective_vector(r.payload, self.objectives)
                 for r in results], campaign)

    # -- selection ---------------------------------------------------------

    def _scores(self, evaluated: Dict[Genome, Vector]) -> Dict[Genome, float]:
        bounds = normalize_bounds(list(evaluated.values()))
        return {genome: mcdm_score(vector, bounds, self.weights)
                for genome, vector in evaluated.items()}

    def _tournament(self, population: Sequence[Genome],
                    scores: Dict[Genome, float],
                    rng: random.Random) -> Genome:
        picks = [population[rng.randrange(len(population))]
                 for _ in range(self.settings.tournament)]
        return min(picks, key=lambda genome: (scores[genome], genome))

    def _initial_population(self, rng: random.Random) -> List[Genome]:
        size = min(self.settings.population, self.space.size())
        if self.space.size() <= size:
            return list(self.space.all_genomes())
        population = []
        seen = set()
        for genome in screening_genomes(self.space, limit=size):
            if genome not in seen:
                seen.add(genome)
                population.append(genome)
            if len(population) == size:
                return population
        attempts = 0
        while len(population) < size and attempts < 50 * size:
            genome = self.space.random_genome(rng)
            attempts += 1
            if genome not in seen:
                seen.add(genome)
                population.append(genome)
        if len(population) < size:
            # Random fill stalled (nearly-exhausted space): fall back to
            # a deterministic scan for the remaining unseen genomes.
            for genome in self.space.all_genomes():
                if genome not in seen:
                    seen.add(genome)
                    population.append(genome)
                if len(population) == size:
                    break
        return population

    def _next_population(self, population: Sequence[Genome],
                         scores: Dict[Genome, float],
                         rng: random.Random) -> List[Genome]:
        ranked = sorted(population,
                        key=lambda genome: (scores[genome], genome))
        next_pop: List[Genome] = list(
            dict.fromkeys(ranked[:self.settings.elites]))
        seen = set(next_pop)
        mutation = (self.settings.mutation_rate
                    if self.settings.mutation_rate is not None
                    else 1.0 / len(self.space.genes))
        while len(next_pop) < len(population):
            child: Optional[Genome] = None
            for _attempt in range(10):
                mother = self._tournament(population, scores, rng)
                if rng.random() < self.settings.crossover_rate:
                    father = self._tournament(population, scores, rng)
                    candidate = self.space.crossover(mother, father, rng)
                else:
                    candidate = mother
                candidate = self.space.mutate(candidate, rng, mutation)
                child = candidate
                if candidate not in seen:
                    break
            if child in seen:
                # Variation kept colliding (tight space): deterministic
                # scan for any genome this population does not yet hold,
                # so one generation never submits a duplicate config.
                child = next((genome for genome in self.space.all_genomes()
                              if genome not in seen), child)
            assert child is not None
            seen.add(child)
            next_pop.append(child)
        return next_pop

    # -- the search loop ---------------------------------------------------

    def run(self) -> DseResult:
        settings = self.settings
        rng = random.Random(settings.seed)
        started = time.perf_counter()

        evaluated: Dict[Genome, Vector] = {}
        trajectory: List[GenerationRecord] = []
        generation_metrics: List[dict] = []
        submitted = 0
        exhaustive = self.space.size() <= settings.population

        # One warm pool serves every generation: spawned lazily on the
        # first campaign that actually has work (a fully-cached rerun
        # never starts a process) and reused until the search ends.
        pool = (WorkerPool(self.workers, self.start_method)
                if self.workers and self.workers > 1 else None)
        try:
            return self._search(settings, rng, started, evaluated,
                                trajectory, generation_metrics, submitted,
                                exhaustive, pool)
        finally:
            if pool is not None:
                pool.shutdown()

    def _search(self, settings, rng, started, evaluated, trajectory,
                generation_metrics, submitted, exhaustive,
                pool) -> DseResult:
        population = self._initial_population(rng)
        for generation in range(settings.generations):
            population, new = self._respect_budget(population, evaluated)
            if not population:
                break
            for observer in self.observers:
                hook = getattr(observer, "on_generation_start", None)
                if hook is not None:
                    hook(generation, list(population))

            vectors, campaign = self._evaluate(population, pool=pool)
            submitted += len(population)
            for genome, vector in zip(population, vectors):
                evaluated[genome] = vector

            scores = self._scores(evaluated)
            entries = list(zip(population, vectors))
            trajectory.append(GenerationRecord(
                generation=generation,
                population=[{"genome": list(genome),
                             "objectives": list(vector)}
                            for genome, vector in entries],
                new_evaluations=len(new),
            ))
            metrics = {
                "generation": generation,
                "submitted": len(population),
                "new_evaluations": len(new),
                "cache_hits": campaign.metrics.cache_hits,
                "simulated": len(campaign.metrics.run_wall_s),
                "retries": campaign.metrics.retries,
                "worker_replacements": campaign.metrics.worker_replacements,
                "best_score": min(scores[genome] for genome in population),
            }
            generation_metrics.append(metrics)
            for observer in self.observers:
                hook = getattr(observer, "on_generation_end", None)
                if hook is not None:
                    hook(generation, entries, dict(metrics))

            if self._budget_spent(evaluated) or exhaustive:
                break
            if generation + 1 < settings.generations:
                population = self._next_population(population, scores, rng)

        result = DseResult(
            space=self.space,
            objectives=self.objectives,
            weights=self.weights,
            settings=settings,
            trajectory=trajectory,
            front=ranked_front(sorted(evaluated.items()), self.weights),
            evaluations=len(evaluated),
            submitted=submitted,
            generation_metrics=generation_metrics,
            wall_s=time.perf_counter() - started,
        )
        for observer in self.observers:
            hook = getattr(observer, "on_search_end", None)
            if hook is not None:
                hook(result)
        return result

    def _respect_budget(self, population: Sequence[Genome],
                        evaluated: Dict[Genome, Vector]
                        ) -> Tuple[List[Genome], List[Genome]]:
        """Trim a generation's *new* genomes to the remaining budget.

        Previously-evaluated genomes always stay (their re-evaluation
        is a cache hit, not a budget spend); new genomes are kept in
        population order until the unique-evaluation budget is full.
        """
        budget = self.settings.budget
        new = [genome for genome in dict.fromkeys(population)
               if genome not in evaluated]
        if budget is None:
            return list(population), new
        remaining = budget - len(evaluated)
        if remaining <= 0 and not any(g in evaluated for g in population):
            return [], []
        allowed = set(new[:max(0, remaining)])
        kept = [genome for genome in population
                if genome in evaluated or genome in allowed]
        return kept, new[:max(0, remaining)]

    def _budget_spent(self, evaluated: Dict[Genome, Vector]) -> bool:
        return (self.settings.budget is not None
                and len(evaluated) >= self.settings.budget)
