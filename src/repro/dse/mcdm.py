"""Pareto-front extraction and MCDM ranking of objective vectors.

Multi-objective search does not end with one number: the result is the
non-dominated *front* over (time, power, cost, ...) and a decision —
which front point to build.  The multi-criteria decision-making step
here is the classic weighted-sum over min-max-normalized objectives:
every objective is scaled into [0, 1] across the set under comparison,
the weighted mean taken, and the front ranked ascending (0 is the
ideal corner).  Ties break on the genome tuple so two runs of the same
search rank byte-identically.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from .genome import DseError, Genome

Vector = Tuple[float, ...]


def dominates(a: Vector, b: Vector) -> bool:
    """True when ``a`` is at least as good everywhere, better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_indices(vectors: Sequence[Vector]) -> List[int]:
    """Indices of the non-dominated vectors, in input order.

    Duplicate vectors all survive (they dominate nothing, nothing
    strictly dominates them) — callers dedup genomes, not objectives.
    """
    front = []
    for i, candidate in enumerate(vectors):
        if not any(dominates(other, candidate)
                   for j, other in enumerate(vectors) if j != i):
            front.append(i)
    return front


def normalize_bounds(
        vectors: Sequence[Vector]) -> Tuple[Vector, Vector]:
    """Per-objective (min, max) over ``vectors``."""
    if not vectors:
        raise DseError("cannot normalize an empty vector set")
    dims = len(vectors[0])
    los = tuple(min(v[d] for v in vectors) for d in range(dims))
    his = tuple(max(v[d] for v in vectors) for d in range(dims))
    return los, his


def mcdm_score(vector: Vector, bounds: Tuple[Vector, Vector],
               weights: Optional[Sequence[float]] = None) -> float:
    """Weighted mean of min-max-normalized objectives (lower is better).

    A degenerate objective (identical across the comparison set)
    contributes 0 — it cannot discriminate, so it must not skew the
    ranking.
    """
    los, his = bounds
    if weights is None:
        weights = [1.0] * len(vector)
    if len(weights) != len(vector):
        raise DseError(
            f"{len(weights)} weights for {len(vector)} objectives")
    if any(w < 0 for w in weights):
        raise DseError(f"negative MCDM weight in {list(weights)}")
    total = sum(weights)
    if total <= 0:
        raise DseError("MCDM weights sum to zero")
    score = 0.0
    for value, lo, hi, weight in zip(vector, los, his, weights):
        if hi > lo:
            score += weight * (value - lo) / (hi - lo)
    return score / total


@dataclasses.dataclass(frozen=True)
class RankedPoint:
    """One front point after MCDM ranking (rank 1 = the decision)."""

    genome: Genome
    objectives: Vector
    score: float
    rank: int


def ranked_front(entries: Sequence[Tuple[Genome, Vector]],
                 weights: Optional[Sequence[float]] = None
                 ) -> List[RankedPoint]:
    """Pareto front of ``entries``, MCDM-ranked.

    Normalization bounds come from the front itself, so the ranking of
    a front is a pure function of its points — a search that recovers
    the true front ranks it exactly as the exhaustive grid would.
    """
    if not entries:
        return []
    vectors = [vector for _genome, vector in entries]
    front = [(entries[i][0], entries[i][1]) for i in pareto_indices(vectors)]
    bounds = normalize_bounds([vector for _genome, vector in front])
    scored = sorted(
        ((mcdm_score(vector, bounds, weights), genome, vector)
         for genome, vector in front),
        key=lambda item: (item[0], item[1]))
    return [RankedPoint(genome, vector, score, rank)
            for rank, (score, genome, vector) in enumerate(scored, start=1)]
