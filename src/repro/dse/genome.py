"""Gene/genome encoding: search dimensions onto frozen run configs.

A :class:`Gene` names one discrete search dimension — an ordered tuple
of scalar choices plus the *path* at which the chosen value lands in a
runner's parameter dict (e.g. ``("allocation", "alu")``).  A *genome*
is a plain tuple holding one choice per gene, in gene order: hashable,
picklable, and trivially JSON-able, which is exactly what the
deterministic search engine and its byte-identical reports need.

A :class:`SearchSpace` bundles the genes with a runner ``kind`` and the
fixed ``base_params``; :meth:`SearchSpace.decode` materializes a genome
into a frozen :class:`~repro.batch.config.RunConfig` whose
content-addressed cache key makes re-evaluated individuals free, and
:meth:`SearchSpace.encode` inverts it.  All randomized operators
(random genome, mutation, crossover) draw exclusively from a caller-
supplied ``random.Random`` so that a seed fixes the whole trajectory.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import json
import math
import os
import random
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..batch.config import RunConfig
from ..errors import ReproError

#: A genome: one chosen value per gene, in gene order.
Genome = Tuple[Any, ...]

_SCALARS = (bool, int, float, str)


class DseError(ReproError):
    """Raised for malformed search spaces, genomes or objectives."""


@dataclasses.dataclass(frozen=True)
class Gene:
    """One discrete search dimension.

    ``choices`` is the ordered domain (scalars only — the values land
    in cache-keyed run parameters); ``path`` locates the value inside
    the runner's parameter dict (defaults to the top-level gene name).
    """

    name: str
    choices: Tuple[Any, ...]
    path: Tuple[str, ...]

    @classmethod
    def of(cls, name: str, choices: Sequence[Any],
           path: Optional[Sequence[str]] = None) -> "Gene":
        if not name:
            raise DseError("gene needs a non-empty name")
        values = tuple(choices)
        if not values:
            raise DseError(f"gene {name!r} has an empty domain")
        for value in values:
            if not isinstance(value, _SCALARS) and value is not None:
                raise DseError(
                    f"gene {name!r} choice {value!r} is not a scalar")
        if len(set(values)) != len(values):
            raise DseError(f"gene {name!r} has duplicate choices")
        where = tuple(str(p) for p in (path if path is not None else (name,)))
        if not where:
            raise DseError(f"gene {name!r} has an empty parameter path")
        return cls(name, values, where)

    @classmethod
    def int_range(cls, name: str, lo: int, hi: int, step: int = 1,
                  path: Optional[Sequence[str]] = None) -> "Gene":
        """The inclusive integer range ``lo..hi`` as a gene domain."""
        if step <= 0:
            raise DseError(f"gene {name!r} needs a positive step")
        if hi < lo:
            raise DseError(f"gene {name!r} range is empty ({lo}..{hi})")
        return cls.of(name, tuple(range(lo, hi + 1, step)), path)

    def index_of(self, value: Any) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise DseError(
                f"value {value!r} is not in gene {self.name!r}'s domain "
                f"{list(self.choices)}"
            ) from None

    @property
    def lo(self) -> Any:
        return self.choices[0]

    @property
    def hi(self) -> Any:
        return self.choices[-1]

    @property
    def center(self) -> Any:
        """The middle choice (lower middle for even-sized domains)."""
        return self.choices[(len(self.choices) - 1) // 2]


def _set_path(params: dict, path: Tuple[str, ...], value: Any) -> None:
    node = params
    for key in path[:-1]:
        child = node.setdefault(key, {})
        if not isinstance(child, dict):
            raise DseError(
                f"parameter path {'/'.join(path)} collides with a "
                f"non-mapping value at {key!r}"
            )
        node = child
    node[path[-1]] = value


def _get_path(params: Mapping, path: Tuple[str, ...]) -> Any:
    node: Any = params
    for key in path:
        if not isinstance(node, Mapping) or key not in node:
            raise DseError(f"parameters have no value at {'/'.join(path)}")
        node = node[key]
    return node


class SearchSpace:
    """Genes + runner kind + fixed parameters = one explorable space."""

    def __init__(self, name: str, kind: str, genes: Sequence[Gene],
                 base_params: Optional[Mapping[str, Any]] = None) -> None:
        if not genes:
            raise DseError(f"search space {name!r} has no genes")
        names = [gene.name for gene in genes]
        if len(set(names)) != len(names):
            raise DseError(f"search space {name!r} has duplicate gene names")
        paths = [gene.path for gene in genes]
        if len(set(paths)) != len(paths):
            raise DseError(
                f"search space {name!r} maps two genes onto one parameter")
        self.name = name
        self.kind = kind
        self.genes: Tuple[Gene, ...] = tuple(genes)
        self.base_params: Dict[str, Any] = copy.deepcopy(
            dict(base_params or {}))

    def __len__(self) -> int:
        return len(self.genes)

    def size(self) -> int:
        """Number of points in the exhaustive grid."""
        return math.prod(len(gene.choices) for gene in self.genes)

    # -- genome <-> config ------------------------------------------------

    def validate(self, genome: Genome) -> Genome:
        genome = tuple(genome)
        if len(genome) != len(self.genes):
            raise DseError(
                f"genome {genome!r} has {len(genome)} values for "
                f"{len(self.genes)} genes"
            )
        for gene, value in zip(self.genes, genome):
            gene.index_of(value)
        return genome

    def point(self, genome: Genome) -> Dict[str, Any]:
        """The genome as a gene-name → value mapping (for reports)."""
        genome = self.validate(genome)
        return {gene.name: value for gene, value in zip(self.genes, genome)}

    def label(self, genome: Genome) -> str:
        inner = ",".join(f"{gene.name}={value}"
                         for gene, value in zip(self.genes, genome))
        return f"{self.name}[{inner}]"

    def decode(self, genome: Genome) -> RunConfig:
        """Materialize a genome into a frozen, cache-keyed run config."""
        genome = self.validate(genome)
        params = copy.deepcopy(self.base_params)
        for gene, value in zip(self.genes, genome):
            _set_path(params, gene.path, value)
        return RunConfig.of(self.kind, name=self.label(genome), **params)

    def encode(self, config) -> Genome:
        """Invert :meth:`decode`: read the gene values back out.

        Accepts a :class:`RunConfig` or a plain parameter mapping;
        every value must lie inside its gene's domain.
        """
        params = (config.params_dict() if isinstance(config, RunConfig)
                  else config)
        return self.validate(tuple(_get_path(params, gene.path)
                                   for gene in self.genes))

    def all_genomes(self) -> Iterator[Genome]:
        """The exhaustive grid, in deterministic lexicographic order."""
        return itertools.product(*(gene.choices for gene in self.genes))

    # -- seeded variation operators ---------------------------------------

    def random_genome(self, rng: random.Random) -> Genome:
        return tuple(gene.choices[rng.randrange(len(gene.choices))]
                     for gene in self.genes)

    def mutate(self, genome: Genome, rng: random.Random,
               rate: float) -> Genome:
        """Per-gene point mutation to a *different* in-domain choice."""
        genome = self.validate(genome)
        out: List[Any] = []
        for gene, value in zip(self.genes, genome):
            if len(gene.choices) > 1 and rng.random() < rate:
                skip = gene.index_of(value)
                pick = rng.randrange(len(gene.choices) - 1)
                if pick >= skip:
                    pick += 1
                out.append(gene.choices[pick])
            else:
                out.append(value)
        return tuple(out)

    def crossover(self, a: Genome, b: Genome,
                  rng: random.Random) -> Genome:
        """Uniform crossover: each gene from one parent, coin-flipped."""
        a, b = self.validate(a), self.validate(b)
        return tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))

    # -- spec (de)serialization --------------------------------------------

    def to_spec(self) -> dict:
        """JSON-able description; ``from_spec`` round-trips it."""
        genes = []
        for gene in self.genes:
            spec: Dict[str, Any] = {"name": gene.name,
                                    "choices": list(gene.choices)}
            if gene.path != (gene.name,):
                spec["path"] = list(gene.path)
            genes.append(spec)
        return {"name": self.name, "kind": self.kind,
                "base": copy.deepcopy(self.base_params), "genes": genes}

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "SearchSpace":
        if not isinstance(spec, Mapping):
            raise DseError(f"space spec must be an object, got "
                           f"{type(spec).__name__}")
        for key in ("name", "kind", "genes"):
            if key not in spec:
                raise DseError(f"space spec is missing {key!r}")
        genes = []
        for entry in spec["genes"]:
            if not isinstance(entry, Mapping) or "name" not in entry:
                raise DseError(f"bad gene spec {entry!r}")
            path = entry.get("path")
            if "choices" in entry:
                genes.append(Gene.of(entry["name"], entry["choices"], path))
            elif "min" in entry and "max" in entry:
                genes.append(Gene.int_range(
                    entry["name"], int(entry["min"]), int(entry["max"]),
                    step=int(entry.get("step", 1)), path=path))
            else:
                raise DseError(
                    f"gene {entry['name']!r} needs 'choices' or 'min'/'max'")
        return cls(str(spec["name"]), str(spec["kind"]), genes,
                   spec.get("base"))

    @classmethod
    def from_file(cls, path: "os.PathLike | str") -> "SearchSpace":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise DseError(f"cannot load space spec {path}: {exc}")
        return cls.from_spec(spec)

    def __repr__(self) -> str:
        return (f"SearchSpace({self.name!r}, kind={self.kind!r}, "
                f"genes={len(self.genes)}, size={self.size()})")
