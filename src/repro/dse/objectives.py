"""Objectives: which payload numbers the search minimizes.

An :class:`Objective` names one axis of the multi-objective front and
the run-payload key its value is read from.  Every objective is
*minimized* — express "maximize throughput" as a latency or period.

The built-in names map onto the ``hw-point`` payload (the Fig. 4
reference space): ``time`` (scheduled latency), ``power`` (average
power over the segment), ``energy``, ``cost`` (relative area) and
``latency`` (cycles).  Custom spaces bind any payload key with the
``name=payload_key`` syntax, e.g. ``miss_rate=icache_misses``.
"""

from __future__ import annotations

import dataclasses
import numbers
from typing import Dict, Sequence, Tuple, Union

from .genome import DseError

#: objective name → hw-point payload key.
BUILTIN_OBJECTIVES: Dict[str, str] = {
    "time": "latency_ns",
    "latency": "latency_cycles",
    "power": "power_mw",
    "energy": "energy_pj",
    "cost": "area",
    "area": "area",
}


@dataclasses.dataclass(frozen=True)
class Objective:
    """One minimized axis: a display name and its payload key."""

    name: str
    key: str

    def __str__(self) -> str:
        return self.name if self.name == self.key else \
            f"{self.name}={self.key}"


#: The paper-motivated default front: estimated time, power, cost.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("time", BUILTIN_OBJECTIVES["time"]),
    Objective("power", BUILTIN_OBJECTIVES["power"]),
    Objective("cost", BUILTIN_OBJECTIVES["cost"]),
)


def parse_objectives(
        spec: Union[str, Sequence[str], None]) -> Tuple[Objective, ...]:
    """``"time,power,cost"`` / ``["time", "err=error_pct"]`` → objectives."""
    if spec is None:
        return DEFAULT_OBJECTIVES
    names = ([part.strip() for part in spec.split(",")]
             if isinstance(spec, str) else [str(part) for part in spec])
    names = [name for name in names if name]
    if not names:
        return DEFAULT_OBJECTIVES
    objectives = []
    for name in names:
        if "=" in name:
            label, _, key = name.partition("=")
            if not label or not key:
                raise DseError(f"bad objective {name!r}; use name=payload_key")
            objectives.append(Objective(label, key))
        elif name in BUILTIN_OBJECTIVES:
            objectives.append(Objective(name, BUILTIN_OBJECTIVES[name]))
        else:
            raise DseError(
                f"unknown objective {name!r}; built-ins: "
                f"{', '.join(sorted(BUILTIN_OBJECTIVES))} "
                f"(or bind a payload key with name=key)"
            )
    seen = set()
    for objective in objectives:
        if objective.name in seen:
            raise DseError(f"duplicate objective {objective.name!r}")
        seen.add(objective.name)
    return tuple(objectives)


def objective_vector(payload: dict,
                     objectives: Sequence[Objective]) -> Tuple[float, ...]:
    """Read one run payload into the ordered objective tuple."""
    values = []
    for objective in objectives:
        if objective.key not in payload:
            raise DseError(
                f"payload has no {objective.key!r} for objective "
                f"{objective.name!r}; available: {sorted(payload)}"
            )
        value = payload[objective.key]
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            raise DseError(
                f"objective {objective.name!r} value {value!r} is not a "
                f"number"
            )
        values.append(float(value))
    return tuple(values)
