"""Timing agents: the paper's global-analysis mechanics (§4).

One agent is installed per analysed process.  At every node the agent
reads the segment cost accumulated by the annotated types, converts it
to time on the owning resource's clock, and answers the scheduler's
delay negotiation so that the process *sleeps for the segment's
estimated time* before its communication proceeds — transferring the
simulation "from an untimed (delta cycle-based) execution to a
strict-timed execution".

* :class:`HwTimingAgent` (parallel resources): the process simply
  sleeps for the annotated duration; concurrent HW processes overlap
  freely, and a process resumes at the later of its previous segment's
  end and the waking event (both emerge naturally from the sleep).

* :class:`SwTimingAgent` (sequential resources): before the segment
  time may elapse the process must win the processor.  The agent
  implements the paper's arbitration loop — wait until
  max(event time, resource-free time), re-checking because "another
  process can take up the resource while it is waiting" — plus the RTOS
  overhead charged at every channel access / wait and on every context
  switch.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..annotate.context import CostContext
from ..kernel.commands import ChannelAccess, Command, WaitFor
from ..kernel.process import Process, TimingAgent
from ..kernel.time import SimTime
from .estimator import annotated_cycles, read_segment


@dataclasses.dataclass
class ProcessTimingStats:
    """Per-process accounting produced by the agents."""

    process: str
    resource: str
    segments: int = 0
    cycles: float = 0.0          # segment computation cycles
    rtos_cycles: float = 0.0     # RTOS service + context-switch cycles
    busy_time: SimTime = dataclasses.field(default_factory=lambda: SimTime(0))
    arbitration_time: SimTime = dataclasses.field(default_factory=lambda: SimTime(0))
    #: (start_fs, end_fs) occupancy intervals, in execution order —
    #: the raw material for Gantt rendering and overlap checks.
    intervals: list = dataclasses.field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return self.cycles + self.rtos_cycles

    def record_interval(self, start: SimTime, end: SimTime) -> None:
        if end.femtoseconds > start.femtoseconds:
            self.intervals.append((start.femtoseconds, end.femtoseconds))


def _node_kind(command: Command) -> str:
    if isinstance(command, ChannelAccess):
        return "channel"
    if isinstance(command, WaitFor):
        return "wait"
    return "exit"


# Agent phases.
_IDLE = "idle"
_ARBITRATE = "arbitrate"
_SLEEP = "sleep"


class HwTimingAgent(TimingAgent):
    """Back-annotation for a process mapped to a parallel (HW) resource."""

    def __init__(self, resource, context: CostContext,
                 stats: ProcessTimingStats):
        self.resource = resource
        self.context = context
        self.stats = stats
        self._phase = _IDLE
        self._pending = SimTime(0)

    def node_reached(self, process: Process, command: Command,
                     now: SimTime) -> None:
        estimate = read_segment(self.context)
        self.context.reset()
        cycles = annotated_cycles(estimate, self.resource)
        duration = self.resource.clock.cycles_to_time(cycles)
        self.stats.segments += 1
        self.stats.cycles += cycles
        self.stats.busy_time = self.stats.busy_time + duration
        self.resource.busy_time = self.resource.busy_time + duration
        self.stats.record_interval(now, now + duration)
        self._pending = duration
        self._phase = _SLEEP

    def next_delay(self, process: Process, now: SimTime) -> Optional[SimTime]:
        if self._phase is _SLEEP:
            self._phase = _IDLE
            if self._pending.femtoseconds > 0:
                return self._pending
        return None


class SwTimingAgent(TimingAgent):
    """Back-annotation + processor arbitration for a SW-mapped process."""

    def __init__(self, resource, context: CostContext,
                 stats: ProcessTimingStats):
        self.resource = resource
        self.context = context
        self.stats = stats
        self._phase = _IDLE
        self._pending = SimTime(0)
        self._pending_rtos_cycles = 0.0
        self._arbitration_started: Optional[SimTime] = None

    def node_reached(self, process: Process, command: Command,
                     now: SimTime) -> None:
        estimate = read_segment(self.context)
        self.context.reset()
        segment_cycles = annotated_cycles(estimate, self.resource)

        rtos = self.resource.rtos
        rtos_cycles = rtos.node_cycles(_node_kind(command)) if rtos else 0.0

        total_cycles = segment_cycles + rtos_cycles
        duration = self.resource.clock.cycles_to_time(total_cycles)

        self.stats.segments += 1
        self.stats.cycles += segment_cycles
        self.stats.rtos_cycles += rtos_cycles
        self._pending = duration
        self._pending_rtos_cycles = rtos_cycles
        self._phase = _ARBITRATE
        self._arbitration_started = now
        self.resource.enqueue(process, duration)

    def next_delay(self, process: Process, now: SimTime) -> Optional[SimTime]:
        if self._phase is _ARBITRATE:
            if not self.resource.may_run(process, now):
                wait = self.resource.expected_wait(process, now)
                # may_run() is false only when the processor is busy or
                # another waiter has precedence; both give a positive wait.
                return wait

            duration = self._pending
            rtos = self.resource.rtos
            switch_cycles = 0.0
            if (rtos and self.resource.last_process is not None
                    and self.resource.last_process is not process):
                switch_cycles = rtos.context_switch_cycles
            if switch_cycles:
                duration = duration + self.resource.clock.cycles_to_time(switch_cycles)
                self.stats.rtos_cycles += switch_cycles

            completion = self.resource.occupy(process, now, duration)
            rtos_time = self.resource.clock.cycles_to_time(
                self._pending_rtos_cycles + switch_cycles
            )
            self.resource.rtos_time = self.resource.rtos_time + rtos_time
            self.stats.busy_time = self.stats.busy_time + duration
            self.stats.record_interval(now, completion)
            if self._arbitration_started is not None:
                self.stats.arbitration_time = (
                    self.stats.arbitration_time + (now - self._arbitration_started)
                )
                self._arbitration_started = None

            self._phase = _SLEEP
            remaining = completion - now
            if remaining.femtoseconds > 0:
                return remaining
            self._phase = _IDLE
            return None

        if self._phase is _SLEEP:
            self._phase = _IDLE
        return None
