"""Occupancy analysis and ASCII Gantt rendering.

Strict-timed simulation produces, per process, the exact intervals its
segments occupied their resource.  This module turns those intervals
into an at-a-glance timeline (the textual cousin of the paper's Fig. 5b)
and provides the overlap checks the tests and the fig5 bench rely on.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING, Tuple

from ..errors import ReproError
from ..kernel.time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .analysis import PerformanceLibrary

Interval = Tuple[int, int]


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Sort and coalesce overlapping/adjacent intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def total_busy_fs(intervals: List[Interval]) -> int:
    return sum(end - start for start, end in merge_intervals(intervals))


def overlap_fs(a: List[Interval], b: List[Interval]) -> int:
    """Total overlapped time between two interval sets."""
    merged_a = merge_intervals(a)
    merged_b = merge_intervals(b)
    total = 0
    i = j = 0
    while i < len(merged_a) and j < len(merged_b):
        start = max(merged_a[i][0], merged_b[j][0])
        end = min(merged_a[i][1], merged_b[j][1])
        if start < end:
            total += end - start
        if merged_a[i][1] < merged_b[j][1]:
            i += 1
        else:
            j += 1
    return total


def assert_serialized(perf: "PerformanceLibrary",
                      process_names: List[str]) -> None:
    """Raise unless the given processes' occupancy never overlaps.

    The invariant of a sequential resource: any overlap means the
    serialization machinery failed.
    """
    for index, first in enumerate(process_names):
        for second in process_names[index + 1:]:
            overlapped = overlap_fs(perf.stats[first].intervals,
                                    perf.stats[second].intervals)
            if overlapped:
                raise ReproError(
                    f"processes {first!r} and {second!r} overlap by "
                    f"{SimTime(overlapped)} on a sequential resource"
                )


def render_gantt(perf: "PerformanceLibrary", final_time: SimTime,
                 width: int = 72) -> str:
    """ASCII occupancy chart: one row per process, '#' = busy."""
    span = final_time.femtoseconds
    if span <= 0:
        raise ReproError("cannot render a Gantt chart of an empty run")
    lines = [f"occupancy over {final_time} ('#' = resource busy)"]
    name_width = max((len(n) for n in perf.stats), default=8)
    for name in sorted(perf.stats):
        stats = perf.stats[name]
        cells = [" "] * width
        for start, end in merge_intervals(stats.intervals):
            first = min(width - 1, start * width // span)
            last = min(width - 1, max(first, (end * width - 1) // span))
            for cell in range(first, last + 1):
                cells[cell] = "#"
        lines.append(f"{name.ljust(name_width)} |{''.join(cells)}|"
                     f" ({stats.resource})")
    return "\n".join(lines)
