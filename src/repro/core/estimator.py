"""Segment estimation methods (paper §3).

Given the cost accumulation of one segment, produce the time that will
be back-annotated:

* **sequential (SW)** resources execute statements one after the other,
  so the segment time is simply the sum of operation times;
* **parallel (HW)** resources admit a whole design space between the
  fastest implementation (critical path, *Tmin*) and the cheapest one
  (single shared ALU, *Tmax* = sum); since "the library time annotation
  method can only manage one value, not a range", the paper interpolates
  with a per-resource constant::

      T = Tmin + (Tmax - Tmin) * k,     0 <= k <= 1

  where k=1 prioritizes cost and k=0 performance during HW synthesis.
"""

from __future__ import annotations

import dataclasses

from ..annotate.context import CostContext
from ..kernel.time import SimTime
from ..platform.resources import (
    ParallelResource,
    Resource,
    SequentialResource,
)


@dataclasses.dataclass(frozen=True)
class SegmentEstimate:
    """The two implementation bounds of one executed segment, in cycles."""

    t_max_cycles: float   # fully sequential (single ALU / processor)
    t_min_cycles: float   # fully parallel critical path

    def __post_init__(self):
        if self.t_min_cycles > self.t_max_cycles + 1e-9:
            raise ValueError(
                f"critical path ({self.t_min_cycles}) cannot exceed the "
                f"sequential bound ({self.t_max_cycles})"
            )

    def interpolate(self, k: float) -> float:
        """The paper's weighted mean ``Tmin + (Tmax - Tmin) * k``."""
        if not 0.0 <= k <= 1.0:
            raise ValueError(f"k must lie in [0, 1], got {k}")
        return self.t_min_cycles + (self.t_max_cycles - self.t_min_cycles) * k


def read_segment(context: CostContext) -> SegmentEstimate:
    """Snapshot the estimate of the segment accumulated in ``context``."""
    t_max, t_min = context.segment_totals()
    return SegmentEstimate(t_max_cycles=t_max, t_min_cycles=t_min)


def annotated_cycles(estimate: SegmentEstimate, resource: Resource) -> float:
    """The single cycle count back-annotated for this segment/resource."""
    if isinstance(resource, SequentialResource):
        return estimate.t_max_cycles
    if isinstance(resource, ParallelResource):
        return estimate.interpolate(resource.k_factor)
    return 0.0  # environment components are not analysed


def annotated_time(estimate: SegmentEstimate, resource: Resource) -> SimTime:
    """The back-annotated duration on the resource's clock."""
    return resource.clock.cycles_to_time(annotated_cycles(estimate, resource))
