"""Report rendering for the performance library.

"Total execution times for processes and resources are generated
automatically" (paper §4).  The report shows, per process: segments
executed, computation cycles, RTOS cycles and busy time; per resource:
busy time, RTOS share and utilization of the simulated span.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from ..kernel.time import SimTime
from ..platform.resources import SequentialResource

if TYPE_CHECKING:  # pragma: no cover
    from .analysis import PerformanceLibrary


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def process_rows(perf: "PerformanceLibrary") -> List[List[str]]:
    rows = []
    for name in sorted(perf.stats):
        stats = perf.stats[name]
        rows.append([
            name,
            stats.resource,
            str(stats.segments),
            f"{stats.cycles:.1f}",
            f"{stats.rtos_cycles:.1f}",
            f"{stats.busy_time.to_us():.3f}",
            f"{stats.arbitration_time.to_us():.3f}",
        ])
    return rows


def resource_rows(perf: "PerformanceLibrary", final_time: SimTime) -> List[List[str]]:
    rows = []
    span = final_time.femtoseconds
    for resource in perf.resources():
        busy = resource.busy_time
        utilization = busy.femtoseconds / span if span else 0.0
        switches = ""
        if isinstance(resource, SequentialResource):
            switches = str(resource.context_switches)
        rows.append([
            resource.name,
            resource.kind,
            f"{busy.to_us():.3f}",
            f"{resource.rtos_time.to_us():.3f}",
            f"{100.0 * utilization:.1f}%",
            switches,
        ])
    return rows


def render_report(perf: "PerformanceLibrary", final_time: SimTime) -> str:
    lines = [f"=== performance report (simulated span: {final_time}) ==="]
    lines.append("")
    lines.append("-- processes --")
    lines.extend(_format_table(
        ["process", "resource", "segments", "cycles", "rtos cycles",
         "busy us", "arbitration us"],
        process_rows(perf),
    ))
    lines.append("")
    lines.append("-- resources --")
    lines.extend(_format_table(
        ["resource", "kind", "busy us", "rtos us", "utilization", "switches"],
        resource_rows(perf, final_time),
    ))
    return "\n".join(lines)
