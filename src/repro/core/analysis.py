"""The performance-analysis library facade.

:class:`PerformanceLibrary` is the paper's deliverable: attached to an
*unmodified* design ("by simply including the library within a usual
simulation"), it

* builds one cost context per analysed process, keyed to the resource
  the architectural mapping assigns (SW: sum mode; HW: critical-path
  mode),
* installs the matching timing agent so the delta-cycle simulation
  becomes strict-timed,
* tracks segments dynamically (:class:`~repro.segments.SegmentTracker`),
* and aggregates the per-process / per-resource figures of the reports.

Usage::

    sim = Simulator()
    ...build design...
    mapping = Mapping()
    mapping.assign(process, cpu)
    perf = PerformanceLibrary(mapping)
    perf.attach(sim)
    sim.run()
    print(perf.report(sim.now))
"""

from __future__ import annotations

from typing import Dict, List

from ..annotate.context import CostContext, MODE_HW, MODE_SW, set_current
from ..compilebc.tier import set_tier
from ..errors import MappingError
from ..kernel.process import Process
from ..kernel.scheduler import SchedulerObserver
from ..kernel.simulator import Simulator
from ..kernel.time import SimTime
from ..kernel.tracing import TraceRecorder
from ..platform.mapping import Mapping
from ..platform.resources import (
    EnvironmentResource,
    ParallelResource,
    Resource,
    SequentialResource,
)
from ..segments.tracker import SegmentTracker
from .agents import HwTimingAgent, ProcessTimingStats, SwTimingAgent
from .reports import render_report


class PerformanceLibrary(SchedulerObserver):
    """Attachable system-level timing estimation (the paper's library).

    ``fastforward=True`` attaches a
    :class:`~repro.segments.FastForwardEngine` that pre-characterizes
    provably input-independent segments and skips their per-operation
    charging on re-execution; estimates are unchanged (the replayed
    bundles are exactly what dynamic charging would accumulate).
    ``check_fastforward=True`` instead runs the engine in differential
    mode: nothing is skipped, but every eligible segment re-execution is
    asserted to reproduce its first charge bundle byte-for-byte.

    ``compile=True`` installs the bytecode compile tier
    (:mod:`repro.compilebc`) above the fast path: executor-level kernel
    calls run as plain compiled bytecode with per-block folded charges,
    falling back to the interpreted annotated run for anything outside
    the compiler's subset.  ``check_compile=True`` additionally turns
    every compiled call into a differential against the interpreted
    ground truth (results, write-backs, cycles and operation counts
    must match exactly).
    """

    def __init__(self, mapping: Mapping, record_instantaneous: bool = False,
                 fastforward: bool = False, check_fastforward: bool = False,
                 compile: bool = False, check_compile: bool = False):
        self.mapping = mapping
        self.tracker = SegmentTracker(record_instantaneous=record_instantaneous)
        self.contexts: Dict[int, CostContext] = {}
        self.stats: Dict[str, ProcessTimingStats] = {}
        self.engine = None
        if fastforward or check_fastforward:
            from ..segments.precharge import FastForwardEngine
            self.engine = FastForwardEngine(self.contexts,
                                            check=check_fastforward)
        self.compile_tier = None
        if compile or check_compile:
            from ..compilebc.tier import CompileTier
            self.compile_tier = CompileTier(check=check_compile)
        self._attached = False

    # -- attachment ---------------------------------------------------------

    def attach(self, simulator: Simulator) -> "PerformanceLibrary":
        """Install agents and contexts on every process of ``simulator``.

        Every process must be mapped; map testbench/VC processes to an
        :class:`~repro.platform.EnvironmentResource` to exclude them from
        analysis (the paper: "For VCs and test-bench components no
        performance analysis is done").
        """
        if self._attached:
            raise MappingError("performance library is already attached")
        processes = simulator.scheduler.processes
        self.mapping.validate(processes)

        for process in processes:
            resource = self.mapping.resource_of(process)
            if isinstance(resource, EnvironmentResource):
                continue
            self._instrument(process, resource)

        # Tracker first: it must read each segment's accumulation before
        # the agent (called after all observers) resets the context.
        # The fast-forward engine goes in front of everything: after a
        # suppressed segment it re-attaches the context and replays the
        # recorded bundle before the tracker reads it.
        if self.engine is not None:
            simulator.add_observer(self.engine, front=True)
        simulator.add_observer(self.tracker)
        simulator.add_observer(self)
        self._attached = True
        return self

    def _instrument(self, process: Process, resource: Resource) -> None:
        if isinstance(resource, SequentialResource):
            context = CostContext(resource.costs, MODE_SW)
            stats = ProcessTimingStats(process.full_name, resource.name)
            process.agent = SwTimingAgent(resource, context, stats)
        elif isinstance(resource, ParallelResource):
            context = CostContext(resource.costs, MODE_HW)
            stats = ProcessTimingStats(process.full_name, resource.name)
            process.agent = HwTimingAgent(resource, context, stats)
        else:
            raise MappingError(
                f"cannot instrument {process.full_name!r}: resource "
                f"{resource.name!r} has unsupported kind {resource.kind!r}"
            )
        self.contexts[process.pid] = context
        self.stats[process.full_name] = stats

    # -- context switching (observer callbacks) -----------------------------

    def on_process_resume(self, process: Process, now: SimTime) -> None:
        # The compile-tier slot is scoped exactly like the current
        # context: installed while an analysed process runs, cleared on
        # suspend — no stale tier survives the simulation to route (or
        # double-run, in check mode) later annotated executor calls.
        set_tier(self.compile_tier if process.pid in self.contexts else None)
        if self.engine is not None and self.engine.is_suppressed(process.pid):
            set_current(None)  # segment is being fast-forwarded
            return
        set_current(self.contexts.get(process.pid))

    def on_process_suspend(self, process: Process, now: SimTime) -> None:
        set_current(None)
        set_tier(None)

    # -- results -------------------------------------------------------------

    def process_stats(self, process_name: str) -> ProcessTimingStats:
        return self.stats[process_name]

    def resources(self) -> List[Resource]:
        return [r for r in self.mapping.resources()
                if not isinstance(r, EnvironmentResource)]

    def report(self, final_time: SimTime) -> str:
        """The automatic global report: totals per process and resource."""
        return render_report(self, final_time)

    def segment_report(self) -> str:
        """The on-demand exact segment-level report."""
        return "\n".join(self.tracker.report_lines())


# ---------------------------------------------------------------------------
# Determinism checking (paper §6).
# ---------------------------------------------------------------------------

def determinism_fingerprint(trace: TraceRecorder) -> Dict[str, List[str]]:
    """Per-process ordered node sequences from a trace.

    The strict-timed simulation may legally reorder *inter*-process
    interleavings; each process's own control path, however, must be
    identical if the specification is deterministic.
    """
    fingerprint: Dict[str, List[str]] = {}
    for record in trace.records:
        if record.kind == "node-reached":
            fingerprint.setdefault(record.process, []).append(record.detail)
    return fingerprint


def check_determinism(untimed: TraceRecorder,
                      timed: TraceRecorder) -> List[str]:
    """Compare untimed vs strict-timed traces; return human-readable
    discrepancies (empty list = no divergence detected).

    A non-empty result means "the description is not deterministic
    (potentially wrong)" — the paper's §6 verification value.  The check
    is necessarily one-sided: identical fingerprints do not *prove*
    determinism, but any difference proves the design depends on the
    scheduling order.
    """
    differences: List[str] = []
    fp_untimed = determinism_fingerprint(untimed)
    fp_timed = determinism_fingerprint(timed)
    for name in sorted(set(fp_untimed) | set(fp_timed)):
        a = fp_untimed.get(name, [])
        b = fp_timed.get(name, [])
        if a == b:
            continue
        length = f"{len(a)} vs {len(b)} nodes"
        first = next(
            (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
            min(len(a), len(b)),
        )
        differences.append(
            f"process {name}: node sequences diverge at index {first} ({length})"
        )
    return differences
