"""The paper's performance-analysis library (primary contribution)."""

from .agents import HwTimingAgent, ProcessTimingStats, SwTimingAgent
from .analysis import (
    PerformanceLibrary,
    check_determinism,
    determinism_fingerprint,
)
from .estimator import (
    SegmentEstimate,
    annotated_cycles,
    annotated_time,
    read_segment,
)
from .occupancy import (
    assert_serialized,
    merge_intervals,
    overlap_fs,
    render_gantt,
    total_busy_fs,
)
from .reports import render_report

__all__ = [
    "HwTimingAgent", "ProcessTimingStats", "SwTimingAgent",
    "PerformanceLibrary", "check_determinism", "determinism_fingerprint",
    "SegmentEstimate", "annotated_cycles", "annotated_time", "read_segment",
    "assert_serialized", "merge_intervals", "overlap_fs", "render_gantt",
    "total_busy_fs",
    "render_report",
]
