"""repro.analysis — the model linter ("repro lint").

Static enforcement of the paper's §2 methodological contract: processes
interact only through predefined channels and timed waits, every
operation in an annotated kernel is cost-charged, and the static
segment graph matches what the simulation actually executed.

Grown out of :mod:`repro.segments.static`; see ``docs/analysis.md`` for
the rule catalog.
"""

from .diagnostics import (
    AnalysisResult,
    Diagnostic,
    RULES,
    Rule,
    Severity,
    apply_suppressions,
    register_rule,
    render_json,
    render_stats,
    render_text,
    rule_catalog,
    suppressions_in,
)
from .effects import (
    CallEffect,
    EffectEnv,
    EffectSummary,
    ModuleEffects,
    effects_report,
    kernel_effect,
    module_effects,
)
from .engine import (
    analyze_file,
    analyze_process,
    analyze_source,
    attach_parents,
    lint_paths,
)
from .live import lint_simulation
from .graphdiff import (
    GraphDiff,
    StaticSegmentGraph,
    build_static_graph,
    diff_graphs,
    diff_process,
)
from .passes import PASSES, find_kernels, find_process_bodies

__all__ = [
    "AnalysisResult",
    "CallEffect",
    "Diagnostic",
    "EffectEnv",
    "EffectSummary",
    "GraphDiff",
    "ModuleEffects",
    "PASSES",
    "RULES",
    "Rule",
    "Severity",
    "StaticSegmentGraph",
    "analyze_file",
    "analyze_process",
    "analyze_source",
    "apply_suppressions",
    "attach_parents",
    "build_static_graph",
    "diff_graphs",
    "diff_process",
    "effects_report",
    "find_kernels",
    "find_process_bodies",
    "kernel_effect",
    "lint_paths",
    "lint_simulation",
    "module_effects",
    "register_rule",
    "render_json",
    "render_stats",
    "render_text",
    "rule_catalog",
    "suppressions_in",
]
