"""Lint engine: parse, attach parents, run passes, apply suppressions.

Entry points:

* :func:`analyze_source` / :func:`analyze_file` — lint one module;
* :func:`lint_paths` — lint files and directories (the CLI's backend);
* :func:`analyze_process` — lint a *live* process body callable, with
  line numbers mapped back to the defining file.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Iterable, List, Optional, Sequence, Union

from ..errors import ReproError
from ..segments.static import parse_body
from .diagnostics import (
    AnalysisResult,
    Diagnostic,
    apply_suppressions,
)
from .passes import PASSES, RPR001


def attach_parents(tree: ast.AST) -> ast.AST:
    """Set ``.repro_parent`` on every node so passes can look upward."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.repro_parent = node
    return tree


def _select(diagnostics: Iterable[Diagnostic],
            rules: Optional[Sequence[str]]) -> List[Diagnostic]:
    if not rules:
        return list(diagnostics)
    wanted = set(rules)
    return [d for d in diagnostics if d.code in wanted]


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Sequence[str]] = None) -> AnalysisResult:
    """Run every analysis pass over ``source``; apply noqa suppression."""
    result = AnalysisResult(files=[path])
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.add([Diagnostic(
            RPR001, f"could not parse: {exc.msg}", path,
            exc.lineno or 0, (exc.offset or 1) - 1)])
        return result
    attach_parents(tree)
    diagnostics: List[Diagnostic] = []
    for pass_fn in PASSES:
        diagnostics.extend(pass_fn(tree, path, lines))
    diagnostics = _select(diagnostics, rules)
    result.add(apply_suppressions(diagnostics, lines))
    return result


def analyze_file(path: Union[str, pathlib.Path],
                 rules: Optional[Sequence[str]] = None) -> AnalysisResult:
    path = pathlib.Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    return analyze_source(source, str(path), rules)


def _python_files(target: pathlib.Path) -> List[pathlib.Path]:
    if target.is_dir():
        return sorted(p for p in target.rglob("*.py")
                      if "__pycache__" not in p.parts)
    return [target]


def lint_paths(targets: Sequence[Union[str, pathlib.Path]],
               rules: Optional[Sequence[str]] = None) -> AnalysisResult:
    """Lint every ``.py`` file under the given files/directories."""
    result = AnalysisResult()
    for raw in targets:
        target = pathlib.Path(raw)
        if not target.exists():
            raise ReproError(f"lint target does not exist: {target}")
        for path in _python_files(target):
            result.extend(analyze_file(path, rules))
    return result


def analyze_process(body,
                    rules: Optional[Sequence[str]] = None) -> AnalysisResult:
    """Lint one live process-body callable.

    The dedented extract is re-parsed, so line numbers are shifted back
    to match the defining file.
    """
    tree, first_line, source = parse_body(body)
    path = getattr(getattr(body, "__code__", None), "co_filename", "<process>")
    result = analyze_source(source, path, rules)
    offset = first_line - 1

    def shift(diag: Diagnostic) -> Diagnostic:
        if diag.line:
            return dataclasses.replace(diag, line=diag.line + offset)
        return diag

    result.diagnostics = [shift(d) for d in result.diagnostics]
    result.suppressed = [shift(d) for d in result.suppressed]
    return result
