"""Diagnostics framework for the model linter.

The analysis passes (:mod:`repro.analysis.passes`) express their
findings as :class:`Diagnostic` objects attached to a registered
:class:`Rule`.  Rules carry stable codes (``RPR001`` …) so suppression
comments and CI gates survive message rewording; the catalog lives in
``docs/analysis.md``.

Suppression follows the methodology contract rather than silencing it:
``# repro: noqa[RPR103]`` on the offending line hides the diagnostic
but the JSON report still records it (with the author's reason, when
one is given after ``--``), so "suppressed-with-reason" stays
auditable.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered lint rule with a stable public code."""

    code: str          # "RPR101"
    name: str          # "untimed-wait" (kebab-case slug)
    severity: Severity
    summary: str       # one-line description for `repro lint --rules`

    def describe(self) -> str:
        return f"{self.code} {self.name} [{self.severity}]: {self.summary}"


#: code -> Rule.  Populated at import time by :func:`register_rule`.
RULES: Dict[str, Rule] = {}

_CODE_RE = re.compile(r"^RPR\d{3}$")


def register_rule(code: str, name: str, severity: Severity,
                  summary: str) -> Rule:
    """Register a rule under a stable code; duplicate codes are a bug."""
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code must look like RPR123, got {code!r}")
    if code in RULES:
        raise ValueError(f"duplicate rule code {code}")
    rule = Rule(code, name, severity, summary)
    RULES[code] = rule
    return rule


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a source span."""

    rule: Rule
    message: str
    path: str = "<string>"
    line: int = 0            # 1-based; 0 = whole file
    col: int = 0             # 0-based, as in ast
    source: str = ""         # the offending source line, stripped
    #: populated when a noqa comment hid this diagnostic
    suppressed: bool = False
    suppress_reason: str = ""

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def describe(self) -> str:
        location = f"{self.path}:{self.line}:{self.col + 1}"
        text = f"{location}: {self.code} [{self.severity}] {self.message}"
        if self.suppressed:
            reason = self.suppress_reason or "no reason given"
            text += f"  (suppressed: {reason})"
        return text

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule.name,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "source": self.source,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

#: ``# repro: noqa[RPR101]`` / ``# repro: noqa[RPR101,RPR103] -- reason``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*(?:--|:)\s*(?P<reason>.*\S))?"
)


def suppressions_in(source_lines: Sequence[str]) -> Dict[int, Tuple[frozenset, str]]:
    """Map 1-based line number -> (codes, reason) for noqa comments."""
    found: Dict[int, Tuple[frozenset, str]] = {}
    for index, text in enumerate(source_lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
            if code.strip()
        )
        found[index] = (codes, (match.group("reason") or "").strip())
    return found


def apply_suppressions(diagnostics: Iterable[Diagnostic],
                       source_lines: Sequence[str]) -> List[Diagnostic]:
    """Mark diagnostics hidden by a same-line noqa comment as suppressed."""
    noqa = suppressions_in(source_lines)
    out: List[Diagnostic] = []
    for diag in diagnostics:
        entry = noqa.get(diag.line)
        if entry is not None and diag.code in entry[0]:
            diag = dataclasses.replace(diag, suppressed=True,
                                       suppress_reason=entry[1])
        out.append(diag)
    return out


# ---------------------------------------------------------------------------
# Result container + reporters
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class AnalysisResult:
    """Findings of one lint run (possibly aggregated over many files)."""

    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    suppressed: List[Diagnostic] = dataclasses.field(default_factory=list)
    files: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no *active* (non-suppressed) diagnostic remains."""
        return not self.diagnostics

    def extend(self, other: "AnalysisResult") -> "AnalysisResult":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.files.extend(other.files)
        return self

    def add(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diag in diagnostics:
            (self.suppressed if diag.suppressed else self.diagnostics).append(diag)

    def counts(self) -> Dict[str, int]:
        by_severity: Dict[str, int] = {}
        for diag in self.diagnostics:
            key = str(diag.severity)
            by_severity[key] = by_severity.get(key, 0) + 1
        return by_severity

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.path, d.line, d.col, d.code))

    def rule_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-rule tallies: ``{"RPR201": {"active": 2, "suppressed": 1}}``."""
        counts: Dict[str, Dict[str, int]] = {}
        for diag in self.diagnostics:
            entry = counts.setdefault(diag.code,
                                      {"active": 0, "suppressed": 0})
            entry["active"] += 1
        for diag in self.suppressed:
            entry = counts.setdefault(diag.code,
                                      {"active": 0, "suppressed": 0})
            entry["suppressed"] += 1
        return counts

    def suppression_reasons(self) -> List[dict]:
        """The audit trail of every suppressed finding, location-sorted."""
        return [
            {"code": diag.code, "path": diag.path, "line": diag.line,
             "reason": diag.suppress_reason}
            for diag in sorted(self.suppressed,
                               key=lambda d: (d.path, d.line, d.code))
        ]


def render_text(result: AnalysisResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [diag.describe() for diag in result.sorted_diagnostics()]
    counts = result.counts()
    summary = ", ".join(f"{counts[key]} {key}(s)"
                        for key in ("error", "warning", "info") if key in counts)
    checked = f"{len(result.files)} file(s) checked"
    if result.clean:
        note = f"clean: {checked}"
        if result.suppressed:
            note += f", {len(result.suppressed)} suppressed finding(s)"
        lines.append(note)
    else:
        lines.append(f"{summary} in {checked}"
                     + (f", {len(result.suppressed)} suppressed"
                        if result.suppressed else ""))
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-oriented report (the CI artifact format)."""
    payload = {
        "version": 2,
        "files": sorted(result.files),
        "summary": result.counts(),
        "clean": result.clean,
        "rules": result.rule_counts(),
        "suppressed_rules": sorted(
            {d.code for d in result.suppressed}),
        "suppression_reasons": result.suppression_reasons(),
        "diagnostics": [d.as_dict() for d in result.sorted_diagnostics()],
        "suppressed": [d.as_dict() for d in sorted(
            result.suppressed, key=lambda d: (d.path, d.line, d.code))],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats(result: AnalysisResult) -> str:
    """The ``repro lint --stats`` appendix: per-rule counts plus the
    suppressed-diagnostic audit trail."""
    lines = ["rule statistics:"]
    counts = result.rule_counts()
    if not counts:
        lines.append("  (no findings)")
    for code in sorted(counts):
        entry = counts[code]
        rule = RULES.get(code)
        name = f" {rule.name}" if rule else ""
        lines.append(f"  {code}{name}: {entry['active']} active, "
                     f"{entry['suppressed']} suppressed")
    suppressed_codes = sorted({d.code for d in result.suppressed})
    if suppressed_codes:
        lines.append(f"suppressed rule set: {', '.join(suppressed_codes)}")
        for item in result.suppression_reasons():
            reason = item["reason"] or "no reason given"
            lines.append(f"  {item['path']}:{item['line']}: "
                         f"{item['code']} -- {reason}")
    else:
        lines.append("suppressed rule set: (empty)")
    return "\n".join(lines)


def rule_catalog() -> str:
    """The `repro lint --rules` listing."""
    lines = ["model-lint rule catalog (see docs/analysis.md for examples):"]
    for code in sorted(RULES):
        lines.append("  " + RULES[code].describe())
    return "\n".join(lines)
