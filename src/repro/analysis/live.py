"""Live lint: check a *simulated* design, not just its source.

The static linter (``repro lint <paths>``) sees files; this layer sees
the running system.  After a simulation finishes, :func:`lint_simulation`
walks every registered process of the simulator and

* re-runs the static rule catalog over each process body
  (:func:`~repro.analysis.engine.analyze_process` — line numbers map
  back to the defining file), and
* diffs each body's static segment graph against what the
  :class:`~repro.segments.SegmentTracker` actually observed
  (:func:`~repro.analysis.graphdiff.diff_process` — RPR401 "node never
  visited", RPR402 "segment never executed").

``repro lint --live <script.py>`` drives this over unmodified example
scripts via :class:`~repro.observe.ObserveSession`-style default
observers: the tracker attaches to every simulator the script builds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ReproError
from .diagnostics import AnalysisResult
from .engine import analyze_process
from .graphdiff import diff_process

#: process names whose dynamic graph the tracker never saw (e.g. the
#: process was registered but the simulation ended before it ran).
_UNTRACKED = "untracked"


def lint_simulation(simulator, tracker,
                    rules: Optional[Sequence[str]] = None,
                    skipped: Optional[List[str]] = None) -> AnalysisResult:
    """Lint every process of a finished simulation.

    ``tracker`` must have observed the run (added before ``run()``).
    Processes without a ``body`` reference (not registered through
    ``Module.add_process``) and processes the tracker never saw are
    skipped; their names are appended to ``skipped`` when given.
    """
    result = AnalysisResult()
    for process in simulator.iter_processes():
        body = getattr(process, "body", None)
        if body is None:
            if skipped is not None:
                skipped.append(f"{process.full_name} (no body reference)")
            continue
        path = getattr(getattr(body, "__code__", None),
                       "co_filename", "<process>")
        try:
            static = analyze_process(body, rules)
        except (ReproError, OSError, TypeError) as exc:
            if skipped is not None:
                skipped.append(f"{process.full_name} (source unavailable: "
                               f"{exc})")
            continue
        result.extend(static)
        if process.full_name not in tracker.graphs:
            if skipped is not None:
                skipped.append(f"{process.full_name} ({_UNTRACKED})")
            continue
        diff = diff_process(process, tracker)
        result.add(_select(diff.to_diagnostics(path), rules))
        if path not in result.files:
            result.files.append(path)
    # Several processes often share one defining file.
    result.files = sorted(set(result.files))
    return result


def _select(diagnostics, rules):
    if not rules:
        return diagnostics
    wanted = {str(r).upper() for r in rules}
    return [d for d in diagnostics if d.code in wanted]


__all__ = ["lint_simulation"]
