"""Interprocedural effect summaries — the call-graph layer of the linter.

The passes in :mod:`repro.analysis.passes` and the fast-forward purity
analysis in :mod:`repro.segments.precharge` both stop at function
boundaries: a helper call is either invisible (race pass) or assumed to
charge anything (precharge).  This module builds whole-program effect
knowledge in two complementary layers:

**Static layer** (:func:`module_effects`) — per-function
:class:`EffectSummary` objects over one parsed module: shared-state
reads and writes with alias-aware provenance (direct, via helper call,
through an argument alias, through a returned alias), parameter
mutations, return aliases, channel operations, wait sites, an
operation-count multiset, and a purity verdict.  Summaries are computed
bottom-up over the intra-module call graph with a fixpoint, so effects
propagate through recursion and helper chains.  The race pass consumes
this to make RPR201 interprocedural (rules RPR202/RPR203), and
``repro lint --effects`` dumps it as a JSON report.

**Concrete layer** (:func:`kernel_effect`, :class:`EffectEnv`) — an
abstract interpreter over *live* callables (resolved through closures
and globals) that classifies the **charge multiset** of a call for the
precharge engine:

* ``zero`` — the call provably charges no operation at all;
* ``constant`` — it charges the same fixed multiset on every call;
* ``uniform`` — the multiset is a function of steady plain shape/scalar
  values only (e.g. a kernel whose loop trip counts come from argument
  values that do not change between executions of one arc);
* ``impure`` — the multiset can genuinely differ between executions
  (data-dependent branches around charging code).

Soundness model: verdicts only classify *execution-independence* — the
actual op counts are still captured dynamically by the fast-forward
engine on the arc's first execution, and ``check_fastforward`` asserts
byte-identical bundles on every re-execution.  Over-approximating
``zero`` as ``constant`` is therefore harmless; the fatal errors are
(a) calling ``constant``/``uniform`` something whose multiset varies
between executions of one arc, and (b) marking *transparent* a call
that leaks annotated values into reachable state (a later charge would
then depend on whether this segment was suppressed).  Every approved
call must be transparent: it returns, stores, and publishes only plain
values, so suppressed execution (no active context — ``aint`` and
friends return plain values) is functionally identical.

``uniform`` verdicts additionally rest on the steady-shape premise: the
shapes and control scalars feeding a call site do not change across
executions of one arc.  That holds for the pipeline workloads (fixed
frame/subframe geometry) and is *validated*, not assumed, by the
differential check mode.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
import inspect
import json
import textwrap
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..segments.static import CHANNEL_OPERATIONS, parse_body

# ---------------------------------------------------------------------------
# Charge verdict lattice
# ---------------------------------------------------------------------------

ZERO = "zero"
CONSTANT = "constant"
UNIFORM = "uniform"
IMPURE = "impure"

_VERDICT_ORDER = {ZERO: 0, CONSTANT: 1, UNIFORM: 2, IMPURE: 3}


def join_verdicts(*verdicts: str) -> str:
    """Least upper bound on the zero < constant < uniform < impure chain."""
    worst = ZERO
    for verdict in verdicts:
        if _VERDICT_ORDER[verdict] > _VERDICT_ORDER[worst]:
            worst = verdict
    return worst


# ---------------------------------------------------------------------------
# Shared AST helpers (self-contained: passes.py imports *us*)
# ---------------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)

_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "popleft",
})

_BUILTIN_NAMES = frozenset(dir(builtins))


def _own_walk(fn: ast.AST):
    """Walk ``fn`` without descending into nested function/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _base_name(expr: ast.AST) -> Optional[str]:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            if not hasattr(child, "repro_parent"):
                child.repro_parent = node


def _is_channel_mediated(name_node: ast.Name) -> bool:
    """True when this use of the name is the target of a channel op."""
    node: ast.AST = name_node
    parent = getattr(node, "repro_parent", None)
    while isinstance(parent, (ast.Attribute, ast.Subscript)):
        node, parent = parent, getattr(parent, "repro_parent", None)
    return (isinstance(parent, ast.Call) and parent.func is node
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr in CHANNEL_OPERATIONS)


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    ordered = [a.arg for a in args.posonlyargs + args.args]
    ordered += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        ordered.append(args.vararg.arg)
    if args.kwarg:
        ordered.append(args.kwarg.arg)
    return ordered


def _scope_locals(fn: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """(locals, declared nonlocal/global) of ``fn``'s own scope."""
    locals_: Set[str] = set(_param_names(fn))
    declared: Set[str] = set()
    for node in _own_walk(fn):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            locals_.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                locals_.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                locals_.add(alias.asname or alias.name)
    return locals_ - declared, declared


def _is_wait_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else "")
    return name in ("wait", "WaitFor")


# ---------------------------------------------------------------------------
# Static layer: per-function effect summaries over one module
# ---------------------------------------------------------------------------

#: Provenance kinds of a shared-state write.
DIRECT = "direct"
HELPER = "helper"
ARG_ALIAS = "arg-alias"
RETURN_ALIAS = "return-alias"


@dataclasses.dataclass(frozen=True)
class Access:
    """One shared-state access with provenance."""

    name: str      # the shared name as seen from this function's scope
    line: int      # where this function performs/triggers the access
    how: str       # human description ("element assignment", ...)
    kind: str      # direct | helper | arg-alias | return-alias
    via: str = ""  # helper name for propagated accesses

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class EffectSummary:
    """Effects of one function definition, after the module fixpoint."""

    def __init__(self, fn: ast.FunctionDef, qualname: str):
        self.fn = fn
        self.name = fn.name
        self.qualname = qualname
        self.lineno = fn.lineno
        self.params = _param_names(fn)
        self.locals, self.declared = _scope_locals(fn)
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, Access] = {}
        #: param name -> (line, how) for element-writes/mutations rooted
        #: at a parameter (the caller's argument is mutated through us).
        self.param_mutations: Dict[str, Tuple[int, str]] = {}
        #: names whose value may escape through ``return`` (free names
        #: and parameters returned as bare names).
        self.return_aliases: Set[str] = set()
        self.channel_ops: List[Tuple[str, str, int]] = []
        self.wait_sites: List[int] = []
        #: bare-name calls: (callee name, line, arg root names or None)
        self.calls: List[Tuple[str, int, Tuple[Optional[str], ...]]] = []
        #: ``x = helper()`` result bindings: local -> callee name
        self.result_bindings: Dict[str, str] = {}
        #: element-writes/mutations on *local* names (alias candidates)
        self.local_writes: Dict[str, Tuple[int, str]] = {}
        #: operation-count multiset of the body (AST operator classes)
        self.ops: Counter = Counter()
        self._collect()

    # -- base (intraprocedural) collection ------------------------------

    def _record_write(self, name: str, line: int, how: str) -> None:
        if name in self.params:
            self.param_mutations.setdefault(name, (line, how))
        elif name in self.locals:
            self.local_writes.setdefault(name, (line, how))
        elif name not in _BUILTIN_NAMES:
            self.writes.setdefault(name, Access(name, line, how, DIRECT))

    def _collect(self) -> None:
        fn = self.fn
        for node in _own_walk(fn):
            if isinstance(node, ast.Name):
                name = node.id
                if isinstance(node.ctx, ast.Store):
                    if name in self.declared:
                        self.writes.setdefault(
                            name, Access(name, node.lineno,
                                         "rebinding", DIRECT))
                elif isinstance(node.ctx, ast.Load):
                    if (name not in self.locals
                            and name not in _BUILTIN_NAMES
                            and not _is_channel_mediated(node)):
                        self.reads.setdefault(name, node.lineno)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _base_name(target)
                        if root:
                            self._record_write(root, node.lineno,
                                               "element assignment")
                if (isinstance(node, ast.Assign) and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)):
                    self.result_bindings.setdefault(
                        node.targets[0].id, node.value.func.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in _MUTATORS:
                        root = _base_name(func)
                        if root and root not in _BUILTIN_NAMES:
                            self._record_write(root, node.lineno,
                                               f".{func.attr}() call")
                    if func.attr in CHANNEL_OPERATIONS:
                        try:
                            target = ast.unparse(func.value)
                        except Exception:
                            target = "?"
                        self.channel_ops.append(
                            (target, func.attr, node.lineno))
                elif isinstance(func, ast.Name):
                    roots = tuple(
                        arg.id if isinstance(arg, ast.Name) else None
                        for arg in node.args)
                    self.calls.append((func.id, node.lineno, roots))
                if _is_wait_call(node):
                    self.wait_sites.append(node.lineno)
            if isinstance(node, (ast.BinOp, ast.AugAssign)):
                self.ops[type(node.op).__name__] += 1
            elif isinstance(node, ast.Compare):
                for op in node.ops:
                    self.ops[type(op).__name__] += 1
            elif isinstance(node, ast.UnaryOp):
                self.ops[type(node.op).__name__] += 1
            elif isinstance(node, ast.Subscript):
                self.ops["Load" if isinstance(node.ctx, ast.Load)
                         else "Store"] += 1
            if isinstance(node, ast.Return) and isinstance(node.value,
                                                           ast.Name):
                name = node.value.id
                if name in self.params or name not in self.locals:
                    self.return_aliases.add(name)

    # -- queries ---------------------------------------------------------

    @property
    def pure(self) -> bool:
        """No shared-state write escapes this function (reads allowed)."""
        return not self.writes and not self.param_mutations

    def touched(self) -> Set[str]:
        return set(self.reads) | set(self.writes)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.lineno,
            "params": list(self.params),
            "pure": self.pure,
            "reads": dict(sorted(self.reads.items())),
            "writes": [self.writes[k].as_dict()
                       for k in sorted(self.writes)],
            "param_mutations": {k: {"line": v[0], "how": v[1]}
                                for k, v in
                                sorted(self.param_mutations.items())},
            "return_aliases": sorted(self.return_aliases),
            "channel_ops": [{"target": t, "op": o, "line": ln}
                            for t, o, ln in self.channel_ops],
            "wait_sites": sorted(self.wait_sites),
            "calls": sorted({c[0] for c in self.calls}),
            "ops": dict(sorted(self.ops.items())),
        }


class ModuleEffects:
    """All function summaries of one module, fixpointed over call sites."""

    _MAX_PASSES = 10

    def __init__(self, tree: ast.AST):
        _attach_parents(tree)
        self.summaries: Dict[int, EffectSummary] = {}
        #: (scope node id, name) -> summary, for call resolution
        self._by_scope: Dict[Tuple[int, str], EffectSummary] = {}
        self._module_level: Dict[str, EffectSummary] = {}
        self._index(tree)
        self._fixpoint()

    def _index(self, tree: ast.AST) -> None:
        def qual(fn: ast.FunctionDef) -> str:
            parts = [fn.name]
            node = getattr(fn, "repro_parent", None)
            while node is not None:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    parts.append(node.name)
                node = getattr(node, "repro_parent", None)
            return ".".join(reversed(parts))

        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            summary = EffectSummary(node, qual(node))
            self.summaries[id(node)] = summary
            scope = getattr(node, "repro_parent", None)
            while scope is not None and not isinstance(
                    scope, (ast.Module, ast.FunctionDef,
                            ast.AsyncFunctionDef, ast.ClassDef)):
                scope = getattr(scope, "repro_parent", None)
            self._by_scope[(id(scope), node.name)] = summary
            if isinstance(scope, ast.Module) or scope is None:
                self._module_level[node.name] = summary

    def of(self, fn: ast.FunctionDef) -> Optional[EffectSummary]:
        return self.summaries.get(id(fn))

    def resolve(self, caller: EffectSummary,
                name: str) -> Optional[EffectSummary]:
        """Same-scope sibling first, else a module-level definition."""
        scope = getattr(caller.fn, "repro_parent", None)
        while scope is not None and not isinstance(
                scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
                        ast.ClassDef)):
            scope = getattr(scope, "repro_parent", None)
        sibling = self._by_scope.get((id(scope), name))
        if sibling is not None:
            return sibling
        return self._module_level.get(name)

    def _size(self) -> int:
        return sum(len(s.reads) + len(s.writes) + len(s.param_mutations)
                   + len(s.return_aliases)
                   for s in self.summaries.values())

    def _fixpoint(self) -> None:
        for _ in range(self._MAX_PASSES):
            before = self._size()
            for summary in self.summaries.values():
                self._propagate_into(summary)
            if self._size() == before:
                break

    def _propagate_into(self, caller: EffectSummary) -> None:
        for callee_name, line, arg_roots in caller.calls:
            callee = self.resolve(caller, callee_name)
            if callee is None or callee is caller:
                continue
            # Free writes/reads of the helper become the caller's —
            # unless the caller has its own local binding of the name
            # (a different variable entirely).
            for name, access in callee.writes.items():
                if name in caller.locals or name in _BUILTIN_NAMES:
                    continue
                caller.writes.setdefault(name, Access(
                    name, line, f"call to {callee_name}()",
                    HELPER, via=callee_name))
            for name in callee.reads:
                if name in caller.locals or name in _BUILTIN_NAMES:
                    continue
                caller.reads.setdefault(name, line)
            # Parameter mutations flow back through bare-name arguments.
            for param, (_pline, how) in callee.param_mutations.items():
                try:
                    index = callee.params.index(param)
                except ValueError:
                    continue
                if index >= len(arg_roots) or arg_roots[index] is None:
                    continue
                root = arg_roots[index]
                if root in _BUILTIN_NAMES:
                    continue
                if root in caller.params:
                    caller.param_mutations.setdefault(root, (line, how))
                elif root not in caller.locals:
                    caller.writes.setdefault(root, Access(
                        root, line, f"{how} via {callee_name}()",
                        ARG_ALIAS, via=callee_name))
            # Aliases escaping through the helper's return value: a
            # mutation of `x` after `x = helper()` hits the aliased name.
            for target, bound_callee in caller.result_bindings.items():
                if bound_callee != callee_name:
                    continue
                if target not in caller.local_writes:
                    continue
                wline, how = caller.local_writes[target]
                for rname in callee.return_aliases:
                    if rname in callee.params:
                        try:
                            index = callee.params.index(rname)
                        except ValueError:
                            continue
                        if (index >= len(arg_roots)
                                or arg_roots[index] is None):
                            continue
                        visible = arg_roots[index]
                    else:
                        visible = rname
                    if (visible in caller.locals
                            or visible in _BUILTIN_NAMES):
                        continue
                    if visible in caller.params:
                        caller.param_mutations.setdefault(
                            visible, (wline, how))
                    else:
                        caller.writes.setdefault(visible, Access(
                            visible, wline,
                            f"{how} on alias returned by {callee_name}()",
                            RETURN_ALIAS, via=callee_name))


def module_effects(tree: ast.AST) -> ModuleEffects:
    """Build fixpointed effect summaries for every function in ``tree``."""
    return ModuleEffects(tree)


def effects_report(targets: Sequence) -> str:
    """JSON effect-summary report over files/directories (CLI backend)."""
    import pathlib

    from ..errors import ReproError
    from .engine import _python_files

    files: Dict[str, list] = {}
    for raw in targets:
        target = pathlib.Path(raw)
        if not target.exists():
            raise ReproError(f"effects target does not exist: {target}")
        for path in _python_files(target):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                files[str(path)] = []
                continue
            effects = module_effects(tree)
            files[str(path)] = [
                summary.as_dict() for summary in sorted(
                    effects.summaries.values(), key=lambda s: s.lineno)]
    payload = {
        "version": 1,
        "files": files,
        "functions": sum(len(v) for v in files.values()),
        "impure": sum(1 for v in files.values()
                      for s in v if not s["pure"]),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Concrete layer: charge-verdict interpretation of live callables
# ---------------------------------------------------------------------------

#: Value kinds for the abstract interpreter.
PLAIN = "plain"     # provably a plain Python value (never charges)
ANNOT = "annot"     # provably an annotated value (charges deterministically)
EITHER = "either"   # could be either: charges become value-dependent

_MISSING = object()


@dataclasses.dataclass
class AVal:
    """Abstract value: a kind plus an optional concrete constant."""

    kind: str
    const: Any = _MISSING

    @property
    def has_const(self) -> bool:
        return self.const is not _MISSING

    def fold(self) -> Any:
        """The constant when it is foldable plain data, else _MISSING."""
        if self.has_const and isinstance(self.const, (int, bool, str, float)):
            return self.const
        return _MISSING


def _join_kinds(a: str, b: str) -> str:
    if a == b:
        return a
    return EITHER


def _join_avals(a: Optional[AVal], b: Optional[AVal]) -> AVal:
    if a is None:
        return b if b is not None else AVal(EITHER)
    if b is None:
        return a
    kind = _join_kinds(a.kind, b.kind)
    if (a.has_const and b.has_const and a.const is b.const):
        return AVal(kind, a.const)
    if (a.has_const and b.has_const and a.fold() is not _MISSING
            and a.fold() == b.fold()):
        return AVal(kind, a.const)
    return AVal(kind)


@dataclasses.dataclass(frozen=True)
class CallEffect:
    """Outcome of analyzing one call."""

    verdict: str            # zero | constant | uniform | impure
    transparent: bool       # no annotated value leaks out of the call
    result: str             # kind of the returned value
    reason: str = ""

    @property
    def approved(self) -> bool:
        """Safe to treat the call as charge-classified in a plan."""
        return self.transparent and self.verdict != IMPURE


_OPAQUE = CallEffect(IMPURE, False, EITHER, "unresolvable call")

#: Methods of plain builtin containers that never charge.
_PLAIN_METHODS = frozenset(_MUTATORS | {
    "get", "items", "keys", "values", "index", "count", "copy", "join",
    "split", "strip", "startswith", "endswith",
})

#: Builtins that are charge-free on plain operands.
_FREE_BUILTINS = frozenset({
    "range", "len", "int", "float", "bool", "abs", "min", "max", "list",
    "tuple", "dict", "print", "isinstance", "repr", "str",
})

#: Analysis caches (cleared via clear_effect_caches).
_FUNCTION_CACHE: Dict[tuple, CallEffect] = {}
_IN_PROGRESS: Set[int] = set()


def clear_effect_caches() -> None:
    _FUNCTION_CACHE.clear()
    _IN_PROGRESS.clear()


def _annotate_intrinsics() -> dict:
    from ..annotate import functions as afn
    return {
        id(afn.aint): "aint",
        id(afn.arange): "arange",
        id(afn.make_array): "make_array",
        id(afn.branch): "branch",
    }


def _unwrap_fn():
    from ..annotate.types import unwrap
    return unwrap


class EffectEnv:
    """Name-resolution environment of one live callable.

    Resolves bare names through the callable's closure cells, globals
    and builtins, and classifies calls found in its AST via the
    concrete interpreter.  All entry points are exception-safe: any
    failure degrades to "unknown" (``None`` / opaque), never an error —
    the analysis must not break plan building.
    """

    def __init__(self, fn) -> None:
        self.fn = fn
        self._cells: Dict[str, Any] = {}
        code = getattr(fn, "__code__", None)
        closure = getattr(fn, "__closure__", None)
        if code is not None and closure:
            for name, cell in zip(code.co_freevars, closure):
                try:
                    self._cells[name] = cell.cell_contents
                except ValueError:
                    pass
        self._globals = getattr(fn, "__globals__", {}) or {}
        self._local_imports: Optional[Dict[str, Any]] = None

    @classmethod
    def for_callable(cls, fn) -> Optional["EffectEnv"]:
        try:
            if getattr(fn, "__code__", None) is None:
                return None
            return cls(fn)
        except Exception:
            return None

    def resolve_name(self, name: str) -> Tuple[bool, Any]:
        if name in self._cells:
            return True, self._cells[name]
        if name in self._globals:
            return True, self._globals[name]
        if hasattr(builtins, name):
            return True, getattr(builtins, name)
        imports = self._local_import_bindings()
        if name in imports:
            return True, imports[name]
        return False, None

    def _local_import_bindings(self) -> Dict[str, Any]:
        """Names bound by import statements *inside* the callable.

        Module-level imports surface through ``__globals__`` above, but
        the common function-local-import idiom (used to break cycles)
        leaves the helper invisible there, so cross-file helper calls
        used to fall back to opaque even with the callee importable.
        Resolution is restricted to the callable's own top-level
        package — live modules only, never a speculative import of
        third-party code — and any failure degrades to "not found".
        """
        if self._local_imports is not None:
            return self._local_imports
        bindings: Dict[str, Any] = {}
        try:
            module_name = getattr(self.fn, "__module__", "") or ""
            top_level = module_name.partition(".")[0]
            package = self._globals.get("__package__") or \
                module_name.rpartition(".")[0]
            tree = ast.parse(textwrap.dedent(inspect.getsource(self.fn)))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    target = node.module or ""
                    if node.level:
                        parts = package.split(".") if package else []
                        if node.level > 1:
                            parts = parts[:len(parts) - (node.level - 1)]
                        target = ".".join(parts + ([target] if target
                                                   else []))
                    module = self._same_package_module(target, top_level)
                    if module is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        if hasattr(module, alias.name):
                            bindings[bound] = getattr(module, alias.name)
                        else:
                            sub = self._same_package_module(
                                f"{target}.{alias.name}", top_level)
                            if sub is not None:
                                bindings[bound] = sub
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        module = self._same_package_module(alias.name,
                                                           top_level)
                        if module is None:
                            continue
                        if alias.asname:
                            bindings[alias.asname] = module
                        else:
                            root = self._same_package_module(
                                alias.name.partition(".")[0], top_level)
                            if root is not None:
                                bindings[alias.name.partition(".")[0]] = root
        except Exception:
            pass
        self._local_imports = bindings
        return bindings

    @staticmethod
    def _same_package_module(target: str, top_level: str):
        if not target or not top_level \
                or target.partition(".")[0] != top_level:
            return None
        import importlib
        import sys
        module = sys.modules.get(target)
        if module is not None:
            return module
        try:
            return importlib.import_module(target)
        except Exception:
            return None

    # -- call classification (precharge's entry point) -------------------

    def call_effect(self, call: ast.Call,
                    plain_names: Set[str]) -> Optional[CallEffect]:
        """Classify one Call node appearing in the owning body."""
        try:
            return self._call_effect(call, plain_names)
        except Exception:
            return None

    def _call_effect(self, call: ast.Call,
                     plain_names: Set[str]) -> Optional[CallEffect]:
        if call.keywords:
            return None
        args = []
        for arg in call.args:
            args.append(self._arg_aval(arg, plain_names))
        func = call.func
        if isinstance(func, ast.Name):
            found, value = self.resolve_name(func.id)
            if not found:
                return None
            return dispatch_call(value, None, args)
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            found, base = self.resolve_name(func.value.id)
            if not found:
                return None
            try:
                attr = inspect.getattr_static(base, func.attr)
            except AttributeError:
                return None
            if inspect.isfunction(attr) and not inspect.ismodule(base) \
                    and not inspect.isclass(base):
                return dispatch_call(attr, base, args)
            if callable(attr):
                return dispatch_call(attr, None, args)
            return None
        return None

    def _arg_aval(self, node: ast.AST, plain_names: Set[str]) -> AVal:
        if isinstance(node, ast.Constant):
            return AVal(PLAIN, node.value)
        if isinstance(node, ast.Name):
            if node.id in plain_names:
                return AVal(PLAIN)
            found, value = self.resolve_name(node.id)
            if found:
                return _aval_of_object(value)
            return AVal(EITHER)
        if isinstance(node, (ast.Tuple, ast.List)):
            kinds = [self._arg_aval(e, plain_names).kind for e in node.elts]
            if all(k == PLAIN for k in kinds):
                return AVal(PLAIN)
            return AVal(EITHER)
        return AVal(EITHER)


_PLAIN_DATA = (int, float, bool, str, bytes, list, tuple, dict, set,
               frozenset, type(None), range)


def _aval_of_object(value: Any) -> AVal:
    """Kind of a concretely resolved object (kept for call resolution)."""
    try:
        from ..annotate.types import ABool, AFloat, AInt
        from ..annotate.types import AArray
        if isinstance(value, (AInt, AFloat, ABool, AArray)):
            return AVal(ANNOT, value)
    except Exception:
        pass
    if isinstance(value, _PLAIN_DATA) or callable(value):
        return AVal(PLAIN, value)
    # Arbitrary plain object (e.g. a Stage instance): plain kind, and
    # keep the object so attribute resolution stays concrete.
    return AVal(PLAIN, value)


def plain_locals(fn: ast.FunctionDef, env: Optional[EffectEnv]) -> Set[str]:
    """Greatest fixpoint of "this local only ever holds plain values".

    Coinductive: start from all bound names assumed plain, remove any
    name with a binding that cannot be proven plain under the current
    assumption, repeat until stable.  The circular case this breaks is
    the pipeline idiom ``payload = stage.run(execute, payload)`` —
    payload's plainness depends on the call, whose analysis needs
    payload's plainness.  Channel-read results (``x = yield from
    ch.read()``) are plain by the single-source contract: transparent
    producers only publish plain values (validated by check mode).
    """
    bound: Set[str] = set()
    for node in _own_walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    bound.update(_param_names(fn))
    plain = set(bound)

    def expr_plain(node: ast.AST) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Name):
            if node.id in bound:
                return node.id in plain
            if env is not None:
                found, value = env.resolve_name(node.id)
                if found:
                    return _aval_of_object(value).kind == PLAIN
            return False
        if isinstance(node, ast.YieldFrom):
            value = node.value
            return (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in CHANNEL_OPERATIONS)
        if isinstance(node, ast.Yield):
            return True  # wait() yields send None back
        if isinstance(node, ast.BinOp):
            return expr_plain(node.left) and expr_plain(node.right)
        if isinstance(node, ast.UnaryOp):
            return expr_plain(node.operand)
        if isinstance(node, ast.Compare):
            return (expr_plain(node.left)
                    and all(expr_plain(c) for c in node.comparators))
        if isinstance(node, ast.Subscript):
            return expr_plain(node.value) and expr_plain(node.slice)
        if isinstance(node, ast.Slice):
            return (expr_plain(node.lower) and expr_plain(node.upper)
                    and expr_plain(node.step))
        if isinstance(node, ast.Attribute):
            return expr_plain(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(expr_plain(e) for e in node.elts)
        if isinstance(node, ast.Call):
            if env is None:
                return False
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "range" and not node.keywords):
                return all(expr_plain(a) for a in node.args)
            effect = env.call_effect(node, plain)
            return (effect is not None and effect.transparent
                    and effect.result == PLAIN)
        return False

    for _ in range(len(bound) + 1):
        demoted: Set[str] = set()
        for node in _own_walk(fn):
            if isinstance(node, ast.Assign):
                ok = expr_plain(node.value)
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if (isinstance(leaf, ast.Name)
                                and isinstance(leaf.ctx, ast.Store)
                                and leaf.id in plain and not ok):
                            demoted.add(leaf.id)
            elif isinstance(node, ast.AugAssign):
                if (isinstance(node.target, ast.Name)
                        and node.target.id in plain):
                    if not (expr_plain(node.value)
                            and node.target.id in plain):
                        demoted.add(node.target.id)
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name) \
                        and node.target.id in plain:
                    iter_ = node.iter
                    ok = (isinstance(iter_, ast.Call)
                          and isinstance(iter_.func, ast.Name)
                          and iter_.func.id == "range") or expr_plain(iter_)
                    if not ok:
                        demoted.add(node.target.id)
            elif isinstance(node, (ast.With, ast.Try)):
                pass  # bindings inside walk normally via Assign
        if not demoted:
            break
        plain -= demoted
    return plain


# ---------------------------------------------------------------------------
# The interpreter proper
# ---------------------------------------------------------------------------

def dispatch_call(fn: Any, self_obj: Any,
                  args: List[AVal]) -> CallEffect:
    """Classify calling ``fn`` (optionally bound to ``self_obj``)."""
    try:
        return _dispatch_call(fn, self_obj, args)
    except Exception:
        return _OPAQUE


def _dispatch_call(fn: Any, self_obj: Any, args: List[AVal]) -> CallEffect:
    intrinsics = _annotate_intrinsics()
    role = intrinsics.get(id(fn))
    if role == "aint":
        return CallEffect(ZERO, True, ANNOT, "aint intrinsic")
    if role == "make_array":
        return CallEffect(ZERO, True, ANNOT, "make_array intrinsic")
    if role == "branch":
        return CallEffect(CONSTANT, True, PLAIN, "branch intrinsic")
    if role == "arange":
        # a bare arange() call builds a generator; only the For header
        # form is modelled (see _Interp._exec_for).
        return CallEffect(IMPURE, False, EITHER, "arange outside a loop")
    if fn is _unwrap_fn():
        return CallEffect(ZERO, True, PLAIN, "unwrap intrinsic")

    marker = getattr(fn, "__repro_effects__", None)
    if isinstance(marker, dict) and marker.get("kind") == "executor":
        return _executor_effect(args)

    wrapped = getattr(fn, "__wrapped__", None)
    if wrapped is not None and callable(wrapped):
        inner = _dispatch_call(wrapped, self_obj, args)
        if not inner.transparent:
            return inner
        return CallEffect(join_verdicts(CONSTANT, inner.verdict),
                          inner.transparent, inner.result,
                          f"annotated_function({inner.reason})")

    if inspect.isfunction(fn):
        return _function_effect(fn, self_obj, args)
    if inspect.ismethod(fn):
        return _function_effect(fn.__func__, fn.__self__, args)
    if fn in (range, len, int, float, bool, abs, repr, str, isinstance):
        if all(a.kind != EITHER for a in args):
            # len/int/float/bool are free accessors even on annotated
            # values (AInt.__int__, AArray.__len__ never charge).
            return CallEffect(ZERO, True, PLAIN, f"builtin {fn.__name__}")
        return CallEffect(IMPURE, False, EITHER, "builtin on unknown kind")
    if fn in (list, tuple, dict, set):
        if all(a.kind == PLAIN for a in args):
            return CallEffect(ZERO, True, PLAIN, "plain constructor")
        return CallEffect(IMPURE, False, EITHER,
                          "constructor on annotated value")
    name = getattr(fn, "__name__", "")
    if name in _PLAIN_METHODS and self_obj is None:
        # e.g. a bound list.append resolved concretely
        if all(a.kind == PLAIN for a in args):
            return CallEffect(ZERO, True, PLAIN, f"plain method {name}")
        return CallEffect(IMPURE, False, EITHER, "annotated into container")
    return _OPAQUE


def _executor_effect(args: List[AVal]) -> CallEffect:
    """The annotated-executor intrinsic: verdict = the kernel's.

    ``annotated_executor`` is transparent by construction: it wraps the
    arguments, runs the kernel on fully annotated values, writes plain
    lists back (``original[:] = array.to_list()``) and returns
    ``int(unwrap(result))`` — no annotated value escapes, whatever the
    kernel does internally.  Its charge profile is the kernel's, with
    every parameter annotated.
    """
    if not args:
        return _OPAQUE
    kernel = args[0]
    if not kernel.has_const or not callable(kernel.const):
        return CallEffect(IMPURE, False, PLAIN, "unresolved kernel")
    inner = kernel_effect(kernel.const)
    return CallEffect(inner.verdict, True, PLAIN,
                      f"executor({getattr(kernel.const, '__name__', '?')}:"
                      f"{inner.verdict})")


def kernel_effect(fn) -> CallEffect:
    """Charge verdict of a kernel run with every parameter annotated."""
    try:
        target = inspect.unwrap(fn)
        n_params = target.__code__.co_argcount
        return _function_effect(target, None,
                                [AVal(ANNOT)] * n_params,
                                wrapper_charge=(fn is not target))
    except Exception:
        return _OPAQUE


def _function_effect(fn, self_obj: Any, args: List[AVal],
                     wrapper_charge: bool = False) -> CallEffect:
    sig = tuple(a.kind for a in args)
    key = (id(fn), id(self_obj) if self_obj is not None else None, sig)
    cached = _FUNCTION_CACHE.get(key)
    if cached is not None:
        return cached
    code = getattr(fn, "__code__", None)
    if code is None:
        return _OPAQUE
    if id(code) in _IN_PROGRESS:
        return CallEffect(IMPURE, False, EITHER, "recursive call")
    _IN_PROGRESS.add(id(code))
    try:
        effect = _analyze_function(fn, self_obj, args)
    except Exception:
        effect = _OPAQUE
    finally:
        _IN_PROGRESS.discard(id(code))
    if wrapper_charge and effect.transparent:
        effect = CallEffect(join_verdicts(CONSTANT, effect.verdict),
                            effect.transparent, effect.result,
                            effect.reason)
    _FUNCTION_CACHE[key] = effect
    return effect


def _analyze_function(fn, self_obj: Any, args: List[AVal]) -> CallEffect:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return _OPAQUE
    fdef = next((n for n in ast.walk(tree)
                 if isinstance(n, ast.FunctionDef)), None)
    if fdef is None:
        return _OPAQUE
    params = _param_names(fdef)
    interp = _Interp(fn)
    values = list(args)
    if self_obj is not None:
        values = [AVal(PLAIN, self_obj)] + values
    if len(values) > len(params):
        return _OPAQUE
    for index, param in enumerate(params):
        interp.vars[param] = (values[index] if index < len(values)
                              else AVal(EITHER))
    verdict = interp.exec_stmts(fdef.body)
    result = interp.result_kind()
    return CallEffect(verdict, interp.transparent, result,
                      f"analyzed {getattr(fn, '__qualname__', fn)}")


class _Interp:
    """Abstract interpreter accumulating a charge verdict for one body."""

    _MAX_LOOP_PASSES = 4

    def __init__(self, fn):
        self.fn = fn
        self.env = EffectEnv(fn)
        self.vars: Dict[str, AVal] = {}
        self.transparent = True
        self.returns: List[str] = []

    def result_kind(self) -> str:
        if not self.returns:
            return PLAIN  # implicit None
        kind = self.returns[0]
        for other in self.returns[1:]:
            kind = _join_kinds(kind, other)
        return kind

    # -- name/value resolution -------------------------------------------

    def lookup(self, name: str) -> AVal:
        if name in self.vars:
            return self.vars[name]
        found, value = self.env.resolve_name(name)
        if found:
            aval = _aval_of_object(value)
            # Module-level UPPER_CASE ints are steady constants; other
            # resolved data contributes its kind only (it may mutate).
            if isinstance(value, (int, bool, float, str)) or callable(value):
                return aval
            return AVal(aval.kind, value) if aval.kind == PLAIN else aval
        return AVal(EITHER)

    # -- expression evaluation -------------------------------------------

    def eval(self, node: ast.AST) -> Tuple[AVal, str]:
        """(abstract value, charge verdict) of evaluating ``node``."""
        if node is None:
            return AVal(PLAIN, None), ZERO
        if isinstance(node, ast.Constant):
            return AVal(PLAIN, node.value), ZERO
        if isinstance(node, ast.Name):
            return self.lookup(node.id), ZERO
        if isinstance(node, ast.Attribute):
            base, verdict = self.eval(node.value)
            if base.kind == ANNOT:
                return AVal(EITHER), join_verdicts(verdict, IMPURE)
            if base.has_const:
                try:
                    attr = inspect.getattr_static(base.const, node.attr)
                    if isinstance(attr, (staticmethod, classmethod,
                                         property)):
                        return AVal(EITHER), join_verdicts(verdict, IMPURE)
                    if inspect.isfunction(attr):
                        return AVal(PLAIN, _Bound(attr, base.const)), verdict
                    return _aval_of_attr(attr), verdict
                except AttributeError:
                    return AVal(EITHER), join_verdicts(verdict, IMPURE)
            if base.kind == PLAIN:
                return AVal(PLAIN), verdict
            return AVal(EITHER), join_verdicts(verdict, IMPURE)
        if isinstance(node, ast.BinOp):
            left, v1 = self.eval(node.left)
            right, v2 = self.eval(node.right)
            verdict = join_verdicts(v1, v2)
            return self._binop(left, right, node.op, verdict)
        if isinstance(node, ast.UnaryOp):
            operand, verdict = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                # truth test: free on plain, branch charge on ABool
                if operand.kind == PLAIN:
                    return AVal(PLAIN), verdict
                if operand.kind == ANNOT:
                    return AVal(PLAIN), join_verdicts(verdict, CONSTANT)
                return AVal(EITHER), IMPURE
            if operand.kind == PLAIN:
                folded = operand.fold()
                if folded is not _MISSING and isinstance(node.op, ast.USub):
                    try:
                        return AVal(PLAIN, -folded), verdict
                    except TypeError:
                        pass
                return AVal(PLAIN), verdict
            if operand.kind == ANNOT:
                return AVal(ANNOT), join_verdicts(verdict, CONSTANT)
            return AVal(EITHER), IMPURE
        if isinstance(node, ast.Compare):
            left, verdict = self.eval(node.left)
            kinds = [left.kind]
            for comparator in node.comparators:
                aval, v = self.eval(comparator)
                kinds.append(aval.kind)
                verdict = join_verdicts(verdict, v)
            if ANNOT in kinds:
                return AVal(ANNOT), join_verdicts(verdict, CONSTANT)
            if all(k == PLAIN for k in kinds):
                return AVal(PLAIN), verdict
            return AVal(EITHER), IMPURE
        if isinstance(node, ast.Subscript):
            base, v1 = self.eval(node.value)
            index, v2 = self.eval(node.slice)
            verdict = join_verdicts(v1, v2)
            if base.kind == ANNOT:
                if isinstance(node.slice, ast.Slice):
                    return AVal(EITHER), IMPURE  # AArray has no slicing
                return AVal(ANNOT), join_verdicts(verdict, CONSTANT)
            if base.kind == PLAIN and index.kind != ANNOT:
                return AVal(PLAIN), verdict
            if base.kind == PLAIN and index.kind == ANNOT:
                # plain[AInt] goes through AInt.__index__ — free
                return AVal(PLAIN), verdict
            return AVal(EITHER), IMPURE
        if isinstance(node, ast.Slice):
            verdict = ZERO
            for part in (node.lower, node.upper, node.step):
                aval, v = self.eval(part)
                verdict = join_verdicts(verdict, v)
                if aval.kind == ANNOT:
                    return AVal(EITHER), IMPURE
                if aval.kind == EITHER:
                    verdict = IMPURE
            return AVal(PLAIN), verdict
        if isinstance(node, (ast.Tuple, ast.List)):
            verdict = ZERO
            kinds = []
            for elt in node.elts:
                aval, v = self.eval(elt)
                verdict = join_verdicts(verdict, v)
                kinds.append(aval.kind)
            kind = PLAIN if all(k == PLAIN for k in kinds) else (
                EITHER if EITHER in kinds else PLAIN)
            return AVal(kind), verdict
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            return AVal(EITHER), IMPURE  # short-circuit: data-dependent
        if isinstance(node, ast.BoolOp):
            return AVal(EITHER), IMPURE
        return AVal(EITHER), IMPURE

    def _binop(self, left: AVal, right: AVal, op,
               verdict: str) -> Tuple[AVal, str]:
        if left.kind == ANNOT or right.kind == ANNOT:
            # at least one definitely annotated operand: exactly one op
            # charges, whatever the other side holds (reflected ops too)
            return AVal(ANNOT), join_verdicts(verdict, CONSTANT)
        if left.kind == PLAIN and right.kind == PLAIN:
            lf, rf = left.fold(), right.fold()
            if lf is not _MISSING and rf is not _MISSING:
                folded = _fold_binop(lf, rf, op)
                if folded is not _MISSING:
                    return AVal(PLAIN, folded), verdict
            return AVal(PLAIN), verdict
        return AVal(EITHER), IMPURE

    def _eval_call(self, node: ast.Call) -> Tuple[AVal, str]:
        if node.keywords:
            return AVal(EITHER), IMPURE
        arg_avals: List[AVal] = []
        verdict = ZERO
        for arg in node.args:
            aval, v = self.eval(arg)
            verdict = join_verdicts(verdict, v)
            arg_avals.append(aval)
        func = node.func
        target: Any = _MISSING
        self_obj = None
        if isinstance(func, ast.Name):
            aval = self.lookup(func.id)
            if aval.has_const and callable(aval.const):
                target = aval.const
        elif isinstance(func, ast.Attribute):
            base, bverdict = self.eval(func.value)
            verdict = join_verdicts(verdict, bverdict)
            if base.has_const and base.kind == PLAIN:
                try:
                    attr = inspect.getattr_static(base.const, func.attr)
                except AttributeError:
                    attr = _MISSING
                if attr is not _MISSING and inspect.isfunction(attr) \
                        and not inspect.ismodule(base.const) \
                        and not inspect.isclass(base.const):
                    target, self_obj = attr, base.const
                elif attr is not _MISSING and callable(attr):
                    target = attr
            elif base.kind == PLAIN and func.attr in _PLAIN_METHODS:
                # method on a provably plain container
                if all(a.kind == PLAIN for a in arg_avals):
                    return AVal(PLAIN), verdict
                self.transparent = False
                return AVal(EITHER), IMPURE
        if isinstance(target, _Bound):
            self_obj, target = target.self_obj, target.fn
        if target is _MISSING:
            self.transparent = False
            return AVal(EITHER), IMPURE
        effect = dispatch_call(target, self_obj, arg_avals)
        if not effect.transparent:
            self.transparent = False
            return AVal(EITHER), IMPURE
        return AVal(effect.result), join_verdicts(verdict, effect.verdict)

    # -- boolean contexts -------------------------------------------------

    def eval_test(self, node: ast.AST) -> Tuple[AVal, str]:
        """A test position adds the implicit ``__bool__`` charge."""
        aval, verdict = self.eval(node)
        if aval.kind == ANNOT:
            return aval, join_verdicts(verdict, CONSTANT)  # ABool branch
        if aval.kind == EITHER:
            return aval, IMPURE
        return aval, verdict

    # -- statements --------------------------------------------------------

    def exec_stmts(self, stmts: Sequence[ast.stmt]) -> str:
        verdict = ZERO
        for stmt in stmts:
            verdict = join_verdicts(verdict, self.exec_stmt(stmt))
        return verdict

    def _bind_target(self, target: ast.AST, value: AVal) -> str:
        if isinstance(target, ast.Name):
            self.vars[target.id] = value
            return ZERO
        if isinstance(target, ast.Subscript):
            base, v1 = self.eval(target.value)
            _index, v2 = self.eval(target.slice)
            verdict = join_verdicts(v1, v2)
            if base.kind == ANNOT:
                return join_verdicts(verdict, CONSTANT)  # AArray store
            if base.kind == PLAIN:
                if value.kind != PLAIN:
                    self.transparent = False
                return verdict
            return IMPURE
        if isinstance(target, ast.Attribute):
            base, verdict = self.eval(target.value)
            if value.kind != PLAIN:
                self.transparent = False
            if base.kind == EITHER:
                return IMPURE
            return verdict
        if isinstance(target, (ast.Tuple, ast.List)):
            verdict = ZERO
            for elt in target.elts:
                part = AVal(PLAIN) if value.kind == PLAIN else AVal(EITHER)
                verdict = join_verdicts(verdict, self._bind_target(elt, part))
            return verdict
        return IMPURE

    def exec_stmt(self, stmt: ast.stmt) -> str:
        if isinstance(stmt, ast.Assign):
            value, verdict = self.eval(stmt.value)
            for target in stmt.targets:
                verdict = join_verdicts(verdict,
                                        self._bind_target(target, value))
            return verdict
        if isinstance(stmt, ast.AugAssign):
            value, v1 = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.lookup(stmt.target.id)
                result, v2 = self._binop(current, value, stmt.op, v1)
                self.vars[stmt.target.id] = result
                return v2
            current, v2 = self.eval(stmt.target)
            result, v3 = self._binop(current, value, stmt.op,
                                     join_verdicts(v1, v2))
            return join_verdicts(v3, self._bind_target(stmt.target, result))
        if isinstance(stmt, ast.AnnAssign):
            value, verdict = self.eval(stmt.value)
            if stmt.value is not None:
                verdict = join_verdicts(verdict,
                                        self._bind_target(stmt.target, value))
            return verdict
        if isinstance(stmt, ast.Expr):
            _value, verdict = self.eval(stmt.value)
            return verdict
        if isinstance(stmt, ast.Return):
            value, verdict = self.eval(stmt.value)
            self.returns.append(value.kind)
            return verdict
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Break, ast.Continue)):
            return ZERO
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt)
        if isinstance(stmt, ast.While):
            return self._exec_while(stmt)
        if isinstance(stmt, ast.Assert):
            _aval, verdict = self.eval_test(stmt.test)
            return verdict
        # With / Try / Raise / nested defs / Delete / ... — opaque.
        self.transparent = False
        return IMPURE

    def _exec_if(self, stmt: ast.If) -> str:
        test, test_verdict = self.eval_test(stmt.test)
        folded = test.fold()
        if test.kind == PLAIN and folded is not _MISSING:
            # statically decided branch: execute only the taken side
            branch = stmt.body if folded else stmt.orelse
            return join_verdicts(test_verdict, self.exec_stmts(branch))
        saved = dict(self.vars)
        body_verdict = self.exec_stmts(stmt.body)
        body_vars = self.vars
        self.vars = dict(saved)
        else_verdict = self.exec_stmts(stmt.orelse)
        else_vars = self.vars
        self.vars = {}
        for name in set(body_vars) | set(else_vars):
            self.vars[name] = _join_avals(body_vars.get(name),
                                          else_vars.get(name))
        if test.kind == EITHER:
            return IMPURE
        if body_verdict == ZERO and else_verdict == ZERO:
            # whichever branch runs, nothing extra charges: the If's
            # whole contribution is the (fixed) test + bool charge
            return test_verdict
        # branch choice decides between different charge multisets
        return IMPURE

    def _iter_info(self, node: ast.For):
        """(head verdict/iter, target kind, trips-const) of a For header."""
        iter_ = node.iter
        if isinstance(iter_, ast.Call) and not iter_.keywords:
            func = iter_.func
            target_fn = None
            if isinstance(func, ast.Name):
                aval = self.lookup(func.id)
                if aval.has_const and callable(aval.const):
                    target_fn = aval.const
            args: List[AVal] = []
            args_verdict = ZERO
            for arg in iter_.args:
                aval, v = self.eval(arg)
                args_verdict = join_verdicts(args_verdict, v)
                args.append(aval)
            trips_const = all(a.kind == PLAIN and a.fold() is not _MISSING
                              for a in args)
            if any(a.kind == EITHER for a in args):
                return None
            if target_fn is range:
                return args_verdict, ZERO, PLAIN, trips_const
            if id(target_fn) in _annotate_intrinsics() \
                    and _annotate_intrinsics()[id(target_fn)] == "arange":
                return args_verdict, CONSTANT, ANNOT, trips_const
            return None
        aval, verdict = self.eval(iter_)
        if aval.kind == PLAIN:
            return verdict, ZERO, PLAIN, False
        if aval.kind == ANNOT:
            # iterating an AArray charges one load per element
            return verdict, CONSTANT, ANNOT, False
        return None

    def _loop_fixpoint(self, bind_target, body: Sequence[ast.stmt],
                       orelse: Sequence[ast.stmt]) -> str:
        pre_vars = dict(self.vars)
        per_iter = ZERO
        for _ in range(self._MAX_LOOP_PASSES):
            before = {k: (v.kind, v.fold()) for k, v in self.vars.items()}
            bind_target()
            per_iter = join_verdicts(per_iter, self.exec_stmts(body))
            # join with the loop-entry state: the loop may run zero
            # times, and iteration N+1 sees the join of both paths
            self.vars = {
                name: _join_avals(self.vars.get(name), pre_vars.get(name))
                for name in set(self.vars) | set(pre_vars)
            }
            after = {k: (v.kind, v.fold()) for k, v in self.vars.items()}
            if after == before:
                break
        if orelse:
            per_iter = join_verdicts(per_iter, self.exec_stmts(orelse))
        return per_iter

    def _exec_for(self, stmt: ast.For) -> str:
        info = self._iter_info(stmt)
        if info is None:
            self.transparent = False
            return IMPURE
        head_verdict, per_iter_head, target_kind, trips_const = info

        def bind():
            self._bind_target(stmt.target, AVal(target_kind))

        body_verdict = self._loop_fixpoint(bind, stmt.body, stmt.orelse)
        per_iter = join_verdicts(per_iter_head, body_verdict)
        return join_verdicts(head_verdict,
                             self._loop_verdict(per_iter, trips_const))

    def _exec_while(self, stmt: ast.While) -> str:
        test, test_verdict = self.eval_test(stmt.test)
        folded = test.fold()
        if test.kind == PLAIN and folded is not _MISSING and not folded:
            return test_verdict  # while False: skipped entirely
        if test.kind == EITHER:
            self.transparent = False
            return IMPURE

        def bind():
            pass

        body_verdict = self._loop_fixpoint(bind, stmt.body, stmt.orelse)
        # the test re-evaluates each iteration; re-derive it on the
        # widened state so data-kind drift is caught
        test2, test_verdict2 = self.eval_test(stmt.test)
        if test2.kind == EITHER:
            return IMPURE
        per_iter = join_verdicts(test_verdict, test_verdict2, body_verdict)
        return self._loop_verdict(per_iter, trips_const=False)

    @staticmethod
    def _loop_verdict(per_iter: str, trips_const: bool) -> str:
        if per_iter in (ZERO, IMPURE):
            return per_iter
        if trips_const:
            return per_iter
        # fixed multiset per iteration, value-dependent trip count: the
        # total is a function of steady shape/scalar values
        return join_verdicts(per_iter, UNIFORM)


class _Bound:
    """A concretely resolved bound method (function + receiver)."""

    __slots__ = ("fn", "self_obj")

    def __init__(self, fn, self_obj):
        self.fn = fn
        self.self_obj = self_obj

    def __call__(self, *args, **kwargs):  # pragma: no cover - not executed
        return self.fn(self.self_obj, *args, **kwargs)


def _fold_binop(left, right, op):
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.LShift):
            return left << right
        if isinstance(op, ast.RShift):
            return left >> right
        if isinstance(op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.BitOr):
                return left | right
            return left ^ right
    except Exception:
        return _MISSING
    return _MISSING


def _aval_of_attr(value: Any) -> AVal:
    """Kind of an instance/class attribute: kind only, never folded —
    instance state (e.g. ``self.history``) mutates between calls."""
    aval = _aval_of_object(value)
    if callable(value):
        return aval
    return AVal(aval.kind, value) if not isinstance(
        value, (int, float, bool, str)) else AVal(aval.kind)
