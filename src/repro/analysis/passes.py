"""The analysis passes: protocol, shared-state race, annotation coverage.

Each pass is a function ``(tree, path, lines) -> List[Diagnostic]``
over a parsed module whose nodes carry ``.repro_parent`` links (set by
:func:`repro.analysis.engine.attach_parents`).  The passes enforce the
paper's §2 methodological contract statically:

* **protocol pass** — processes interact with the rest of the system
  *only* through predefined channels and ``wait(sc_time)``, driven by
  the generator yield protocol (RPR101–RPR105);
* **race pass** — no shared state between processes outside channels;
  under strict-timed reordering such state is a nondeterminism bug, not
  a style issue (RPR201);
* **annotation pass** — every operation inside an annotated kernel goes
  through the overloaded cost-charging types; native arithmetic or
  builtins silently under-count segment costs (RPR301–RPR303).
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..annotate.functions import (
    ANNOTATION_DECORATORS,
    ANNOTATION_ENTRY_POINTS,
    ANNOTATION_WRAPPERS,
)
from ..segments.static import CHANNEL_OPERATIONS
from .diagnostics import Diagnostic, Severity, register_rule
from .effects import ARG_ALIAS, DIRECT, HELPER, RETURN_ALIAS, module_effects

# ---------------------------------------------------------------------------
# Rule catalog (stable codes; see docs/analysis.md)
# ---------------------------------------------------------------------------

RPR001 = register_rule(
    "RPR001", "parse-error", Severity.ERROR,
    "file could not be parsed; nothing else was checked")
RPR101 = register_rule(
    "RPR101", "untimed-wait", Severity.ERROR,
    "wait() without a duration — untimed waits are outside the methodology")
RPR102 = register_rule(
    "RPR102", "literal-wait-duration", Severity.ERROR,
    "wait() with a bare number — durations must be SimTime quantities")
RPR103 = register_rule(
    "RPR103", "unyielded-channel-op", Severity.ERROR,
    "channel operation not driven with `yield from` — it never executes")
RPR104 = register_rule(
    "RPR104", "non-channel-target", Severity.ERROR,
    "channel operation on a target that is provably not a channel")
RPR105 = register_rule(
    "RPR105", "unreachable-after-loop", Severity.WARNING,
    "code after an infinite segment loop with no break never runs")
RPR201 = register_rule(
    "RPR201", "shared-state-race", Severity.ERROR,
    "state shared by several processes without channel mediation")
RPR202 = register_rule(
    "RPR202", "race-via-helper", Severity.ERROR,
    "process mutates shared state through a helper call chain")
RPR203 = register_rule(
    "RPR203", "aliased-shared-state-escape", Severity.ERROR,
    "shared state escapes through a return/argument alias and is mutated")
RPR301 = register_rule(
    "RPR301", "native-loop-in-kernel", Severity.WARNING,
    "range() loop in an annotated kernel — use arange so bookkeeping charges")
RPR302 = register_rule(
    "RPR302", "uncharged-builtin", Severity.WARNING,
    "builtin call in an annotated kernel bypasses operator cost accounting")
RPR303 = register_rule(
    "RPR303", "annotation-stripped", Severity.WARNING,
    "int()/float() inside a kernel loop strips cost tracking from the value")
RPR401 = register_rule(
    "RPR401", "never-visited-node", Severity.WARNING,
    "static node site never reached by the simulation (estimates incomplete)")
RPR402 = register_rule(
    "RPR402", "never-executed-segment", Severity.INFO,
    "statically possible segment never executed by the simulation")

#: Methods considered channel operations (mirrors segments.static).
CHANNEL_OPS = CHANNEL_OPERATIONS

#: Factory methods/classes whose results are channel-like (exempt from
#: the race rule: access through them *is* the mediation).
_FACTORY_METHODS = frozenset({
    "fifo", "rendezvous", "signal", "shared_variable", "point",
    "add_port", "module",
})
_FACTORY_CLASSES = frozenset({
    "Fifo", "Rendezvous", "Signal", "SharedVariable", "Port",
    "CaptureBoard", "CapturePoint",
})

#: Container methods that mutate their receiver.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "popleft",
})

#: Calls/decorators that mark a function as an annotated kernel —
#: sourced from repro.annotate so the two stay in sync.
_KERNEL_MARKERS = ANNOTATION_ENTRY_POINTS
_KERNEL_DECORATORS = ANNOTATION_DECORATORS

#: Builtins whose work is invisible to the cost context.
_UNCHARGED_BUILTINS = frozenset({
    "sum", "min", "max", "sorted", "map", "filter", "enumerate", "zip",
    "reversed", "round", "pow", "divmod", "any", "all",
})

#: Wrappers that legitimately re-enter the annotated domain.
_ANNOTATION_WRAPPERS = ANNOTATION_WRAPPERS

_BUILTIN_NAMES = frozenset(dir(builtins))

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def own_walk(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk ``fn`` without descending into nested function/class scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "repro_parent", None)


def base_name(expr: ast.AST) -> Optional[str]:
    """Root Name of an Attribute/Subscript chain, or None."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def call_name(call: ast.Call) -> str:
    """The called name: ``f(...)`` -> "f", ``a.b.f(...)`` -> "f"."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def is_generator(fn: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_walk(fn))


def is_channel_op_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in CHANNEL_OPS)


def _function_defs(tree: ast.AST) -> List[ast.FunctionDef]:
    return [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]


def _decorator_names(fn: ast.FunctionDef) -> Set[str]:
    names = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _source_at(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _diag(rule, message: str, node: ast.AST, path: str,
          lines: Sequence[str]) -> Diagnostic:
    lineno = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    return Diagnostic(rule, message, path, lineno, col,
                      _source_at(lines, lineno))


def _added_process_names(tree: ast.AST) -> Set[str]:
    """Names passed (as bare names) to any ``*.add_process(...)`` call."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_process"
                and node.args and isinstance(node.args[0], ast.Name)):
            names.add(node.args[0].id)
    return names


def find_process_bodies(tree: ast.AST) -> List[ast.FunctionDef]:
    """Generator functions that look like (or are registered as) processes."""
    registered = _added_process_names(tree)
    bodies = []
    for fn in _function_defs(tree):
        if not is_generator(fn):
            continue
        if fn.name in registered:
            bodies.append(fn)
            continue
        for node in own_walk(fn):
            if isinstance(node, ast.YieldFrom):
                bodies.append(fn)
                break
            if (isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)
                    and (call_name(node.value) in ("wait", "WaitFor", "Mark")
                         or is_channel_op_call(node.value))):
                # yielding a channel-op call is itself the RPR103 misuse,
                # so it still marks the function as a process body
                bodies.append(fn)
                break
    return bodies


def _registered_entry_points() -> frozenset:
    """Kernel names announced by the workload registry.

    Native-typed kernels (wrapped arguments, no in-body markers) are
    invisible to the marker scan below; the registry names them.  Lazy
    import: repro.workloads is a leaf package the analysis layer must
    not hard-depend on (and the import would be cyclic at module load).
    """
    try:
        from ..workloads import entry_point_names
    except ImportError:  # pragma: no cover - stripped installs
        return frozenset()
    return frozenset(entry_point_names())


def find_kernels(tree: ast.AST) -> List[ast.FunctionDef]:
    """Non-generator functions written in the annotated single-source style."""
    kernels = []
    registered = _registered_entry_points()
    for fn in _function_defs(tree):
        if is_generator(fn):
            continue
        if (_decorator_names(fn) & _KERNEL_DECORATORS
                or fn.name in registered):
            kernels.append(fn)
            continue
        for node in own_walk(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _KERNEL_MARKERS):
                kernels.append(fn)
                break
    return kernels


# ---------------------------------------------------------------------------
# Protocol pass (RPR101..RPR105)
# ---------------------------------------------------------------------------

def _constant_aliases(fn: ast.FunctionDef) -> Dict[str, ast.Constant]:
    """Names assigned a literal constant somewhere in ``fn``."""
    aliases: Dict[str, ast.Constant] = {}
    for node in own_walk(fn):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            if isinstance(node.value, ast.Constant):
                aliases[node.targets[0].id] = node.value
            else:
                aliases.pop(node.targets[0].id, None)
    return aliases


def _has_toplevel_break(loop: ast.While) -> bool:
    """True when ``loop`` contains a break that exits *this* loop."""
    def scan(stmts) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.Break):
                return True
            if isinstance(stmt, (ast.For, ast.While, ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # a break in there belongs to the inner loop
            if isinstance(stmt, ast.If):
                if scan(stmt.body) or scan(stmt.orelse):
                    return True
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    if scan(block):
                        return True
                for handler in stmt.handlers:
                    if scan(handler.body):
                        return True
            elif isinstance(stmt, ast.With):
                if scan(stmt.body):
                    return True
        return False
    return scan(loop.body)


def _is_const_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def protocol_pass(tree: ast.AST, path: str,
                  lines: Sequence[str]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for body in find_process_bodies(tree):
        aliases = _constant_aliases(body)
        for node in own_walk(body):
            if isinstance(node, ast.Call) and call_name(node) == "wait":
                if not node.args and not node.keywords:
                    diagnostics.append(_diag(
                        RPR101,
                        "wait() needs a SimTime duration; event-style "
                        "untimed waits are not part of the methodology",
                        node, path, lines))
                elif (len(node.args) == 1
                      and isinstance(node.args[0], ast.Constant)
                      and isinstance(node.args[0].value, (int, float))
                      and not isinstance(node.args[0].value, bool)):
                    diagnostics.append(_diag(
                        RPR102,
                        f"wait({node.args[0].value!r}) passes a bare number; "
                        "wrap it in a SimTime (e.g. SimTime.ns(...))",
                        node, path, lines))
            if is_channel_op_call(node):
                parent = parent_of(node)
                op = node.func.attr
                target = ast.unparse(node.func.value)
                if isinstance(parent, ast.YieldFrom):
                    root = base_name(node.func)
                    if root is not None and root in aliases:
                        constant = aliases[root]
                        diagnostics.append(_diag(
                            RPR104,
                            f"{target}.{op}() targets {root!r} which holds "
                            f"the constant {constant.value!r}, not a channel",
                            node, path, lines))
                elif isinstance(parent, ast.Yield):
                    diagnostics.append(_diag(
                        RPR103,
                        f"`yield {target}.{op}(...)` yields the generator "
                        "object itself; use `yield from` to run the access",
                        node, path, lines))
                else:
                    diagnostics.append(_diag(
                        RPR103,
                        f"{target}.{op}(...) creates a channel-access "
                        "generator that is never driven; prefix it with "
                        "`yield from`",
                        node, path, lines))
        diagnostics.extend(_unreachable_after_loops(body, path, lines))
    return diagnostics


def _unreachable_after_loops(body: ast.FunctionDef, path: str,
                             lines: Sequence[str]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def scan_block(stmts) -> None:
        for index, stmt in enumerate(stmts):
            if (isinstance(stmt, ast.While) and _is_const_true(stmt.test)
                    and not _has_toplevel_break(stmt)
                    and index + 1 < len(stmts)):
                trailing = stmts[index + 1]
                diagnostics.append(_diag(
                    RPR105,
                    "statement is unreachable: the preceding "
                    "`while True` segment loop never breaks",
                    trailing, path, lines))
            if isinstance(stmt, (ast.For, ast.While)):
                scan_block(stmt.body)
                scan_block(stmt.orelse)
            elif isinstance(stmt, ast.If):
                scan_block(stmt.body)
                scan_block(stmt.orelse)
            elif isinstance(stmt, ast.With):
                scan_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                scan_block(stmt.body)
                scan_block(stmt.orelse)
                scan_block(stmt.finalbody)
                for handler in stmt.handlers:
                    scan_block(handler.body)

    scan_block(body.body)
    return diagnostics


# ---------------------------------------------------------------------------
# Shared-state race pass (RPR201)
# ---------------------------------------------------------------------------

def _contains_factory_call(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _FACTORY_METHODS):
                return True
            if isinstance(func, ast.Name) and func.id in _FACTORY_CLASSES:
                return True
    return False


def _channel_names_in_scope(scope: ast.AST) -> Set[str]:
    """Names in ``scope`` bound to channels / channel containers."""
    names: Set[str] = set()
    for node in own_walk(scope):
        if isinstance(node, ast.Assign) and _contains_factory_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
    return names


def _local_names(fn: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """(locals, declared_nonlocal_or_global) of ``fn``'s own scope."""
    locals_: Set[str] = set()
    declared: Set[str] = set()
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        locals_.add(arg.arg)
    for node in own_walk(fn):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            locals_.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                locals_.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                locals_.add(alias.asname or alias.name)
    return locals_ - declared, declared


def _is_channel_mediated(name_node: ast.Name) -> bool:
    """True when this use of the name is the target of a channel op."""
    node: ast.AST = name_node
    parent = parent_of(node)
    while isinstance(parent, (ast.Attribute, ast.Subscript)):
        node, parent = parent, parent_of(parent)
    # now `parent` may be the Call whose func is the attribute chain
    if (isinstance(parent, ast.Call) and parent.func is node
            and is_channel_op_call(parent)):
        return True
    return False


class _BodyAccesses:
    """Reads/writes of free (non-local) names inside one process body."""

    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, Tuple[int, str]] = {}
        locals_, declared = _local_names(fn)
        for node in own_walk(fn):
            if isinstance(node, ast.Name):
                name = node.id
                if name in locals_ and name not in declared:
                    continue
                if name in _BUILTIN_NAMES:
                    continue
                if isinstance(node.ctx, ast.Store):
                    if name in declared:
                        self.writes.setdefault(
                            name, (node.lineno, "rebinding"))
                elif isinstance(node.ctx, ast.Load):
                    if not _is_channel_mediated(node):
                        self.reads.setdefault(name, node.lineno)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = base_name(target)
                        if root and root not in locals_:
                            self.writes.setdefault(
                                root, (node.lineno, "element assignment"))
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATORS):
                root = base_name(node.func)
                if root and root not in locals_ and root not in _BUILTIN_NAMES:
                    self.writes.setdefault(
                        root, (node.lineno, f".{node.func.attr}() call"))

    def touched(self) -> Set[str]:
        return set(self.reads) | set(self.writes)


def _design_scopes(tree: ast.AST) -> List[Tuple[ast.AST, List[ast.FunctionDef]]]:
    """(scope, process bodies) for scopes registering >= 2 local bodies."""
    scopes = []
    candidates = [tree] + [n for n in ast.walk(tree)
                           if isinstance(n, ast.FunctionDef)]
    for scope in candidates:
        registered: Set[str] = set()
        for node in own_walk(scope):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_process"
                    and node.args and isinstance(node.args[0], ast.Name)):
                registered.add(node.args[0].id)
        if len(registered) < 2:
            continue
        bodies = [node for node in own_walk(scope)
                  if isinstance(node, ast.FunctionDef)
                  and node.name in registered]
        if len(bodies) >= 2:
            scopes.append((scope, bodies))
    return scopes


#: Provenance preference when several processes write one shared name:
#: a direct write keeps the established RPR201 shape; helper/alias
#: writes only surface when no process touches the state directly.
_KIND_ORDER = {DIRECT: 0, HELPER: 1, ARG_ALIAS: 2, RETURN_ALIAS: 3}


def race_pass(tree: ast.AST, path: str,
              lines: Sequence[str]) -> List[Diagnostic]:
    effects = module_effects(tree)
    diagnostics: List[Diagnostic] = []
    for scope, bodies in _design_scopes(tree):
        channels = _channel_names_in_scope(scope)
        if not isinstance(scope, ast.Module):
            channels |= _channel_names_in_scope(tree)  # module-level channels
        summaries = [s for s in (effects.of(body) for body in bodies)
                     if s is not None]
        shared: Dict[str, List] = {}
        for summary in summaries:
            for name in summary.touched():
                shared.setdefault(name, []).append(summary)
        for name, users in sorted(shared.items()):
            if len(users) < 2 or name in channels:
                continue
            writers = [u for u in users if name in u.writes]
            if not writers:
                continue  # shared read-only data is fine
            writers.sort(key=lambda u: _KIND_ORDER.get(
                u.writes[name].kind, 9))
            writer = writers[0]
            access = writer.writes[name]
            line, how = access.line, access.how
            others = [u.fn.name for u in users if u is not writer]
            others_text = ", ".join(repr(o) for o in others)
            anchor = ast.Constant(value=None)
            anchor.lineno, anchor.col_offset = line, 0
            if access.kind == DIRECT:
                diagnostics.append(_diag(
                    RPR201,
                    f"process {writer.fn.name!r} writes shared state "
                    f"{name!r} ({how}) also used by {others_text}; "
                    "processes may only interact through predefined "
                    "channels (use a Fifo/Signal/SharedVariable)",
                    anchor, path, lines))
            elif access.kind == HELPER:
                diagnostics.append(_diag(
                    RPR202,
                    f"process {writer.fn.name!r} mutates shared state "
                    f"{name!r} through helper {access.via!r} ({how}) "
                    f"also used by {others_text}; the helper's write "
                    "bypasses channel mediation just like a direct one "
                    "(use a Fifo/Signal/SharedVariable)",
                    anchor, path, lines))
            else:  # arg-alias / return-alias
                diagnostics.append(_diag(
                    RPR203,
                    f"process {writer.fn.name!r} mutates shared state "
                    f"{name!r} through an alias ({how}) also used by "
                    f"{others_text}; state passed into or returned from "
                    f"{access.via!r} still bypasses channel mediation "
                    "(use a Fifo/Signal/SharedVariable)",
                    anchor, path, lines))
    return diagnostics


# ---------------------------------------------------------------------------
# Annotation-coverage pass (RPR301..RPR303)
# ---------------------------------------------------------------------------

def _enclosing_loop(node: ast.AST, stop: ast.AST) -> Optional[ast.AST]:
    current = parent_of(node)
    while current is not None and current is not stop:
        if isinstance(current, (ast.For, ast.While)):
            return current
        current = parent_of(current)
    return None


def _wrapped_by_annotation(node: ast.AST) -> bool:
    parent = parent_of(node)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ANNOTATION_WRAPPERS)


def annotation_pass(tree: ast.AST, path: str,
                    lines: Sequence[str]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for kernel in find_kernels(tree):
        for node in own_walk(kernel):
            if isinstance(node, ast.For):
                iterator = node.iter
                if (isinstance(iterator, ast.Call)
                        and isinstance(iterator.func, ast.Name)
                        and iterator.func.id == "range"):
                    diagnostics.append(_diag(
                        RPR301,
                        f"kernel {kernel.name!r} iterates with range(); "
                        "use arange() so per-iteration loop bookkeeping is "
                        "charged and indices stay annotated",
                        iterator, path, lines))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in _UNCHARGED_BUILTINS:
                    diagnostics.append(_diag(
                        RPR302,
                        f"builtin {name}() inside kernel {kernel.name!r} "
                        "does native work the cost context never sees; "
                        "spell the loop out over annotated values",
                        node, path, lines))
                elif (name in ("int", "float")
                      and node.args
                      and not isinstance(node.args[0], ast.Constant)
                      and _enclosing_loop(node, kernel) is not None
                      and not _wrapped_by_annotation(node)):
                    diagnostics.append(_diag(
                        RPR303,
                        f"{name}() inside a loop of kernel {kernel.name!r} "
                        "unwraps the annotated value; operations on the "
                        "result are no longer charged",
                        node, path, lines))
    return diagnostics


#: The pass pipeline run by the engine, in order.
PASSES = (protocol_pass, race_pass, annotation_pass)
