"""Static segment-graph construction and dynamic diffing (paper §2).

The dynamic :class:`~repro.segments.graph.ProcessGraph` records the
nodes and segments a simulation *actually* executed.  This module
builds the same node/arc graph **from source alone** — an abstract
control-flow walk over the process body where the only interesting
statements are the node sites (channel accesses, timed waits) — and
diffs the two:

* a static node the simulation never visited means the stimulus never
  reached that code path (the estimation figures are incomplete);
* a static arc (possible segment) that never executed is a dead
  segment — reachable in principle, unexercised in practice.

This subsumes :func:`repro.segments.static.coverage_report` (node-level
only) and extends it to segment level.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..segments.graph import ProcessGraph
from ..segments.static import (
    StaticNode,
    _collect_aliases,
    exception_site_lines,
    parse_body,
    sites_in,
)
from .diagnostics import Diagnostic
from . import passes as _passes

#: Pseudo-line identities of the implicit entry/exit nodes.
ENTRY_LINE = 0
EXIT_LINE = -1

Arc = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class StaticSegmentGraph:
    """The §2 node/arc graph of one process body, built from source."""

    name: str
    sites: Tuple[StaticNode, ...]            # channel/wait node sites
    arcs: FrozenSet[Arc]                     # (line, line) possible segments

    def site_lines(self) -> Set[int]:
        return {site.lineno for site in self.sites}

    def _label(self, line: int) -> str:
        if line == ENTRY_LINE:
            return "entry"
        if line == EXIT_LINE:
            return "exit"
        for site in self.sites:
            if site.lineno == line:
                return site.describe()
        return f"@{line}"

    def describe(self) -> str:
        lines = [f"static graph of {self.name}: {len(self.sites)} node "
                 f"site(s), {len(self.arcs)} possible segment(s)"]
        for start, end in sorted(self.arcs):
            lines.append(f"  {self._label(start)} -> {self._label(end)}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz rendering mirroring ProcessGraph.to_dot (Fig. 2)."""
        ordered = [ENTRY_LINE] + [s.lineno for s in self.sites] + [EXIT_LINE]
        labels = {line: f"N{i}" for i, line in enumerate(dict.fromkeys(ordered))}
        out = [f'digraph "{self.name} (static)" {{']
        for line, label in labels.items():
            shape = ("circle" if line == ENTRY_LINE
                     else "doublecircle" if line == EXIT_LINE else "box")
            out.append(f'  {label} [shape={shape}, '
                       f'label="{label}\\n{self._label(line)}"];')
        for start, end in sorted(self.arcs):
            if start in labels and end in labels:
                out.append(f"  {labels[start]} -> {labels[end]};")
        out.append("}")
        return "\n".join(out)


class _LoopFrame:
    __slots__ = ("breaks", "continues")

    def __init__(self):
        self.breaks: Set[int] = set()
        self.continues: Set[int] = set()


class _ArcWalker:
    """Abstract control-flow walk collecting node-site arcs.

    The frontier is the set of node sites the process may most recently
    have passed; every new site draws an arc from each frontier member.
    Loops are iterated to a fixpoint (arc sets only grow, so a handful
    of passes suffice).
    """

    _MAX_LOOP_PASSES = 8

    def __init__(self, first_line: int, aliases: Dict[str, str]):
        self.first_line = first_line
        self.aliases = aliases
        self.arcs: Set[Arc] = set()

    # -- helpers ---------------------------------------------------------

    def _sites(self, node: ast.AST) -> List[StaticNode]:
        return sites_in(node, self.first_line, self.aliases)

    def _chain(self, sites: Sequence[StaticNode],
               frontier: Set[int]) -> Set[int]:
        for site in sites:
            for start in frontier:
                self.arcs.add((start, site.lineno))
            frontier = {site.lineno}
        return frontier

    # -- statement walk --------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt], frontier: Set[int],
             loop: Optional[_LoopFrame]) -> Set[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code draws no arcs (see RPR105)
            frontier = self._walk_stmt(stmt, frontier, loop)
        return frontier

    def _walk_stmt(self, stmt: ast.stmt, frontier: Set[int],
                   loop: Optional[_LoopFrame]) -> Set[int]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return frontier
        if isinstance(stmt, ast.Return):
            frontier = self._chain(self._sites(stmt), frontier)
            for start in frontier:
                self.arcs.add((start, EXIT_LINE))
            return set()
        if isinstance(stmt, ast.Raise):
            self._chain(self._sites(stmt), frontier)
            return set()
        if isinstance(stmt, ast.Break):
            if loop is not None:
                loop.breaks |= frontier
            return set()
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                loop.continues |= frontier
            return set()
        if isinstance(stmt, ast.If):
            frontier = self._chain(self._sites(stmt.test), frontier)
            taken = self.walk(stmt.body, set(frontier), loop)
            other = (self.walk(stmt.orelse, set(frontier), loop)
                     if stmt.orelse else set(frontier))
            return taken | other
        if isinstance(stmt, (ast.While, ast.For)):
            return self._walk_loop(stmt, frontier, loop)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                frontier = self._chain(self._sites(item), frontier)
            return self.walk(stmt.body, frontier, loop)
        if isinstance(stmt, ast.Try):
            body_out = self.walk(stmt.body, set(frontier), loop)
            # An exception may surface after *any* site inside the
            # protected block (not just its normal exits), or before
            # the first one — so the handler entry frontier is the
            # incoming frontier plus every site line in the body.
            raise_points = frontier | exception_site_lines(
                stmt.body, self.first_line, self.aliases)
            handler_outs: Set[int] = set()
            for handler in stmt.handlers:
                handler_outs |= self.walk(handler.body, set(raise_points),
                                          loop)
            else_out = (self.walk(stmt.orelse, set(body_out), loop)
                        if stmt.orelse else body_out)
            merged = else_out | handler_outs
            if stmt.finalbody:
                return self.walk(stmt.finalbody, merged or set(raise_points),
                                 loop)
            return merged
        # simple statement: chain any sites it contains, in source order
        return self._chain(self._sites(stmt), frontier)

    def _walk_loop(self, stmt, frontier: Set[int],
                   outer: Optional[_LoopFrame]) -> Set[int]:
        test_sites = (self._sites(stmt.test)
                      if isinstance(stmt, ast.While) else
                      self._sites(stmt.iter))
        const_true = (isinstance(stmt, ast.While)
                      and isinstance(stmt.test, ast.Constant)
                      and bool(stmt.test.value))
        frame = _LoopFrame()
        entry = set(frontier)
        body_out: Set[int] = set()
        for _ in range(self._MAX_LOOP_PASSES):
            arcs_before = len(self.arcs)
            head = self._chain(test_sites, set(entry))
            body_out = self.walk(stmt.body, set(head), frame)
            new_entry = entry | body_out | frame.continues
            if len(self.arcs) == arcs_before and new_entry == entry:
                break
            entry = new_entry
        if const_true:
            exit_frontier: Set[int] = set(frame.breaks)
        else:
            exit_frontier = self._chain(test_sites, set(entry)) | frame.breaks
        if getattr(stmt, "orelse", None):
            exit_frontier = self.walk(stmt.orelse, exit_frontier, outer)
        return exit_frontier


def build_static_graph(body) -> StaticSegmentGraph:
    """Build the §2 node/arc graph of ``body`` from source alone."""
    tree, first_line, _source = parse_body(body)
    fn = next((node for node in ast.walk(tree)
               if isinstance(node, ast.FunctionDef)), None)
    if fn is None:
        raise ReproError(f"no function definition found in source of {body!r}")
    aliases = _collect_aliases(tree)
    sites = tuple(sites_in(fn, first_line, aliases))
    walker = _ArcWalker(first_line, aliases)
    final = walker.walk(fn.body, {ENTRY_LINE}, None)
    for start in final:
        walker.arcs.add((start, EXIT_LINE))
    name = getattr(body, "__qualname__", getattr(body, "__name__", "process"))
    return StaticSegmentGraph(name, sites, frozenset(walker.arcs))


# ---------------------------------------------------------------------------
# Diff against a dynamic ProcessGraph
# ---------------------------------------------------------------------------

def _dynamic_lines(graph: ProcessGraph) -> Set[int]:
    lines: Set[int] = set()
    for node in graph.nodes:
        if node.kind == "entry":
            lines.add(ENTRY_LINE)
        elif node.kind == "exit":
            lines.add(EXIT_LINE)
        else:
            lines.add(node.site)
    return lines


def _dynamic_arcs(graph: ProcessGraph) -> Set[Arc]:
    arcs: Set[Arc] = set()
    for start, end in graph.segments:
        def line_of(node):
            if node.kind == "entry":
                return ENTRY_LINE
            if node.kind == "exit":
                return EXIT_LINE
            return node.site
        arcs.add((line_of(start), line_of(end)))
    return arcs


@dataclasses.dataclass(frozen=True)
class GraphDiff:
    """Static-vs-dynamic comparison of one process's segment graph."""

    static: StaticSegmentGraph
    never_visited: Tuple[StaticNode, ...]     # static sites with no dynamic node
    dead_arcs: Tuple[Arc, ...]                # possible segments never executed
    unpredicted: Tuple[int, ...]              # dynamic node lines the static
                                              # scan has no site for (helpers)

    @property
    def complete(self) -> bool:
        """Every static node site was visited at least once."""
        return not self.never_visited

    def describe(self) -> str:
        out = [f"graph diff for {self.static.name}: "
               f"{len(self.static.sites) - len(self.never_visited)}"
               f"/{len(self.static.sites)} node sites visited, "
               f"{len(self.dead_arcs)} dead segment(s)"]
        for site in self.never_visited:
            out.append(f"  MISSED {site.describe()}")
        for start, end in sorted(self.dead_arcs):
            out.append(f"  DEAD SEGMENT {self.static._label(start)} -> "
                       f"{self.static._label(end)}")
        for line in sorted(self.unpredicted):
            out.append(f"  note: dynamic node at line {line} has no static "
                       f"site (helper sub-generator?)")
        return "\n".join(out)

    def to_diagnostics(self, path: str = "<process>") -> List[Diagnostic]:
        diags = []
        for site in self.never_visited:
            diags.append(Diagnostic(
                _passes.RPR401,
                f"node site {site.describe()} was never visited by the "
                "simulation; its segments have no cost figures",
                path, site.lineno, 0))
        for start, end in sorted(self.dead_arcs):
            diags.append(Diagnostic(
                _passes.RPR402,
                f"possible segment {self.static._label(start)} -> "
                f"{self.static._label(end)} never executed",
                path, max(start, 0), 0))
        return diags


def diff_graphs(static: StaticSegmentGraph,
                dynamic: ProcessGraph) -> GraphDiff:
    """Compare a static graph with the dynamic tracker's graph."""
    visited = _dynamic_lines(dynamic)
    executed = _dynamic_arcs(dynamic)
    never_visited = tuple(site for site in static.sites
                          if site.lineno not in visited)
    known = static.site_lines() | {ENTRY_LINE, EXIT_LINE}
    dead = tuple(sorted(
        arc for arc in static.arcs
        if arc not in executed
        and arc[0] in visited and arc[1] in visited))
    unpredicted = tuple(sorted(
        line for line in visited
        if line not in known))
    return GraphDiff(static, never_visited, dead, unpredicted)


def diff_process(process, tracker) -> GraphDiff:
    """Diff a live kernel process against a tracker's dynamic graph.

    Uses the :attr:`~repro.kernel.process.Process.body` introspection
    hook, so the process must have been registered through
    ``Module.add_process``.
    """
    body = getattr(process, "body", None)
    if body is None:
        raise ReproError(
            f"process {getattr(process, 'full_name', process)!r} carries no "
            "body reference; register it via Module.add_process")
    return diff_graphs(build_static_graph(body),
                       tracker.graph_of(process.full_name))
