"""Annotated control-flow and call helpers.

These close the gap between the operator costs (charged automatically by
the annotated types) and the whole-program costs a processor really
pays: call overhead, loop bookkeeping and branching.  All three helpers
degrade to plain behaviour when no cost context is active, preserving
the single-source property.

Like the operator methods in :mod:`repro.annotate.types`, the helpers
inline the ``sw``/no-recorder charge (see ``CostContext.charge_fast``)
— ``annotated_function`` in particular runs once per simulated call and
dominates call-heavy workloads such as the recursive fibonacci.
"""

from __future__ import annotations

import functools
from typing import Iterator

from . import context as _context
from .context import current_context
from .costs import OP_IDS
from .types import AInt, _new, unwrap

_OP_CALL = OP_IDS["call"]
_OP_ASSIGN = OP_IDS["assign"]
_OP_ADD = OP_IDS["add"]
_OP_BRANCH = OP_IDS["branch"]

#: Call names that move a value into the annotated domain, and the
#: decorators that mark a whole function as annotated.  The model
#: linter (:mod:`repro.analysis`) keys its kernel detection off these
#: sets, so extending the annotation API here keeps the linter in sync.
ANNOTATION_ENTRY_POINTS = frozenset({"aint", "arange", "make_array"})
ANNOTATION_DECORATORS = frozenset({"annotated_function"})
#: Wrappers that legitimately re-enter the annotated domain after a
#: native conversion (``AInt(int(x))`` is not an annotation bypass).
ANNOTATION_WRAPPERS = frozenset({"AInt", "AFloat", "ABool", "AArray", "aint"})


def annotated_function(fn):
    """Decorator charging the platform's call overhead (``t_fc``) per call.

    The body's own operations keep charging as they execute, so the
    total contribution of a call is ``t_fc`` + body cost, exactly as in
    the paper's Fig. 3 (``datao = func(datai)`` charges ``t_fc`` = 18
    plus the 40.4 cycles of the code inside ``func``).
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        ctx = _context._current
        if ctx is not None:
            # Per-argument ABI cost (caller marshals, callee spills);
            # calibration fits the 'assign' weight to the target's
            # actual calling convention.
            if ctx._fast:
                latencies = ctx._latencies
                call_latency = latencies[_OP_CALL]
                if call_latency is None:
                    ctx._missing_cost(_OP_CALL)
                counts = ctx._counts
                counts[_OP_CALL] += 1
                n_args = len(args)
                if n_args:
                    assign_latency = latencies[_OP_ASSIGN]
                    if assign_latency is None:
                        ctx._missing_cost(_OP_ASSIGN)
                    counts[_OP_ASSIGN] += n_args
                    ctx.total_cycles += call_latency + assign_latency * n_args
                else:
                    ctx.total_cycles += call_latency
            else:
                ctx.charge_id(_OP_CALL)
                for _ in args:
                    ctx.charge_id(_OP_ASSIGN)
        return fn(*args, **kwargs)

    wrapper.__wrapped__ = fn
    return wrapper


def arange(*bounds: int) -> Iterator[int]:
    """``range`` that charges per-iteration loop overhead.

    A compiled loop pays an increment and a compare-and-branch every
    iteration; ``arange`` charges ``add`` + ``branch`` per yielded index
    so annotated estimates include that bookkeeping (the ``branch``
    class also covers ``if``/``while`` truth tests, which cost the same
    branch/jump idiom on the machine).  Accepts the same (start, stop,
    step) signatures as ``range``; when a cost context is active the
    indices come out as :class:`~repro.annotate.types.AInt` so the
    loop body's arithmetic on them is annotated too, otherwise they are
    plain ints.  :mod:`repro.iss.compiler` compiles ``arange`` exactly
    like ``range``.
    """
    plain = [unwrap(b) if not isinstance(b, int) else b for b in bounds]
    ctx = current_context()
    if ctx is None:
        yield from range(*plain)
        return
    if ctx._fast:
        latencies = ctx._latencies
        add_latency = latencies[_OP_ADD]
        branch_latency = latencies[_OP_BRANCH]
        if add_latency is None:
            ctx._missing_cost(_OP_ADD)
        if branch_latency is None:
            ctx._missing_cost(_OP_BRANCH)
        per_iteration = add_latency + branch_latency
        counts = ctx._counts  # identity-stable across reset()
        for index in range(*plain):
            ctx.total_cycles += per_iteration
            counts[_OP_ADD] += 1
            counts[_OP_BRANCH] += 1
            obj = _new(AInt)
            obj.value = index
            obj.ready = 0.0
            obj.vid = -1
            yield obj
        return
    for index in range(*plain):
        ctx.charge_id(_OP_ADD)
        ready, vid = ctx.charge_id(_OP_BRANCH)
        yield AInt(index, ready, vid)


def branch(condition) -> bool:
    """Evaluate a condition, charging the branch cost (``t_if``).

    ``if branch(i < 0):`` models the paper's Fig. 3 exactly: the
    comparison charges its own cost and the truth test adds ``t_if``.
    Annotated comparisons (:class:`~repro.annotate.types.ABool`) already
    charge the branch cost in their ``__bool__``, so ``branch`` only
    adds a charge for plain-Python conditions.  Optional — ``if i < 0:``
    alone is equivalent for annotated operands.
    """
    from .types import ABool
    if isinstance(condition, ABool):
        return bool(condition)
    ctx = _context._current
    if ctx is not None:
        if ctx._fast:
            ctx.charge_fast(_OP_BRANCH)
        else:
            ctx.charge_id(_OP_BRANCH)
    return bool(condition)


def make_array(length: int):
    """A zero-filled scratch array usable from all three backends.

    * plain run (no context): a Python list of ints,
    * annotated run: an :class:`~repro.annotate.types.AArray`,
    * compiled run: :mod:`repro.iss.compiler` lowers ``make_array(n)``
      to a bump allocation on the machine heap.

    This is the single-source analogue of a local C array.
    """
    n = int(unwrap(length))
    if current_context() is None:
        return [0] * n
    from .types import AArray
    return AArray.zeros(n)


def aint(value: int):
    """Mark a constant-initialized scalar as an annotated integer.

    The Python analogue of the paper's ``#define int generic_int``: in
    an annotated run (active cost context) the value becomes an
    :class:`AInt` so all arithmetic on it charges; in a plain run it
    stays a native ``int`` (the untimed specification keeps native
    speed); :mod:`repro.iss.compiler` lowers ``aint(x)`` to ``x``.
    """
    plain = int(unwrap(value))
    if current_context() is None:
        return plain
    return AInt(plain)
