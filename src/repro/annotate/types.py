"""Annotated value types — the ``generic_int`` mechanism of the paper.

The paper replaces every C type by an operator-overloaded class
(``int`` → ``generic_int``) so that each executed operation adds its
platform-characterized latency to the running segment estimate.  These
classes are the Python equivalent: :class:`AInt`, :class:`AFloat`,
:class:`ABool`, :class:`AArray` and :class:`Var` overload the full
operator set and charge the active :class:`~repro.annotate.context.CostContext`.

Because Python is duck-typed, the *same* function body can run:

* with plain ``int``/``list`` arguments — the untimed functional model,
* with :class:`AInt`/:class:`AArray` arguments — the annotated model
  (identical results, plus cost accumulation),
* through :mod:`repro.iss.compiler` — on the reference ISS.

That single-source property is the paper's central claim ("no change of
the code is needed") and is enforced by tests.

Dataflow tracking: every annotated value carries a ``ready`` time (the
cycle at which a fully-parallel datapath would have produced it).  In a
``hw``-mode context, each operation's completion is
``max(operand readys) + latency``; the segment's maximum completion is
its critical path (the paper's best-case HW time).  In ``sw`` mode the
tracking is skipped.
"""

from __future__ import annotations

import operator as _op
from typing import Iterable, List, Union

from ..errors import AnnotationError
from .context import current_context

Number = Union[int, float]


def unwrap(value):
    """Plain Python value from an annotated value (identity otherwise)."""
    if isinstance(value, (AInt, AFloat, ABool)):
        return value.value
    if isinstance(value, Var):
        return unwrap(value.value)
    if isinstance(value, AArray):
        return value.to_list()
    return value


def _int_operand(other):
    """(value, ready, vid) for an integer-domain operand, or None."""
    if isinstance(other, AInt):
        return other.value, other.ready, other.vid
    if isinstance(other, bool):  # bool before int: bool is an int subclass
        return int(other), 0.0, -1
    if isinstance(other, int):
        return other, 0.0, -1
    if isinstance(other, ABool):
        return int(other.value), other.ready, other.vid
    return None


def _float_operand(other):
    """(value, ready, vid) for a float-domain operand, or None."""
    if isinstance(other, AFloat):
        return other.value, other.ready, other.vid
    if isinstance(other, AInt):
        return float(other.value), other.ready, other.vid
    if isinstance(other, (int, float)):
        return float(other), 0.0, -1
    return None


def _make_int_binop(py_op, cost_name, result_cls_name="AInt"):
    def method(self, other):
        operand = _int_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(self.value, other_value)
        ctx = current_context()
        cls = _RESULT_CLASSES[result_cls_name]
        if ctx is None:
            return cls(result)
        ready, vid = ctx.charge(cost_name, (self.ready, other_ready),
                                (self.vid, other_vid))
        return cls(result, ready, vid)
    method.__name__ = f"__{py_op.__name__.strip('_')}__"
    return method


def _make_int_rbinop(py_op, cost_name, result_cls_name="AInt"):
    def method(self, other):
        operand = _int_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(other_value, self.value)
        ctx = current_context()
        cls = _RESULT_CLASSES[result_cls_name]
        if ctx is None:
            return cls(result)
        ready, vid = ctx.charge(cost_name, (other_ready, self.ready),
                                (other_vid, self.vid))
        return cls(result, ready, vid)
    return method


def _make_int_unop(py_op, cost_name):
    def method(self):
        result = py_op(self.value)
        ctx = current_context()
        if ctx is None:
            return AInt(result)
        ready, vid = ctx.charge(cost_name, (self.ready,), (self.vid,))
        return AInt(result, ready, vid)
    return method


def _make_float_binop(py_op, cost_name, result_cls_name="AFloat"):
    def method(self, other):
        operand = _float_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(self.value, other_value)
        ctx = current_context()
        cls = _RESULT_CLASSES[result_cls_name]
        if ctx is None:
            return cls(result)
        ready, vid = ctx.charge(cost_name, (self.ready, other_ready),
                                (self.vid, other_vid))
        return cls(result, ready, vid)
    return method


def _make_float_rbinop(py_op, cost_name, result_cls_name="AFloat"):
    def method(self, other):
        operand = _float_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(other_value, self.value)
        ctx = current_context()
        cls = _RESULT_CLASSES[result_cls_name]
        if ctx is None:
            return cls(result)
        ready, vid = ctx.charge(cost_name, (other_ready, self.ready),
                                (other_vid, self.vid))
        return cls(result, ready, vid)
    return method


class ABool:
    """An annotated boolean (the result of annotated comparisons).

    Truth-tests transparently (``if a < b:`` works) while carrying the
    dataflow ready time of the comparison for HW critical paths.
    Truth-testing charges the ``branch`` cost: Python calls ``__bool__``
    exactly where compiled code executes a conditional branch (``if``,
    ``while``, ``and``/``or``), so control-flow overhead is annotated
    automatically — the dynamic analogue of the paper's ``t_if``.
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: bool, ready: float = 0.0, vid: int = -1):
        self.value = bool(value)
        self.ready = ready
        self.vid = vid

    def __bool__(self) -> bool:
        ctx = current_context()
        if ctx is not None:
            ctx.charge("branch", (self.ready,), (self.vid,))
        return self.value

    # C semantics: a comparison result is an integer (0/1) usable in
    # arithmetic; promote to AInt and delegate.
    def _as_aint(self) -> "AInt":
        return AInt(int(self.value), self.ready, self.vid)

    def __add__(self, other):
        return self._as_aint() + other

    def __radd__(self, other):
        return other + self._as_aint()

    def __sub__(self, other):
        return self._as_aint() - other

    def __rsub__(self, other):
        return other - self._as_aint()

    def __mul__(self, other):
        return self._as_aint() * other

    def __rmul__(self, other):
        return other * self._as_aint()

    def __and__(self, other):
        return self._as_aint() & other

    def __rand__(self, other):
        return other & self._as_aint()

    def __or__(self, other):
        return self._as_aint() | other

    def __ror__(self, other):
        return other | self._as_aint()

    def __xor__(self, other):
        return self._as_aint() ^ other

    def __rxor__(self, other):
        return other ^ self._as_aint()

    def __lshift__(self, other):
        return self._as_aint() << other

    def __rshift__(self, other):
        return self._as_aint() >> other

    def __floordiv__(self, other):
        return self._as_aint() // other

    def __rfloordiv__(self, other):
        return other // self._as_aint()

    def __mod__(self, other):
        return self._as_aint() % other

    def __rmod__(self, other):
        return other % self._as_aint()

    def __neg__(self):
        return -self._as_aint()

    def __index__(self) -> int:
        return int(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"ABool({self.value})"


class AInt:
    """An annotated integer: int semantics + per-operation cost charging.

    Division follows Python semantics (``//`` floors); the reference ISS
    implements the same semantics so that single-source functional
    equivalence is exact (see DESIGN.md, substitution notes).
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0, ready: float = 0.0, vid: int = -1):
        if isinstance(value, AInt):
            ready, vid, value = value.ready, value.vid, value.value
        elif isinstance(value, ABool):
            ready, vid, value = value.ready, value.vid, int(value.value)
        if not isinstance(value, int):
            raise AnnotationError(
                f"AInt holds integers, got {type(value).__name__}; use AFloat"
            )
        self.value = value
        self.ready = ready
        self.vid = vid

    # arithmetic
    __add__ = _make_int_binop(_op.add, "add")
    __radd__ = _make_int_rbinop(_op.add, "add")
    __sub__ = _make_int_binop(_op.sub, "sub")
    __rsub__ = _make_int_rbinop(_op.sub, "sub")
    __mul__ = _make_int_binop(_op.mul, "mul")
    __rmul__ = _make_int_rbinop(_op.mul, "mul")
    __floordiv__ = _make_int_binop(_op.floordiv, "div")
    __rfloordiv__ = _make_int_rbinop(_op.floordiv, "div")
    __mod__ = _make_int_binop(_op.mod, "mod")
    __rmod__ = _make_int_rbinop(_op.mod, "mod")
    __lshift__ = _make_int_binop(_op.lshift, "shl")
    __rlshift__ = _make_int_rbinop(_op.lshift, "shl")
    __rshift__ = _make_int_binop(_op.rshift, "shr")
    __rrshift__ = _make_int_rbinop(_op.rshift, "shr")
    __and__ = _make_int_binop(_op.and_, "and")
    __rand__ = _make_int_rbinop(_op.and_, "and")
    __or__ = _make_int_binop(_op.or_, "or")
    __ror__ = _make_int_rbinop(_op.or_, "or")
    __xor__ = _make_int_binop(_op.xor, "xor")
    __rxor__ = _make_int_rbinop(_op.xor, "xor")

    # unary
    __neg__ = _make_int_unop(_op.neg, "neg")
    __invert__ = _make_int_unop(_op.invert, "inv")
    __abs__ = _make_int_unop(abs, "abs")

    def __pos__(self):
        return self

    # comparisons (annotated: they model ALU compare instructions)
    __lt__ = _make_int_binop(_op.lt, "lt", "ABool")
    __le__ = _make_int_binop(_op.le, "le", "ABool")
    __gt__ = _make_int_binop(_op.gt, "gt", "ABool")
    __ge__ = _make_int_binop(_op.ge, "ge", "ABool")
    __eq__ = _make_int_binop(_op.eq, "eq", "ABool")
    __ne__ = _make_int_binop(_op.ne, "ne", "ABool")
    __hash__ = None  # mutable-cost semantics: do not use as dict keys

    # true division promotes to float, as in C when one operand is float;
    # kernels in the compiler subset use // exclusively.
    def __truediv__(self, other):
        return AFloat(float(self.value), self.ready, self.vid) / other

    def __rtruediv__(self, other):
        return other / AFloat(float(self.value), self.ready, self.vid)

    # interoperability with plain Python
    def __index__(self) -> int:
        return self.value

    def __int__(self) -> int:
        return self.value

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"AInt({self.value})"


class AFloat:
    """An annotated float, charging the ``f*`` operation costs."""

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0.0, ready: float = 0.0, vid: int = -1):
        if isinstance(value, (AFloat, AInt)):
            ready, vid, value = value.ready, value.vid, float(value.value)
        if not isinstance(value, (int, float)):
            raise AnnotationError(f"AFloat holds numbers, got {type(value).__name__}")
        self.value = float(value)
        self.ready = ready
        self.vid = vid

    __add__ = _make_float_binop(_op.add, "fadd")
    __radd__ = _make_float_rbinop(_op.add, "fadd")
    __sub__ = _make_float_binop(_op.sub, "fsub")
    __rsub__ = _make_float_rbinop(_op.sub, "fsub")
    __mul__ = _make_float_binop(_op.mul, "fmul")
    __rmul__ = _make_float_rbinop(_op.mul, "fmul")
    __truediv__ = _make_float_binop(_op.truediv, "fdiv")
    __rtruediv__ = _make_float_rbinop(_op.truediv, "fdiv")

    __lt__ = _make_float_binop(_op.lt, "fcmp", "ABool")
    __le__ = _make_float_binop(_op.le, "fcmp", "ABool")
    __gt__ = _make_float_binop(_op.gt, "fcmp", "ABool")
    __ge__ = _make_float_binop(_op.ge, "fcmp", "ABool")
    __eq__ = _make_float_binop(_op.eq, "fcmp", "ABool")
    __ne__ = _make_float_binop(_op.ne, "fcmp", "ABool")
    __hash__ = None

    def __neg__(self):
        ctx = current_context()
        if ctx is None:
            return AFloat(-self.value)
        ready, vid = ctx.charge("fneg", (self.ready,), (self.vid,))
        return AFloat(-self.value, ready, vid)

    def __abs__(self):
        ctx = current_context()
        if ctx is None:
            return AFloat(abs(self.value))
        ready, vid = ctx.charge("fabs", (self.ready,), (self.vid,))
        return AFloat(abs(self.value), ready, vid)

    def __float__(self) -> float:
        return self.value

    def __int__(self) -> int:
        return int(self.value)

    def __bool__(self) -> bool:
        return self.value != 0.0

    def __repr__(self) -> str:
        return f"AFloat({self.value})"


_RESULT_CLASSES = {"AInt": AInt, "AFloat": AFloat, "ABool": ABool}


class AArray:
    """An annotated array of numbers.

    Element reads charge ``load``; element writes charge ``store``.  In
    HW mode a per-slot ready time is maintained so critical paths through
    memory (write→read dependencies) are honoured.
    """

    __slots__ = ("_data", "_readys", "_vids")

    def __init__(self, data: Iterable[Number] = ()):
        self._data: List[Number] = [unwrap(v) for v in data]
        for v in self._data:
            if not isinstance(v, (int, float)):
                raise AnnotationError(
                    f"AArray holds numbers, got {type(v).__name__}"
                )
        self._readys: List[float] = [0.0] * len(self._data)
        self._vids: List[int] = [-1] * len(self._data)

    @classmethod
    def zeros(cls, length: int) -> "AArray":
        """An array of ``length`` integer zeros."""
        if length < 0:
            raise AnnotationError("array length cannot be negative")
        return cls([0] * int(length))

    def __len__(self) -> int:
        return len(self._data)

    def _index_of(self, index) -> "tuple[int, float, int]":
        if isinstance(index, AInt):
            return index.value, index.ready, index.vid
        if isinstance(index, int):
            return index, 0.0, -1
        raise AnnotationError(
            f"array index must be int or AInt, got {type(index).__name__}"
        )

    def __getitem__(self, index):
        i, idx_ready, idx_vid = self._index_of(index)
        value = self._data[i]
        ctx = current_context()
        cls = AInt if isinstance(value, int) else AFloat
        if ctx is None:
            return cls(value)
        ready, vid = ctx.charge("load", (idx_ready, self._readys[i]),
                                (idx_vid, self._vids[i]))
        return cls(value, ready, vid)

    def __setitem__(self, index, value) -> None:
        i, idx_ready, idx_vid = self._index_of(index)
        if isinstance(value, (AInt, AFloat, ABool)):
            val_ready, val_vid, plain = value.ready, value.vid, unwrap(value)
        elif isinstance(value, (int, float)):
            val_ready, val_vid, plain = 0.0, -1, value
        else:
            raise AnnotationError(
                f"array element must be a number, got {type(value).__name__}"
            )
        ctx = current_context()
        if ctx is not None:
            ready, vid = ctx.charge("store", (idx_ready, val_ready),
                                    (idx_vid, val_vid))
            self._readys[i] = ready
            self._vids[i] = vid
        self._data[i] = plain

    def __iter__(self):
        for i in range(len(self._data)):
            yield self[i]

    def to_list(self) -> List[Number]:
        """Plain-Python copy of the contents (no charging)."""
        return list(self._data)

    def __repr__(self) -> str:
        preview = self._data[:8]
        suffix = ", ..." if len(self._data) > 8 else ""
        return f"AArray({preview}{suffix} len={len(self._data)})"


class Var:
    """An explicitly-assignable variable charging the paper's ``t_=``.

    Most code lets calibration absorb assignment costs into the operator
    weights; ``Var`` exists for C-exact modelling (and reproduces the
    paper's Fig. 3 walkthrough literally)::

        i = Var(0)
        i.assign(c + d)        # charges t_= on top of t_+
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0):
        self.value = unwrap(value)
        self.ready = 0.0
        self.vid = -1

    def assign(self, new_value) -> "Var":
        """Assign, charging one ``assign`` operation."""
        if isinstance(new_value, (AInt, AFloat, ABool)):
            src_ready, src_vid = new_value.ready, new_value.vid
        else:
            src_ready, src_vid = 0.0, -1
        ctx = current_context()
        if ctx is not None:
            self.ready, self.vid = ctx.charge("assign", (src_ready,), (src_vid,))
        self.value = unwrap(new_value)
        return self

    def get(self):
        """The held value as an annotated type (no charge: register read)."""
        if isinstance(self.value, int):
            return AInt(self.value, self.ready, self.vid)
        return AFloat(self.value, self.ready, self.vid)

    def __repr__(self) -> str:
        return f"Var({self.value!r})"
