"""Annotated value types — the ``generic_int`` mechanism of the paper.

The paper replaces every C type by an operator-overloaded class
(``int`` → ``generic_int``) so that each executed operation adds its
platform-characterized latency to the running segment estimate.  These
classes are the Python equivalent: :class:`AInt`, :class:`AFloat`,
:class:`ABool`, :class:`AArray` and :class:`Var` overload the full
operator set and charge the active :class:`~repro.annotate.context.CostContext`.

Because Python is duck-typed, the *same* function body can run:

* with plain ``int``/``list`` arguments — the untimed functional model,
* with :class:`AInt`/:class:`AArray` arguments — the annotated model
  (identical results, plus cost accumulation),
* through :mod:`repro.iss.compiler` — on the reference ISS.

That single-source property is the paper's central claim ("no change of
the code is needed") and is enforced by tests.

Dataflow tracking: every annotated value carries a ``ready`` time (the
cycle at which a fully-parallel datapath would have produced it).  In a
``hw``-mode context, each operation's completion is
``max(operand readys) + latency``; the segment's maximum completion is
its critical path (the paper's best-case HW time).  In ``sw`` mode the
tracking is skipped.

Speed
-----

One operator call here stands in for one machine instruction of the
model under estimation, so this file dominates the paper's *overload*
metric (annotated host time / untimed host time).  Two structural
choices keep it lean:

* Operator methods are built *after* all classes exist and installed
  with ``setattr``, so each closure binds its interned op id, its
  result class and the raw allocator directly — no
  name→class dict lookup, no ``__init__`` re-validation per result.
* Each method inlines the ``sw``/no-recorder charge (one latency-list
  index, one float add, one count increment — see
  :meth:`CostContext.charge_fast`) and only falls back to the general
  :meth:`CostContext.charge_id` path for ``hw`` mode or an attached
  recorder.  The module-level context slot is read as a plain attribute
  of the :mod:`~repro.annotate.context` module rather than through
  ``current_context()``.
"""

from __future__ import annotations

import operator as _op
from typing import Iterable, List, Union

from ..errors import AnnotationError
from . import context as _context
from .context import current_context
from .costs import OP_IDS

Number = Union[int, float]

_new = object.__new__


def unwrap(value):
    """Plain Python value from an annotated value (identity otherwise)."""
    if isinstance(value, (AInt, AFloat, ABool)):
        return value.value
    if isinstance(value, Var):
        return unwrap(value.value)
    if isinstance(value, AArray):
        return value.to_list()
    return value


def _int_operand(other):
    """(value, ready, vid) for an integer-domain operand, or None."""
    if isinstance(other, AInt):
        return other.value, other.ready, other.vid
    if isinstance(other, bool):  # bool before int: bool is an int subclass
        return int(other), 0.0, -1
    if isinstance(other, int):
        return other, 0.0, -1
    if isinstance(other, ABool):
        return int(other.value), other.ready, other.vid
    return None


def _float_operand(other):
    """(value, ready, vid) for a float-domain operand, or None."""
    if isinstance(other, AFloat):
        return other.value, other.ready, other.vid
    if isinstance(other, AInt):
        return float(other.value), other.ready, other.vid
    if isinstance(other, (int, float)):
        return float(other), 0.0, -1
    return None


class ABool:
    """An annotated boolean (the result of annotated comparisons).

    Truth-tests transparently (``if a < b:`` works) while carrying the
    dataflow ready time of the comparison for HW critical paths.
    Truth-testing charges the ``branch`` cost: Python calls ``__bool__``
    exactly where compiled code executes a conditional branch (``if``,
    ``while``, ``and``/``or``), so control-flow overhead is annotated
    automatically — the dynamic analogue of the paper's ``t_if``.
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: bool, ready: float = 0.0, vid: int = -1):
        self.value = bool(value)
        self.ready = ready
        self.vid = vid

    def __bool__(self) -> bool:
        ctx = _context._current
        if ctx is not None:
            if ctx._fast:
                latency = ctx._latencies[_OP_BRANCH]
                if latency is None:
                    ctx._missing_cost(_OP_BRANCH)
                ctx.total_cycles += latency
                ctx._counts[_OP_BRANCH] += 1
            else:
                ctx.charge_id(_OP_BRANCH, (self.ready,), (self.vid,))
        return self.value

    # C semantics: a comparison result is an integer (0/1) usable in
    # arithmetic; promote to AInt and delegate.
    def _as_aint(self) -> "AInt":
        return AInt(int(self.value), self.ready, self.vid)

    def __add__(self, other):
        return self._as_aint() + other

    def __radd__(self, other):
        return other + self._as_aint()

    def __sub__(self, other):
        return self._as_aint() - other

    def __rsub__(self, other):
        return other - self._as_aint()

    def __mul__(self, other):
        return self._as_aint() * other

    def __rmul__(self, other):
        return other * self._as_aint()

    def __and__(self, other):
        return self._as_aint() & other

    def __rand__(self, other):
        return other & self._as_aint()

    def __or__(self, other):
        return self._as_aint() | other

    def __ror__(self, other):
        return other | self._as_aint()

    def __xor__(self, other):
        return self._as_aint() ^ other

    def __rxor__(self, other):
        return other ^ self._as_aint()

    def __lshift__(self, other):
        return self._as_aint() << other

    def __rshift__(self, other):
        return self._as_aint() >> other

    def __floordiv__(self, other):
        return self._as_aint() // other

    def __rfloordiv__(self, other):
        return other // self._as_aint()

    def __mod__(self, other):
        return self._as_aint() % other

    def __rmod__(self, other):
        return other % self._as_aint()

    def __neg__(self):
        return -self._as_aint()

    def __index__(self) -> int:
        return int(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"ABool({self.value})"


class AInt:
    """An annotated integer: int semantics + per-operation cost charging.

    Division follows Python semantics (``//`` floors); the reference ISS
    implements the same semantics so that single-source functional
    equivalence is exact (see DESIGN.md, substitution notes).

    Operator methods are installed below the class definitions (see
    module docstring); only behaviour that does not charge, or that
    delegates to charging operators, lives in the class body.
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0, ready: float = 0.0, vid: int = -1):
        if isinstance(value, AInt):
            ready, vid, value = value.ready, value.vid, value.value
        elif isinstance(value, ABool):
            ready, vid, value = value.ready, value.vid, int(value.value)
        if not isinstance(value, int):
            raise AnnotationError(
                f"AInt holds integers, got {type(value).__name__}; use AFloat"
            )
        self.value = value
        self.ready = ready
        self.vid = vid

    def __pos__(self):
        return self

    __hash__ = None  # mutable-cost semantics: do not use as dict keys

    # true division promotes to float, as in C when one operand is float;
    # kernels in the compiler subset use // exclusively.
    def __truediv__(self, other):
        return AFloat(float(self.value), self.ready, self.vid) / other

    def __rtruediv__(self, other):
        return other / AFloat(float(self.value), self.ready, self.vid)

    # interoperability with plain Python
    def __index__(self) -> int:
        return self.value

    def __int__(self) -> int:
        return self.value

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"AInt({self.value})"


class AFloat:
    """An annotated float, charging the ``f*`` operation costs."""

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0.0, ready: float = 0.0, vid: int = -1):
        if isinstance(value, (AFloat, AInt)):
            ready, vid, value = value.ready, value.vid, float(value.value)
        if not isinstance(value, (int, float)):
            raise AnnotationError(f"AFloat holds numbers, got {type(value).__name__}")
        self.value = float(value)
        self.ready = ready
        self.vid = vid

    __hash__ = None

    def __float__(self) -> float:
        return self.value

    def __int__(self) -> int:
        return int(self.value)

    def __bool__(self) -> bool:
        return self.value != 0.0

    def __repr__(self) -> str:
        return f"AFloat({self.value})"


# ---------------------------------------------------------------------------
# Operator factories.  Defined *after* the value classes so each closure
# binds the concrete result class (no registry lookup per operation) and
# the interned op id (no name hashing per operation).
# ---------------------------------------------------------------------------

def _name_method(method, dunder, owner):
    """Real names for generated operators — profiler/flamegraph frames
    must read ``AInt.__radd__``, not the generic closure name."""
    method.__name__ = dunder
    method.__qualname__ = f"{owner.__name__}.{dunder}"
    return method


def _make_int_binop(py_op, cost_name, result_cls):
    op = OP_IDS[cost_name]

    def method(self, other):
        tp = type(other)
        if tp is AInt:
            other_value = other.value
        elif tp is int:
            other_value = other
        else:
            operand = _int_operand(other)
            if operand is None:
                return NotImplemented
            other_value = operand[0]
        result = py_op(self.value, other_value)
        ctx = _context._current
        if ctx is not None:
            if ctx._fast:
                latency = ctx._latencies[op]
                if latency is None:
                    ctx._missing_cost(op)
                ctx.total_cycles += latency
                ctx._counts[op] += 1
            else:
                operand = _int_operand(other)
                other_value, other_ready, other_vid = operand
                ready, vid = ctx.charge_id(op, (self.ready, other_ready),
                                           (self.vid, other_vid))
                return result_cls(result, ready, vid)
        # No context (untimed or fast-forward-suppressed segment) and the
        # fast path share the slim allocation below.
        obj = _new(result_cls)
        obj.value = result
        obj.ready = 0.0
        obj.vid = -1
        return obj

    return method


def _make_int_rbinop(py_op, cost_name, result_cls):
    op = OP_IDS[cost_name]

    def method(self, other):
        operand = _int_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(other_value, self.value)
        ctx = _context._current
        if ctx is None:
            return result_cls(result)
        if ctx._fast:
            latency = ctx._latencies[op]
            if latency is None:
                ctx._missing_cost(op)
            ctx.total_cycles += latency
            ctx._counts[op] += 1
            obj = _new(result_cls)
            obj.value = result
            obj.ready = 0.0
            obj.vid = -1
            return obj
        ready, vid = ctx.charge_id(op, (other_ready, self.ready),
                                   (other_vid, self.vid))
        return result_cls(result, ready, vid)

    return method


def _make_int_unop(py_op, cost_name):
    op = OP_IDS[cost_name]

    def method(self):
        result = py_op(self.value)
        ctx = _context._current
        if ctx is None:
            return AInt(result)
        if ctx._fast:
            latency = ctx._latencies[op]
            if latency is None:
                ctx._missing_cost(op)
            ctx.total_cycles += latency
            ctx._counts[op] += 1
            obj = _new(AInt)
            obj.value = result
            obj.ready = 0.0
            obj.vid = -1
            return obj
        ready, vid = ctx.charge_id(op, (self.ready,), (self.vid,))
        return AInt(result, ready, vid)

    return method


def _make_float_binop(py_op, cost_name, result_cls):
    op = OP_IDS[cost_name]

    def method(self, other):
        tp = type(other)
        if tp is AFloat:
            other_value = other.value
        elif tp is float or tp is int:
            other_value = float(other)
        else:
            operand = _float_operand(other)
            if operand is None:
                return NotImplemented
            other_value = operand[0]
        result = py_op(self.value, other_value)
        ctx = _context._current
        if ctx is not None:
            if ctx._fast:
                latency = ctx._latencies[op]
                if latency is None:
                    ctx._missing_cost(op)
                ctx.total_cycles += latency
                ctx._counts[op] += 1
            else:
                operand = _float_operand(other)
                other_value, other_ready, other_vid = operand
                ready, vid = ctx.charge_id(op, (self.ready, other_ready),
                                           (self.vid, other_vid))
                return result_cls(result, ready, vid)
        obj = _new(result_cls)
        obj.value = result
        obj.ready = 0.0
        obj.vid = -1
        return obj

    return method


def _make_float_rbinop(py_op, cost_name, result_cls):
    op = OP_IDS[cost_name]

    def method(self, other):
        operand = _float_operand(other)
        if operand is None:
            return NotImplemented
        other_value, other_ready, other_vid = operand
        result = py_op(other_value, self.value)
        ctx = _context._current
        if ctx is None:
            return result_cls(result)
        if ctx._fast:
            latency = ctx._latencies[op]
            if latency is None:
                ctx._missing_cost(op)
            ctx.total_cycles += latency
            ctx._counts[op] += 1
            obj = _new(result_cls)
            obj.value = result
            obj.ready = 0.0
            obj.vid = -1
            return obj
        ready, vid = ctx.charge_id(op, (other_ready, self.ready),
                                   (other_vid, self.vid))
        return result_cls(result, ready, vid)

    return method


def _make_float_unop(py_op, cost_name):
    op = OP_IDS[cost_name]

    def method(self):
        result = py_op(self.value)
        ctx = _context._current
        if ctx is None:
            return AFloat(result)
        if ctx._fast:
            latency = ctx._latencies[op]
            if latency is None:
                ctx._missing_cost(op)
            ctx.total_cycles += latency
            ctx._counts[op] += 1
            obj = _new(AFloat)
            obj.value = result
            obj.ready = 0.0
            obj.vid = -1
            return obj
        ready, vid = ctx.charge_id(op, (self.ready,), (self.vid,))
        return AFloat(result, ready, vid)

    return method


# (python operator, cost name); the dunder name derives from the
# operator's own __name__, exactly like compiled code derives the
# instruction from the source operator.
_INT_BINOPS = (
    (_op.add, "add"), (_op.sub, "sub"), (_op.mul, "mul"),
    (_op.floordiv, "div"), (_op.mod, "mod"),
    (_op.lshift, "shl"), (_op.rshift, "shr"),
    (_op.and_, "and"), (_op.or_, "or"), (_op.xor, "xor"),
)
_INT_COMPARES = (
    (_op.lt, "lt"), (_op.le, "le"), (_op.gt, "gt"),
    (_op.ge, "ge"), (_op.eq, "eq"), (_op.ne, "ne"),
)
_INT_UNOPS = ((_op.neg, "neg"), (_op.invert, "inv"), (abs, "abs"))
_FLOAT_BINOPS = (
    (_op.add, "fadd"), (_op.sub, "fsub"),
    (_op.mul, "fmul"), (_op.truediv, "fdiv"),
)
_FLOAT_COMPARES = tuple((cmp, "fcmp") for cmp, _ in _INT_COMPARES)
_FLOAT_UNOPS = ((_op.neg, "fneg"), (abs, "fabs"))


def _install_operators():
    for py_op, cost in _INT_BINOPS:
        stem = py_op.__name__.strip("_")
        setattr(AInt, f"__{stem}__", _name_method(
            _make_int_binop(py_op, cost, AInt), f"__{stem}__", AInt))
        setattr(AInt, f"__r{stem}__", _name_method(
            _make_int_rbinop(py_op, cost, AInt), f"__r{stem}__", AInt))
    for py_op, cost in _INT_COMPARES:
        dunder = f"__{py_op.__name__}__"
        setattr(AInt, dunder, _name_method(
            _make_int_binop(py_op, cost, ABool), dunder, AInt))
    for py_op, cost in _INT_UNOPS:
        dunder = f"__{py_op.__name__}__"
        setattr(AInt, dunder, _name_method(
            _make_int_unop(py_op, cost), dunder, AInt))
    for py_op, cost in _FLOAT_BINOPS:
        stem = py_op.__name__.strip("_")
        setattr(AFloat, f"__{stem}__", _name_method(
            _make_float_binop(py_op, cost, AFloat), f"__{stem}__", AFloat))
        setattr(AFloat, f"__r{stem}__", _name_method(
            _make_float_rbinop(py_op, cost, AFloat), f"__r{stem}__", AFloat))
    for py_op, cost in _FLOAT_COMPARES:
        dunder = f"__{py_op.__name__}__"
        setattr(AFloat, dunder, _name_method(
            _make_float_binop(py_op, cost, ABool), dunder, AFloat))
    for py_op, cost in _FLOAT_UNOPS:
        dunder = f"__{py_op.__name__}__"
        setattr(AFloat, dunder, _name_method(
            _make_float_unop(py_op, cost), dunder, AFloat))


_install_operators()

# Setting __eq__ after class creation leaves the default __hash__ in
# the type dict from the class body ("__hash__ = None"), which is what
# we want — but make the invariant explicit.
assert AInt.__hash__ is None and AFloat.__hash__ is None

_OP_BRANCH = OP_IDS["branch"]
_OP_LOAD = OP_IDS["load"]
_OP_STORE = OP_IDS["store"]
_OP_ASSIGN = OP_IDS["assign"]


class AArray:
    """An annotated array of numbers.

    Element reads charge ``load``; element writes charge ``store``.  In
    HW mode a per-slot ready time is maintained so critical paths through
    memory (write→read dependencies) are honoured.
    """

    __slots__ = ("_data", "_readys", "_vids")

    def __init__(self, data: Iterable[Number] = ()):
        self._data: List[Number] = [unwrap(v) for v in data]
        for v in self._data:
            if not isinstance(v, (int, float)):
                raise AnnotationError(
                    f"AArray holds numbers, got {type(v).__name__}"
                )
        self._readys: List[float] = [0.0] * len(self._data)
        self._vids: List[int] = [-1] * len(self._data)

    @classmethod
    def zeros(cls, length: int) -> "AArray":
        """An array of ``length`` integer zeros."""
        if length < 0:
            raise AnnotationError("array length cannot be negative")
        return cls([0] * int(length))

    def __len__(self) -> int:
        return len(self._data)

    def _index_of(self, index) -> "tuple[int, float, int]":
        if isinstance(index, AInt):
            return index.value, index.ready, index.vid
        if isinstance(index, int):
            return index, 0.0, -1
        raise AnnotationError(
            f"array index must be int or AInt, got {type(index).__name__}"
        )

    def __getitem__(self, index):
        ctx = _context._current
        if ctx is not None and ctx._fast:
            tp = type(index)
            if tp is AInt:
                i = index.value
            elif tp is int:
                i = index
            else:
                i = self._index_of(index)[0]
            value = self._data[i]
            latency = ctx._latencies[_OP_LOAD]
            if latency is None:
                ctx._missing_cost(_OP_LOAD)
            ctx.total_cycles += latency
            ctx._counts[_OP_LOAD] += 1
            obj = _new(AInt) if isinstance(value, int) else _new(AFloat)
            obj.value = value
            obj.ready = 0.0
            obj.vid = -1
            return obj
        i, idx_ready, idx_vid = self._index_of(index)
        value = self._data[i]
        cls = AInt if isinstance(value, int) else AFloat
        if ctx is None:
            return cls(value)
        ready, vid = ctx.charge_id(_OP_LOAD, (idx_ready, self._readys[i]),
                                   (idx_vid, self._vids[i]))
        return cls(value, ready, vid)

    def __setitem__(self, index, value) -> None:
        ctx = _context._current
        if ctx is not None and ctx._fast:
            tp = type(index)
            if tp is AInt:
                i = index.value
            elif tp is int:
                i = index
            else:
                i = self._index_of(index)[0]
            tp = type(value)
            if tp is AInt or tp is AFloat:
                plain = value.value
            elif tp is int or tp is float:
                plain = value
            elif isinstance(value, (AInt, AFloat, ABool)):
                plain = unwrap(value)
            elif isinstance(value, (int, float)):
                plain = value
            else:
                raise AnnotationError(
                    f"array element must be a number, got {type(value).__name__}"
                )
            latency = ctx._latencies[_OP_STORE]
            if latency is None:
                ctx._missing_cost(_OP_STORE)
            ctx.total_cycles += latency
            ctx._counts[_OP_STORE] += 1
            self._data[i] = plain
            return
        i, idx_ready, idx_vid = self._index_of(index)
        if isinstance(value, (AInt, AFloat, ABool)):
            val_ready, val_vid, plain = value.ready, value.vid, unwrap(value)
        elif isinstance(value, (int, float)):
            val_ready, val_vid, plain = 0.0, -1, value
        else:
            raise AnnotationError(
                f"array element must be a number, got {type(value).__name__}"
            )
        if ctx is not None:
            ready, vid = ctx.charge_id(_OP_STORE, (idx_ready, val_ready),
                                       (idx_vid, val_vid))
            self._readys[i] = ready
            self._vids[i] = vid
        self._data[i] = plain

    def __iter__(self):
        for i in range(len(self._data)):
            yield self[i]

    def to_list(self) -> List[Number]:
        """Plain-Python copy of the contents (no charging)."""
        return list(self._data)

    def __repr__(self) -> str:
        preview = self._data[:8]
        suffix = ", ..." if len(self._data) > 8 else ""
        return f"AArray({preview}{suffix} len={len(self._data)})"


class Var:
    """An explicitly-assignable variable charging the paper's ``t_=``.

    Most code lets calibration absorb assignment costs into the operator
    weights; ``Var`` exists for C-exact modelling (and reproduces the
    paper's Fig. 3 walkthrough literally)::

        i = Var(0)
        i.assign(c + d)        # charges t_= on top of t_+
    """

    __slots__ = ("value", "ready", "vid")

    def __init__(self, value: Number = 0):
        self.value = unwrap(value)
        self.ready = 0.0
        self.vid = -1

    def assign(self, new_value) -> "Var":
        """Assign, charging one ``assign`` operation."""
        ctx = _context._current
        if ctx is not None:
            if ctx._fast:
                ctx.charge_fast(_OP_ASSIGN)
                self.ready = 0.0
                self.vid = -1
            else:
                if isinstance(new_value, (AInt, AFloat, ABool)):
                    src_ready, src_vid = new_value.ready, new_value.vid
                else:
                    src_ready, src_vid = 0.0, -1
                self.ready, self.vid = ctx.charge_id(
                    _OP_ASSIGN, (src_ready,), (src_vid,))
        self.value = unwrap(new_value)
        return self

    def get(self):
        """The held value as an annotated type (no charge: register read)."""
        if isinstance(self.value, int):
            return AInt(self.value, self.ready, self.vid)
        return AFloat(self.value, self.ready, self.vid)

    def __repr__(self) -> str:
        return f"Var({self.value!r})"
