"""Operator-overloading time annotation (the paper's §3 mechanism)."""

from .context import (
    CostContext,
    MODE_HW,
    MODE_SW,
    OperationRecorder,
    active,
    current_context,
    set_current,
)
from .costs import (
    COMPARE_OPERATIONS,
    KNOWN_OPERATIONS,
    MEMORY_OPERATIONS,
    N_OPERATIONS,
    OP_IDS,
    OP_NAMES,
    OperationCosts,
    op_id_of,
    uniform_costs,
)
from .functions import (
    ANNOTATION_DECORATORS,
    ANNOTATION_ENTRY_POINTS,
    ANNOTATION_WRAPPERS,
    aint,
    annotated_function,
    arange,
    branch,
    make_array,
)
from .types import AArray, ABool, AFloat, AInt, Var, unwrap

__all__ = [
    "CostContext", "MODE_HW", "MODE_SW", "OperationRecorder",
    "active", "current_context", "set_current",
    "COMPARE_OPERATIONS", "KNOWN_OPERATIONS", "MEMORY_OPERATIONS",
    "N_OPERATIONS", "OP_IDS", "OP_NAMES", "op_id_of",
    "OperationCosts", "uniform_costs",
    "ANNOTATION_DECORATORS", "ANNOTATION_ENTRY_POINTS",
    "ANNOTATION_WRAPPERS",
    "aint", "annotated_function", "arange", "branch", "make_array",
    "AArray", "ABool", "AFloat", "AInt", "Var", "unwrap",
]
