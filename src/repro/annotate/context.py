"""The active cost-accumulation context.

The annotated types (:mod:`repro.annotate.types`) charge every executed
operation into "the current segment's accumulator".  This module owns
that notion: a :class:`CostContext` holds the running totals for the
segment currently executing, and a module-level *current context* slot
says which accumulator is live.

The kernel is single-threaded and runs exactly one process at a time, so
a single slot (rather than a stack per OS thread) is sufficient; the
performance library swaps the slot on every process resume/suspend.
When no context is active, annotated arithmetic executes functionally
with zero charging — the same source then behaves exactly like the plain
untimed specification.

Two accumulation modes exist, matching the paper's two segment
estimation methods (§3):

* ``sw`` — sequential resource: only the running **sum** of operation
  latencies matters (two statements cannot execute in parallel on a
  processor).
* ``hw`` — parallel resource: in addition to the sum (**Tmax**, the
  single-ALU bound) the context propagates *dataflow ready times*
  through the annotated values, so at segment end the maximum ready
  time is the **critical path** (**Tmin**, the fastest implementation).
  This is an incremental, single-pass computation — no graph is stored
  unless an operation recorder is attached (used by :mod:`repro.hls` to
  capture DFGs for actual synthesis).
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Sequence, Tuple

from ..errors import AnnotationError
from .costs import OperationCosts

MODE_SW = "sw"
MODE_HW = "hw"


class OperationRecorder:
    """Optional sink for the full operation stream of a segment.

    ``repro.hls`` implements this to build dataflow graphs; the default
    context runs without one for speed.
    """

    def record(self, operation: str, latency: float,
               operand_ids: Sequence[int], result_id: int) -> None:
        raise NotImplementedError


class CostContext:
    """Per-resource accumulator for the currently-executing segment."""

    __slots__ = (
        "costs", "mode", "total_cycles", "max_ready", "op_counts",
        "lifetime_op_counts", "recorder", "_next_value_id", "_ready_base",
    )

    def __init__(self, costs: OperationCosts, mode: str = MODE_SW,
                 recorder: Optional[OperationRecorder] = None):
        if mode not in (MODE_SW, MODE_HW):
            raise AnnotationError(f"context mode must be 'sw' or 'hw', got {mode!r}")
        self.costs = costs
        self.mode = mode
        self.total_cycles = 0.0
        self.max_ready = 0.0
        #: per-segment operation counts (cleared by :meth:`reset`)
        self.op_counts: Dict[str, int] = {}
        #: cumulative operation counts over the context's whole lifetime
        #: (never reset) — the raw material for activity-based power
        #: estimation (:mod:`repro.power`).
        self.lifetime_op_counts: Dict[str, int] = {}
        self.recorder = recorder
        self._next_value_id = 0
        # The dataflow ready clock is monotone across the context's whole
        # lifetime; _ready_base marks where the current segment started.
        # Values produced in earlier segments carry readys <= the base
        # and therefore count as available at segment start — a
        # segment's critical path can never exceed its operation sum.
        self._ready_base = 0.0

    # -- charging (called from the annotated types) -------------------------

    def charge(self, operation: str, operand_readys: Sequence[float] = (),
               operand_ids: Sequence[int] = ()) -> Tuple[float, int]:
        """Charge one operation; return ``(result_ready, result_id)``.

        ``operand_readys`` are the dataflow ready times of the operands
        (ignored in ``sw`` mode); ``operand_ids`` identify the operand
        values for the optional recorder.  ``result_id`` is a unique id
        for the produced value, ``-1`` when no recorder is attached.
        """
        latency = self.costs.get(operation)
        self.total_cycles += latency
        self.op_counts[operation] = self.op_counts.get(operation, 0) + 1
        self.lifetime_op_counts[operation] = (
            self.lifetime_op_counts.get(operation, 0) + 1
        )

        if self.mode == MODE_HW:
            start = max(max(operand_readys, default=0.0), self._ready_base)
            ready = start + latency
            if ready > self.max_ready:
                self.max_ready = ready
        else:
            ready = 0.0

        result_id = -1
        if self.recorder is not None:
            result_id = self._next_value_id
            self._next_value_id += 1
            self.recorder.record(operation, latency,
                                 [i for i in operand_ids if i >= 0], result_id)
        return ready, result_id

    # -- segment lifecycle ---------------------------------------------------

    def segment_totals(self) -> Tuple[float, float]:
        """Return ``(t_max, t_min)`` in cycles for the segment so far.

        For ``sw`` mode both values equal the plain sum (there is no
        parallel slack on a processor).
        """
        if self.mode == MODE_HW:
            critical_path = max(0.0, self.max_ready - self._ready_base)
            return self.total_cycles, min(critical_path, self.total_cycles)
        return self.total_cycles, self.total_cycles

    def reset(self) -> None:
        """Clear accumulation for a new segment.

        The ready clock is *not* rewound: values computed in earlier
        segments stay timestamped in the past, which is exactly what
        makes them "already available" to the new segment.
        """
        self.total_cycles = 0.0
        self._ready_base = self.max_ready
        self.op_counts = {}
        self._next_value_id = 0

    def snapshot_op_counts(self) -> Dict[str, int]:
        return dict(self.op_counts)

    def __repr__(self) -> str:
        return (f"CostContext(mode={self.mode!r}, total={self.total_cycles:.1f}, "
                f"critical_path={self.max_ready:.1f})")


# ---------------------------------------------------------------------------
# The current-context slot.
# ---------------------------------------------------------------------------

_current: Optional[CostContext] = None


def current_context() -> Optional[CostContext]:
    """The context charged by annotated operations right now (or None)."""
    return _current


def set_current(context: Optional[CostContext]) -> Optional[CostContext]:
    """Install ``context`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = context
    return previous


@contextlib.contextmanager
def active(context: CostContext):
    """Scope a context: ``with active(ctx): ...`` — mainly for tests and
    standalone (non-kernel) estimation of a code fragment."""
    previous = set_current(context)
    try:
        yield context
    finally:
        set_current(previous)
