"""The active cost-accumulation context.

The annotated types (:mod:`repro.annotate.types`) charge every executed
operation into "the current segment's accumulator".  This module owns
that notion: a :class:`CostContext` holds the running totals for the
segment currently executing, and a module-level *current context* slot
says which accumulator is live.

The kernel is single-threaded and runs exactly one process at a time, so
a single slot (rather than a stack per OS thread) is sufficient; the
performance library swaps the slot on every process resume/suspend.
When no context is active, annotated arithmetic executes functionally
with zero charging — the same source then behaves exactly like the plain
untimed specification.

Two accumulation modes exist, matching the paper's two segment
estimation methods (§3):

* ``sw`` — sequential resource: only the running **sum** of operation
  latencies matters (two statements cannot execute in parallel on a
  processor).
* ``hw`` — parallel resource: in addition to the sum (**Tmax**, the
  single-ALU bound) the context propagates *dataflow ready times*
  through the annotated values, so at segment end the maximum ready
  time is the **critical path** (**Tmin**, the fastest implementation).
  This is an incremental, single-pass computation — no graph is stored
  unless an operation recorder is attached (used by :mod:`repro.hls` to
  capture DFGs for actual synthesis).

Charging fast path
------------------

The annotated simulation executes one :meth:`CostContext.charge` per
simulated operation, so this is the hottest code in the whole library
(the paper's host-time *overload* is dominated by it).  The common case
— ``sw`` mode, no recorder — therefore avoids all per-operation dict
traffic: the cost table is resolved **once per context** into a flat
op-id→latency list (:attr:`_latencies`), per-segment operation counts
live in a flat op-id→count list (:attr:`_counts`), and the lifetime
totals are folded in at :meth:`reset` (once per *segment*) instead of
once per *operation*.  The annotated types inline this fast path when
``ctx._fast`` is true; everything name-based (:meth:`charge`,
:attr:`op_counts`, :meth:`snapshot_op_counts`) stays available as the
compatible view over the interned arrays.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Sequence, Tuple

from ..errors import AnnotationError
from .costs import N_OPERATIONS, OP_IDS, OP_NAMES, OperationCosts, op_id_of

MODE_SW = "sw"
MODE_HW = "hw"

#: Shared all-zero template used to detect "segment charged nothing"
#: without a per-operation dirty flag (list equality is C-speed).
_ZERO_COUNTS = [0] * N_OPERATIONS


class OperationRecorder:
    """Optional sink for the full operation stream of a segment.

    ``repro.hls`` implements this to build dataflow graphs; the default
    context runs without one for speed.
    """

    def record(self, operation: str, latency: float,
               operand_ids: Sequence[int], result_id: int) -> None:
        raise NotImplementedError


class CostContext:
    """Per-resource accumulator for the currently-executing segment."""

    __slots__ = (
        "costs", "mode", "total_cycles", "max_ready",
        "_counts", "_lifetime", "_latencies",
        "_recorder", "_fast", "_force_general",
        "_next_value_id", "_ready_base",
    )

    def __init__(self, costs: OperationCosts, mode: str = MODE_SW,
                 recorder: Optional[OperationRecorder] = None,
                 force_general: bool = False):
        if mode not in (MODE_SW, MODE_HW):
            raise AnnotationError(f"context mode must be 'sw' or 'hw', got {mode!r}")
        self.costs = costs
        self.mode = mode
        self.total_cycles = 0.0
        self.max_ready = 0.0
        #: per-segment operation counts, indexed by interned op id
        #: (cleared by :meth:`reset`); see the :attr:`op_counts` view.
        self._counts = [0] * N_OPERATIONS
        #: cumulative counts over completed segments — folded in once
        #: per :meth:`reset`, *not* once per operation.  The
        #: :attr:`lifetime_op_counts` view adds the live segment back
        #: in, so readers never observe a stale total.
        self._lifetime = [0] * N_OPERATIONS
        #: op-id → latency, resolved once; ``None`` marks a missing
        #: characterization (refused with :class:`AnnotationError`).
        self._latencies = costs.latency_list()
        self._recorder = recorder
        #: Debug/differential hook: force every charge through the
        #: general path even when the fast path would apply.
        self._force_general = bool(force_general)
        self._fast = (mode == MODE_SW and recorder is None
                      and not self._force_general)
        self._next_value_id = 0
        # The dataflow ready clock is monotone across the context's whole
        # lifetime; _ready_base marks where the current segment started.
        # Values produced in earlier segments carry readys <= the base
        # and therefore count as available at segment start — a
        # segment's critical path can never exceed its operation sum.
        self._ready_base = 0.0

    # -- recorder management -------------------------------------------------

    @property
    def recorder(self) -> Optional[OperationRecorder]:
        return self._recorder

    @recorder.setter
    def recorder(self, recorder: Optional[OperationRecorder]) -> None:
        self._recorder = recorder
        self._fast = (self.mode == MODE_SW and recorder is None
                      and not self._force_general)

    # -- compatible dict views over the interned arrays ----------------------

    @property
    def op_counts(self) -> Dict[str, int]:
        """Per-segment operation counts as a name→count dict."""
        counts = self._counts
        return {name: counts[i] for i, name in enumerate(OP_NAMES)
                if counts[i]}

    @property
    def lifetime_op_counts(self) -> Dict[str, int]:
        """Cumulative operation counts over the context's whole lifetime
        (including the segment currently accumulating) — the raw
        material for activity-based power estimation (:mod:`repro.power`).
        """
        counts, lifetime = self._counts, self._lifetime
        return {name: counts[i] + lifetime[i]
                for i, name in enumerate(OP_NAMES)
                if counts[i] + lifetime[i]}

    # -- charging (called from the annotated types) -------------------------

    def _missing_cost(self, op: int) -> None:
        raise AnnotationError(
            f"cost table {self.costs.name!r} has no entry for operation "
            f"{OP_NAMES[op]!r}; characterize the platform for it"
        )

    def charge_fast(self, op: int) -> None:
        """Slim ``sw``/no-recorder charge by interned op id.

        The operator factories in :mod:`repro.annotate.types` inline
        this body; the method exists for out-of-line callers (``Var``,
        :mod:`repro.annotate.functions`) and tests.
        """
        latency = self._latencies[op]
        if latency is None:
            self._missing_cost(op)
        self.total_cycles += latency
        self._counts[op] += 1

    def charge_id(self, op: int, operand_readys: Sequence[float] = (),
                  operand_ids: Sequence[int] = ()) -> Tuple[float, int]:
        """General charge by interned op id; returns ``(ready, result_id)``.

        Handles ``hw``-mode dataflow propagation and the optional
        operation recorder; the annotated types only reach this when
        ``_fast`` is false.
        """
        latency = self._latencies[op]
        if latency is None:
            self._missing_cost(op)
        self.total_cycles += latency
        self._counts[op] += 1

        if self.mode == MODE_HW:
            start = max(max(operand_readys, default=0.0), self._ready_base)
            ready = start + latency
            if ready > self.max_ready:
                self.max_ready = ready
        else:
            ready = 0.0

        result_id = -1
        if self._recorder is not None:
            result_id = self._next_value_id
            self._next_value_id += 1
            self._recorder.record(OP_NAMES[op], latency,
                                  [i for i in operand_ids if i >= 0],
                                  result_id)
        return ready, result_id

    def charge(self, operation: str, operand_readys: Sequence[float] = (),
               operand_ids: Sequence[int] = ()) -> Tuple[float, int]:
        """Charge one operation by name; return ``(result_ready, result_id)``.

        ``operand_readys`` are the dataflow ready times of the operands
        (ignored in ``sw`` mode); ``operand_ids`` identify the operand
        values for the optional recorder.  ``result_id`` is a unique id
        for the produced value, ``-1`` when no recorder is attached.
        """
        op = OP_IDS.get(operation)
        if op is None:
            raise AnnotationError(
                f"cost table {self.costs.name!r} has no entry for operation "
                f"{operation!r}; characterize the platform for it"
            )
        return self.charge_id(op, operand_readys, operand_ids)

    # -- block charging (:mod:`repro.compilebc`) -----------------------------

    def charge_block(self, cycles: float, op_ids: Sequence[int],
                     op_counts: Sequence[int]) -> None:
        """Fold a pre-summed basic block into the running totals.

        The bytecode compile tier folds each basic block's operation
        multiset into one ``(cycles, op_ids, op_counts)`` triple at
        compile time; executing the block then costs a single call here
        instead of one :meth:`charge_fast` per operation.  ``cycles``
        must equal ``sum(latency[op] * n)`` for the same cost table the
        context was built with — the compile tier validates that at bind
        time (and that every latency is half-integral, so the pre-summed
        float is bit-identical to charging the operations one by one).
        """
        self.total_cycles += cycles
        counts = self._counts
        for i in range(len(op_ids)):
            counts[op_ids[i]] += op_counts[i]

    def charge_block_scaled(self, cycles: float, op_ids: Sequence[int],
                            op_counts: Sequence[int], trips: int) -> None:
        """Charge a basic block executed ``trips`` times in one call.

        Used for counted loops whose bodies charge unconditionally: the
        per-iteration multiset scales by the (runtime) trip count.  With
        half-integral latencies ``cycles * trips`` is exact, so the
        result is identical to charging every iteration dynamically.
        """
        if trips:
            self.total_cycles += cycles * trips
            counts = self._counts
            for i in range(len(op_ids)):
                counts[op_ids[i]] += op_counts[i] * trips

    # -- segment lifecycle ---------------------------------------------------

    def segment_totals(self) -> Tuple[float, float]:
        """Return ``(t_max, t_min)`` in cycles for the segment so far.

        For ``sw`` mode both values equal the plain sum (there is no
        parallel slack on a processor).
        """
        if self.mode == MODE_HW:
            critical_path = max(0.0, self.max_ready - self._ready_base)
            return self.total_cycles, min(critical_path, self.total_cycles)
        return self.total_cycles, self.total_cycles

    def reset(self) -> None:
        """Clear accumulation for a new segment.

        The ready clock is *not* rewound: values computed in earlier
        segments stay timestamped in the past, which is exactly what
        makes them "already available" to the new segment.  This is also
        where the segment's operation counts fold into the lifetime
        totals — once per segment instead of once per operation.
        """
        self.total_cycles = 0.0
        self._ready_base = self.max_ready
        counts = self._counts
        if counts != _ZERO_COUNTS:
            self._lifetime = [a + b for a, b in zip(self._lifetime, counts)]
            # In-place clear: the _counts list identity is stable for the
            # context's lifetime, so generators suspended mid-segment
            # (e.g. ``arange``) can never hold a dead reference.
            counts[:] = _ZERO_COUNTS
        self._next_value_id = 0

    def snapshot_op_counts(self) -> Dict[str, int]:
        return self.op_counts

    def scale_segment(self, factor: float) -> None:
        """Scale the live segment's accumulated time by ``factor``.

        Fault-injection hook (perturbed segment charge time): both the
        operation-sum and, in ``hw`` mode, the critical-path span scale
        together so ``segment_totals`` stays internally consistent.
        The operation counts are untouched — the fault model perturbs
        *time*, not the operation mix.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        self.total_cycles *= factor
        if self.mode == MODE_HW:
            span = self.max_ready - self._ready_base
            if span > 0.0:
                self.max_ready = self._ready_base + span * factor

    # -- fast-forward support (:mod:`repro.segments.precharge`) --------------

    def segment_snapshot(self) -> Tuple[float, float, tuple]:
        """``(t_max, t_min, counts)`` of the live segment, for
        pre-characterization.  ``counts`` is the raw interned-id tuple.
        """
        t_max, t_min = self.segment_totals()
        return t_max, t_min, tuple(self._counts)

    def apply_snapshot(self, t_max: float, t_min: float,
                       counts: tuple) -> None:
        """Install a pre-characterized segment accumulation.

        Overwrites whatever the live segment accumulated (by eligibility
        proof the two are identical when charging actually ran) and
        advances the ``hw`` ready clock so downstream segments observe
        the same critical-path state as a dynamically charged run.
        """
        self.total_cycles = t_max
        self._counts[:] = counts
        if self.mode == MODE_HW:
            ready = self._ready_base + t_min
            if ready > self.max_ready:
                self.max_ready = ready

    def __repr__(self) -> str:
        return (f"CostContext(mode={self.mode!r}, total={self.total_cycles:.1f}, "
                f"critical_path={self.max_ready:.1f})")


# ---------------------------------------------------------------------------
# The current-context slot.
# ---------------------------------------------------------------------------

_current: Optional[CostContext] = None


def current_context() -> Optional[CostContext]:
    """The context charged by annotated operations right now (or None)."""
    return _current


def set_current(context: Optional[CostContext]) -> Optional[CostContext]:
    """Install ``context`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = context
    return previous


@contextlib.contextmanager
def active(context: CostContext):
    """Scope a context: ``with active(ctx): ...`` — mainly for tests and
    standalone (non-kernel) estimation of a code fragment."""
    previous = set_current(context)
    try:
        yield context
    finally:
        set_current(previous)
