"""Operation cost tables — the platform characterization data.

The paper characterizes "each C++ object ... for each of the resources
of the target platform by its execution time" and expects the numbers to
come from the platform vendor (or from calibration against a reference —
see :mod:`repro.calibration`).  An :class:`OperationCosts` table maps
canonical operation names to latencies in *cycles* of the owning
resource's clock.  Fractional cycles are allowed (the paper's Fig. 3
uses ``t_if = 2.4``): they represent average costs over data-dependent
micro-behaviour.

Canonical operation names
-------------------------

======== =======================================================
name      meaning
======== =======================================================
add sub   integer +/-
mul div   integer * and // (C-style division)
mod       integer remainder
shl shr   shifts
and or xor bitwise logic
neg inv abs unary -, ~, abs()
lt le gt ge eq ne  comparisons
load      array element read  (``a[i]`` on the right-hand side)
store     array element write (``a[i] = ...``)
assign    explicit assignment (``Var.assign`` / paper's ``t_=``)
branch    conditional branch evaluation (paper's ``t_if``)
call      function-call overhead (paper's ``t_fc``)
fadd fsub fmul fdiv fneg fabs fcmp  float variants
======== =======================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from ..errors import AnnotationError

#: Every operation name the annotation layer may charge.
KNOWN_OPERATIONS = frozenset({
    "add", "sub", "mul", "div", "mod", "shl", "shr",
    "and", "or", "xor", "neg", "inv", "abs",
    "lt", "le", "gt", "ge", "eq", "ne",
    "load", "store", "assign", "branch", "call",
    "fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fcmp",
})

#: Interned operation ids: every known operation name mapped to a small
#: dense integer.  The charging fast path indexes per-context flat lists
#: with these ids instead of hashing name strings into dicts on every
#: executed operation (see :mod:`repro.annotate.context`).
OP_NAMES: tuple = tuple(sorted(KNOWN_OPERATIONS))
OP_IDS = {name: index for index, name in enumerate(OP_NAMES)}
N_OPERATIONS = len(OP_NAMES)


def op_id_of(operation: str) -> int:
    """The interned id of ``operation``; unknown names are an error."""
    try:
        return OP_IDS[operation]
    except KeyError:
        raise AnnotationError(
            f"unknown operation name {operation!r}; known operations are "
            f"{sorted(KNOWN_OPERATIONS)}"
        ) from None


#: Operations that read/write memory; useful for analyses that model
#: memory pressure separately from ALU pressure.
MEMORY_OPERATIONS = frozenset({"load", "store"})

#: Comparison operations (map onto ALU flag logic on most targets).
COMPARE_OPERATIONS = frozenset({"lt", "le", "gt", "ge", "eq", "ne", "fcmp"})


class OperationCosts:
    """An immutable operation→cycles table for one platform resource."""

    __slots__ = ("_table", "name")

    def __init__(self, table: Mapping[str, float], name: str = ""):
        unknown = set(table) - KNOWN_OPERATIONS
        if unknown:
            raise AnnotationError(
                f"unknown operation names in cost table {name!r}: {sorted(unknown)}"
            )
        bad = {op: c for op, c in table.items() if c < 0}
        if bad:
            raise AnnotationError(f"negative costs in table {name!r}: {bad}")
        self._table: Dict[str, float] = dict(table)
        self.name = name

    def get(self, operation: str) -> float:
        """Cycles for ``operation``; missing entries are an error.

        A missing entry means the platform characterization is
        incomplete for the code being estimated — silently returning 0
        would corrupt every downstream figure, so we refuse.
        """
        try:
            return self._table[operation]
        except KeyError:
            raise AnnotationError(
                f"cost table {self.name!r} has no entry for operation "
                f"{operation!r}; characterize the platform for it"
            ) from None

    def latency_list(self) -> list:
        """Latencies as a flat list indexed by interned op id.

        Missing entries are ``None``: the charging fast path turns an
        index hit on ``None`` into the same :class:`AnnotationError` as
        :meth:`get`, so incomplete characterizations still refuse to
        produce numbers instead of silently under-counting.
        """
        return [self._table.get(name) for name in OP_NAMES]

    def __contains__(self, operation: str) -> bool:
        return operation in self._table

    def merged(self, overrides: Mapping[str, float], name: str = "") -> "OperationCosts":
        """A new table with ``overrides`` layered on top of this one."""
        table = dict(self._table)
        table.update(overrides)
        return OperationCosts(table, name or self.name)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._table)

    def operations(self) -> Iterable[str]:
        return self._table.keys()

    # -- persistence (characterizations are shared between sessions) -----

    def to_json(self) -> str:
        import json
        return json.dumps({"name": self.name, "costs": self._table},
                          indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "OperationCosts":
        import json
        try:
            payload = json.loads(text)
            return cls(payload["costs"], payload.get("name", ""))
        except (ValueError, KeyError, TypeError) as exc:
            raise AnnotationError(f"malformed cost-table JSON: {exc}") from exc

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "OperationCosts":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        return f"OperationCosts({self.name!r}, {len(self._table)} ops)"


def uniform_costs(operations: Iterable[str] = KNOWN_OPERATIONS,
                  cycles: float = 1.0, name: str = "uniform") -> OperationCosts:
    """A flat table (every op costs the same) — useful for tests."""
    return OperationCosts({op: cycles for op in operations}, name)
