"""Platform resources — the targets of architectural mapping.

The paper distinguishes three kinds of resource (§2):

* **sequential resources** (SW: microprocessors, DSPs) — one statement
  at a time; concurrent processes mapped to the same resource are
  serialized and pay RTOS overhead at every channel access / wait;
* **parallel resources** (HW: standard-cell fabric, FPGA) — every
  process mapped there gets its own datapath; segment times interpolate
  between the critical path (k=0) and the single-ALU bound (k=1);
* **environment components** (virtual components, testbenches) — no
  performance analysis is done for them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, TYPE_CHECKING

from ..annotate.costs import OperationCosts
from ..kernel.time import Clock, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process
    from .rtos import RtosModel

KIND_SEQUENTIAL = "sequential"
KIND_PARALLEL = "parallel"
KIND_ENVIRONMENT = "environment"

#: Ready-queue policies supported by sequential resources.
POLICY_FIFO = "fifo"
POLICY_PRIORITY = "priority"


class Resource:
    """Base class for platform resources."""

    kind = "abstract"

    def __init__(self, name: str, clock: Clock,
                 costs: Optional[OperationCosts] = None):
        self.name = name
        self.clock = clock
        #: Operation cost table used for segments executed on this
        #: resource; None only for environment components.
        self.costs = costs
        #: Total busy time accumulated on this resource (reporting).
        self.busy_time = SimTime(0)
        #: Total RTOS time accumulated on this resource (reporting).
        self.rtos_time = SimTime(0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SequentialResource(Resource):
    """A processor: serializes all processes mapped to it.

    Carries the occupancy state used by the paper's arbitration loop
    ("the process needs to wait until the resource is empty"), a ready
    queue with a scheduling policy, and an optional RTOS model.
    """

    kind = KIND_SEQUENTIAL

    def __init__(self, name: str, clock: Clock, costs: OperationCosts,
                 rtos: Optional["RtosModel"] = None,
                 policy: str = POLICY_FIFO):
        super().__init__(name, clock, costs)
        if policy not in (POLICY_FIFO, POLICY_PRIORITY):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.rtos = rtos
        self.policy = policy
        #: Simulated time until which the processor is occupied.
        self.free_at = SimTime(0)
        #: Processes currently contending for the processor, in arrival
        #: order (FIFO) — priority policy re-sorts on grant.  Each entry
        #: carries the duration the process will request, so co-waiting
        #: processes can compute exact recheck times.
        self._waiting: Deque["Process"] = deque()
        self._requested: Dict[int, SimTime] = {}
        #: Last process granted the processor (context-switch accounting).
        self.last_process: Optional["Process"] = None
        #: Number of occupancy hand-overs between different processes.
        self.context_switches = 0

    # -- occupancy protocol (used by the timing agents) -----------------

    def enqueue(self, process: "Process", duration: SimTime) -> None:
        """Register a process as contending for ``duration`` of CPU time."""
        if process not in self._waiting:
            self._waiting.append(process)
        self._requested[process.pid] = duration

    def may_run(self, process: "Process", now: SimTime) -> bool:
        """True if ``process`` can occupy the processor *now*.

        It can when the processor is free and the process is the one the
        scheduling policy would grant next.
        """
        if now < self.free_at:
            return False
        head = self._next_candidate()
        return head is None or head is process

    def expected_wait(self, process: "Process", now: SimTime) -> SimTime:
        """How long ``process`` should wait before rechecking :meth:`may_run`.

        This realizes the paper's arbitration loop: if the processor is
        busy, wait until it frees; if it is free but the policy grants a
        different waiter first, wait out that waiter's announced
        duration (it will occupy within the current instant).
        """
        if now < self.free_at:
            return self.free_at - now
        head = self._next_candidate()
        if head is not None and head is not process:
            announced = self._requested.get(head.pid, SimTime(0))
            if announced.femtoseconds > 0:
                return announced
            # A zero-length head segment: recheck after one clock tick.
            return self.clock.period
        return SimTime(0)

    def _next_candidate(self) -> Optional["Process"]:
        if not self._waiting:
            return None
        if self.policy == POLICY_PRIORITY:
            return min(self._waiting, key=lambda p: (p.priority, p.pid))
        return self._waiting[0]

    def occupy(self, process: "Process", now: SimTime,
               duration: SimTime) -> SimTime:
        """Grant the processor to ``process`` for ``duration`` from ``now``.

        Returns the completion time.  The caller must have checked
        :meth:`may_run`.
        """
        try:
            self._waiting.remove(process)
        except ValueError:
            pass
        self._requested.pop(process.pid, None)
        if self.last_process is not None and self.last_process is not process:
            self.context_switches += 1
        self.last_process = process
        completion = now + duration
        self.free_at = completion
        self.busy_time = self.busy_time + duration
        return completion

    @property
    def contention(self) -> int:
        """Number of processes currently queued for the processor."""
        return len(self._waiting)


class ParallelResource(Resource):
    """A hardware fabric: processes run concurrently on private datapaths.

    ``k_factor`` selects the point between the best-case (critical-path,
    ``k = 0``) and worst-case (single-ALU, ``k = 1``) implementation
    bounds when annotating segment times (paper §3, Fig. 4).
    """

    kind = KIND_PARALLEL

    def __init__(self, name: str, clock: Clock, costs: OperationCosts,
                 k_factor: float = 0.5):
        super().__init__(name, clock, costs)
        if not 0.0 <= k_factor <= 1.0:
            raise ValueError(f"k factor must lie in [0, 1], got {k_factor}")
        self.k_factor = k_factor


class EnvironmentResource(Resource):
    """A virtual component or testbench: exempt from performance analysis."""

    kind = KIND_ENVIRONMENT

    def __init__(self, name: str,
                 clock: Optional[Clock] = None):
        super().__init__(name, clock or Clock.from_frequency_mhz(1000.0), None)
