"""Default platform characterizations.

The paper expects the per-operation execution times to "be provided by
the platform vendor".  This module plays the vendor: it ships default
tables for the two platforms of the evaluation —

* ``OPENRISC_SW_COSTS`` — a classic scalar RISC (the OpenRISC-flavoured
  reference CPU of :mod:`repro.iss`).  These are *architectural*
  defaults; the benchmarks refine them with
  :mod:`repro.calibration`, which reproduces the paper's procedure of
  fitting weights against assembler-level measurements.
* ``ASIC_HW_COSTS`` — functional-unit latencies (in HW clock cycles)
  for a standard-cell datapath, used for parallel resources and by the
  behavioral-synthesis substrate.

Factory helpers build ready-to-use resources so examples and benchmarks
share one platform definition.
"""

from __future__ import annotations

from ..annotate.costs import OperationCosts
from ..kernel.time import Clock
from .resources import ParallelResource, SequentialResource
from .rtos import RtosModel

#: Nominal clock of the reference CPU (paper's OpenRISC platform era).
CPU_CLOCK_MHZ = 200.0
#: Nominal clock of the HW fabric (10 ns cycle, as behavioural-synthesis
#: papers of the period typically assume).
HW_CLOCK_MHZ = 100.0

# Architectural per-operation cycle counts for the reference CPU.  Each
# entry covers the full cost of the C-level operation as compiled: the
# ALU latency plus its share of operand fetch; values match the
# instruction cycle model in ``repro.iss.isa``.
OPENRISC_SW_COSTS = OperationCosts({
    "add": 1.0, "sub": 1.0,
    "mul": 3.0, "div": 32.0, "mod": 32.0,
    "shl": 1.0, "shr": 1.0,
    "and": 1.0, "or": 1.0, "xor": 1.0,
    "neg": 1.0, "inv": 1.0, "abs": 2.0,
    "lt": 1.0, "le": 1.0, "gt": 1.0, "ge": 1.0, "eq": 1.0, "ne": 1.0,
    "load": 2.0, "store": 2.0,
    "assign": 1.0, "branch": 2.0, "call": 18.0,
    "fadd": 10.0, "fsub": 10.0, "fmul": 12.0, "fdiv": 40.0,
    "fneg": 2.0, "fabs": 2.0, "fcmp": 4.0,
}, name="openrisc-sw")

# Functional-unit delays for a 100 MHz standard-cell datapath, as
# *fractions of the clock period*.  The estimation library sums these
# raw delays (implicitly assuming operator chaining within a cycle);
# the behavioral-synthesis substrate schedules whole cycle slots
# (ceil(delay), minimum one cycle).  The difference between the two
# views is the paper's HW estimation error (Tables 2 and 4).
ASIC_HW_COSTS = OperationCosts({
    "add": 0.92, "sub": 0.92,
    "mul": 1.85, "div": 12.7, "mod": 12.7,
    "shl": 0.88, "shr": 0.88,
    "and": 0.8, "or": 0.8, "xor": 0.8,
    "neg": 0.95, "inv": 0.8, "abs": 1.85,
    "lt": 0.8, "le": 0.8, "gt": 0.8, "ge": 0.8, "eq": 0.8, "ne": 0.8,
    "load": 1.0, "store": 1.0,   # synchronous memory: exactly one cycle
    "assign": 0.0, "branch": 0.0, "call": 0.0,
    "fadd": 3.4, "fsub": 3.4, "fmul": 5.6, "fdiv": 18.2,
    "fneg": 0.8, "fabs": 0.8, "fcmp": 1.6,
}, name="asic-hw")

# A VLIW-ish DSP: single-cycle MAC (multiply as cheap as an add),
# hardware loop support folded into cheap branch cost, but expensive
# control-flow-heavy code (calls) — the classic DSP trade-off.  Used by
# examples exploring CPU-vs-DSP mapping decisions.
DSP_SW_COSTS = OperationCosts({
    "add": 1.0, "sub": 1.0,
    "mul": 1.0, "div": 18.0, "mod": 18.0,
    "shl": 1.0, "shr": 1.0,
    "and": 1.0, "or": 1.0, "xor": 1.0,
    "neg": 1.0, "inv": 1.0, "abs": 1.0,
    "lt": 1.0, "le": 1.0, "gt": 1.0, "ge": 1.0, "eq": 1.0, "ne": 1.0,
    "load": 1.0, "store": 1.0,
    "assign": 1.0, "branch": 0.5, "call": 30.0,
    "fadd": 2.0, "fsub": 2.0, "fmul": 2.0, "fdiv": 16.0,
    "fneg": 1.0, "fabs": 1.0, "fcmp": 1.0,
}, name="dsp-sw")

#: A small embedded RTOS on the reference CPU (cycles per service).
DEFAULT_RTOS = RtosModel(
    name="ucos-like",
    channel_access_cycles=120.0,
    wait_cycles=80.0,
    context_switch_cycles=150.0,
)


def make_cpu(name: str = "cpu0", mhz: float = CPU_CLOCK_MHZ,
             costs: OperationCosts = OPENRISC_SW_COSTS,
             rtos: RtosModel = DEFAULT_RTOS,
             policy: str = "fifo") -> SequentialResource:
    """A ready-to-use sequential (SW) resource."""
    return SequentialResource(name, Clock.from_frequency_mhz(mhz),
                              costs, rtos=rtos, policy=policy)


def make_fabric(name: str = "hw0", mhz: float = HW_CLOCK_MHZ,
                costs: OperationCosts = ASIC_HW_COSTS,
                k_factor: float = 0.5) -> ParallelResource:
    """A ready-to-use parallel (HW) resource."""
    return ParallelResource(name, Clock.from_frequency_mhz(mhz),
                            costs, k_factor=k_factor)
