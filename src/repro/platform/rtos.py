"""The RTOS overhead model.

The paper models the RTOS exactly at the points where it really runs on
the platform: "The RTOS will be executed each time a thread is stopped,
that is, when a channel or a waiting statement is reached.  Thus, the
RTOS timing is estimated assigning an execution time to those channels
and waiting statements executed by processes mapped to SW resources."

:class:`RtosModel` therefore assigns cycle costs per node kind; the
sequential-resource timing agent charges them on top of the segment
cost.  Separate accounting lets reports show "the RTOS overload is
evaluated" (paper §6).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RtosModel:
    """Cycle costs of RTOS services on a sequential resource.

    All values are in cycles of the owning resource's clock.

    ``channel_access_cycles``
        Kernel entry + syscall work for a channel operation (the
        blocking primitive, mutex/queue manipulation).
    ``wait_cycles``
        Timer programming for an explicit ``wait(sc_time)``.
    ``context_switch_cycles``
        Scheduler dispatch when the processor passes from one process to
        another (charged when occupancy changes hands).
    """

    name: str = "generic-rtos"
    channel_access_cycles: float = 0.0
    wait_cycles: float = 0.0
    context_switch_cycles: float = 0.0

    def __post_init__(self):
        for field in ("channel_access_cycles", "wait_cycles",
                      "context_switch_cycles"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} cannot be negative")

    def node_cycles(self, node_kind: str) -> float:
        """RTOS cycles charged for a node of the given kind.

        ``node_kind`` is "channel" for channel accesses and "wait" for
        timing waits; process exit charges nothing.
        """
        if node_kind == "channel":
            return self.channel_access_cycles
        if node_kind == "wait":
            return self.wait_cycles
        return 0.0


#: An RTOS that costs nothing — bare-metal execution.
NULL_RTOS = RtosModel(name="none", channel_access_cycles=0.0,
                      wait_cycles=0.0, context_switch_cycles=0.0)
