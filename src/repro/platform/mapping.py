"""Architectural mapping: which process runs on which resource.

In the paper the mapping decisions are annotated in the SystemC source
with pre-processor directives; here they live in an explicit
:class:`Mapping` object, which the performance library reads at
attachment time.  Unmapped processes are an error when a performance
library is attached (silent misattribution of time would invalidate
every report) unless they are explicitly declared environment
components.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from ..errors import MappingError
from ..kernel.process import Process
from .resources import EnvironmentResource, Resource

ProcessKey = Union[Process, str]


def _key_name(process: ProcessKey) -> str:
    if isinstance(process, Process):
        return process.full_name
    return str(process)


class Mapping:
    """A process→resource assignment table.

    Processes are identified by their hierarchical ``module.process``
    name (or by the :class:`Process` object itself).
    """

    def __init__(self):
        self._table: Dict[str, Resource] = {}

    def assign(self, process: ProcessKey, resource: Resource) -> None:
        """Map a process to a resource; remapping is an error.

        The paper takes mapping decisions once, before timed simulation;
        accidental double assignment almost always means two experiment
        configurations got mixed up.
        """
        name = _key_name(process)
        if name in self._table:
            raise MappingError(
                f"process {name!r} is already mapped to "
                f"{self._table[name].name!r}"
            )
        if not isinstance(resource, Resource):
            raise MappingError(
                f"cannot map {name!r} to {resource!r}: not a Resource"
            )
        self._table[name] = resource

    def assign_all(self, processes: Iterable[ProcessKey],
                   resource: Resource) -> None:
        for process in processes:
            self.assign(process, resource)

    def resource_of(self, process: ProcessKey) -> Resource:
        name = _key_name(process)
        try:
            return self._table[name]
        except KeyError:
            raise MappingError(f"process {name!r} is not mapped") from None

    def is_mapped(self, process: ProcessKey) -> bool:
        return _key_name(process) in self._table

    def processes_on(self, resource: Resource) -> List[str]:
        """Names of all processes mapped to ``resource``."""
        return [name for name, res in self._table.items() if res is resource]

    def resources(self) -> List[Resource]:
        """All distinct resources referenced by the mapping."""
        seen: List[Resource] = []
        for resource in self._table.values():
            if resource not in seen:
                seen.append(resource)
        return seen

    def validate(self, processes: Iterable[Process]) -> None:
        """Check every given process is mapped (environment ones may map
        to an :class:`EnvironmentResource`, but must still be mapped)."""
        missing = [p.full_name for p in processes if not self.is_mapped(p)]
        if missing:
            raise MappingError(
                "unmapped processes (map them to a resource, or to an "
                f"EnvironmentResource to exclude them from analysis): {missing}"
            )

    def __len__(self) -> int:
        return len(self._table)

    def items(self):
        return self._table.items()

    def describe(self) -> str:
        """Human-readable mapping table."""
        lines = ["process -> resource"]
        for name, resource in sorted(self._table.items()):
            tag = "" if not isinstance(resource, EnvironmentResource) else " (env)"
            lines.append(f"  {name} -> {resource.name}{tag}")
        return "\n".join(lines)
