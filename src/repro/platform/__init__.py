"""Platform model: resources, architectural mapping and RTOS overhead."""

from .library import (
    ASIC_HW_COSTS,
    CPU_CLOCK_MHZ,
    DEFAULT_RTOS,
    DSP_SW_COSTS,
    HW_CLOCK_MHZ,
    OPENRISC_SW_COSTS,
    make_cpu,
    make_fabric,
)
from .mapping import Mapping
from .resources import (
    EnvironmentResource,
    KIND_ENVIRONMENT,
    KIND_PARALLEL,
    KIND_SEQUENTIAL,
    POLICY_FIFO,
    POLICY_PRIORITY,
    ParallelResource,
    Resource,
    SequentialResource,
)
from .rtos import NULL_RTOS, RtosModel

__all__ = [
    "ASIC_HW_COSTS", "CPU_CLOCK_MHZ", "DEFAULT_RTOS", "DSP_SW_COSTS",
    "HW_CLOCK_MHZ", "OPENRISC_SW_COSTS", "make_cpu", "make_fabric",
    "Mapping",
    "EnvironmentResource", "KIND_ENVIRONMENT", "KIND_PARALLEL",
    "KIND_SEQUENTIAL", "POLICY_FIFO", "POLICY_PRIORITY",
    "ParallelResource", "Resource", "SequentialResource",
    "NULL_RTOS", "RtosModel",
]
